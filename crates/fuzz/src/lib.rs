//! Deterministic, structure-aware corruption fuzzing for every DPZ decode
//! path.
//!
//! The decode-hardening contract says *no byte stream may panic, abort, or
//! force an outsized allocation in any decoder* — this crate is the
//! executable form of that contract. It needs no external fuzzing engine:
//! a seeded [`Xoshiro256`] drives a mutator that knows where the interesting
//! header fields live in each container format, so a few thousand iterations
//! reach the arithmetic-overflow and bomb paths that random byte noise
//! almost never hits.
//!
//! Mutation kinds (chosen per iteration):
//!
//! 1. **Truncation** at a random offset (header, directory, or payload).
//! 2. **Header-field substitution**: a known field offset is overwritten
//!    with an "interesting" integer (0, 1, powers of two, `u64::MAX/2`,
//!    `u64::MAX`, …) — the class that used to trigger `attempt to multiply
//!    with overflow` panics.
//! 3. **Cross-format splice**: the body of one format grafted behind
//!    another format's magic, and magic-swaps between formats.
//! 4. **Byte flips**: 1–8 random single-byte XORs anywhere in the stream.
//! 5. **Random garbage**: fresh random bytes, optionally behind a valid
//!    magic so parsing proceeds past the first check.
//! 6. **Backend-flag attack**: a v3 section's lossless-backend byte is
//!    swapped (Deflate ↔ tANS) or forged to an unknown id; non-v3 streams
//!    get the container version byte forged instead.
//! 7. **Footer attack**: a v4 DPZC stream's index footer is truncated, has
//!    an offset/length field forged (with the footer CRC recomputed so
//!    parsing reaches the field validation), gets its stored CRC flipped,
//!    or has footer records permuted. Streams without a v4 tail get their
//!    version byte forged instead.
//!
//! Every mutated stream is fed to the real decoder under
//! `std::panic::catch_unwind`; a panic fails the run with the format, seed
//! and iteration number so the case can be replayed exactly. Decoders are
//! allowed to *succeed* on a mutation (e.g. a flip inside an unchecked v1
//! payload) — the contract is "no panic", not "always reject".
//!
//! Run the bounded suite via `cargo test -p dpz-fuzz`; crank iterations with
//! the `DPZ_FUZZ_ITERS` environment variable (the CI fuzz-smoke job uses
//! 10 000 per format).

#![warn(missing_docs)]

use dpz_data::rng::Xoshiro256;
use dpz_deflate::crc32;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// Every decode surface the repo ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// The single-stream DPZ1 container (`dpz_core::decompress`).
    Dpz,
    /// The DPZC chunked container (`dpz_core::decompress_chunked`).
    Chunked,
    /// The SZR1 predictor/Huffman container (`dpz_sz::decompress`).
    Sz,
    /// The ZFR1 bit-plane container (`dpz_zfp::decompress`).
    Zfp,
    /// A bare zlib stream (`dpz_deflate::decompress_bounded`).
    Zlib,
    /// A bare tANS stream (`dpz_deflate::tans::decompress_bounded`), the
    /// v3 container's alternative section backend.
    Tans,
}

impl Format {
    /// All fuzzed formats.
    pub const ALL: [Format; 6] = [
        Format::Dpz,
        Format::Chunked,
        Format::Sz,
        Format::Zfp,
        Format::Zlib,
        Format::Tans,
    ];

    /// Container magic, where the format has one.
    fn magic(self) -> &'static [u8] {
        match self {
            Format::Dpz => b"DPZ1",
            Format::Chunked => b"DPZC",
            Format::Sz => b"SZR1",
            Format::Zfp => b"ZFR1",
            Format::Zlib => &[0x78, 0x9C],
            // tANS streams carry no magic; the container's section flag
            // selects the decoder.
            Format::Tans => &[],
        }
    }

    /// Byte offsets of size-like header fields worth substituting. These are
    /// the fields whose arithmetic used to be unchecked; keeping the list in
    /// one place makes the mutator track format changes.
    fn field_offsets(self) -> &'static [usize] {
        match self {
            // magic(4) ver(1) ndims(1) dims(2×8) orig(8) m(8) n(8) pad(8)
            // norm(16) k(8) flags(2+8+2) model_raw(8) model_packed(8)
            Format::Dpz => &[6, 14, 22, 30, 38, 46, 70, 90, 98],
            // v4: magic(4) ver(1) ndims(1) dims(2×8) flags(1) streams…
            // The dims offsets are shared with the legacy v1/v2 layout
            // (count/lens live in the tail footer now — mutation kind 7
            // owns those); 22/30/38 land in the first chunk stream's own
            // header, which is a DPZ1/DPZP fixed header.
            Format::Chunked => &[6, 14, 22, 30, 38],
            // magic(4) ndims(1) dims(8) eb(8) radius(4) pred(1) …
            Format::Sz => &[5, 13, 21, 26, 34],
            // magic(4) ndims(1) dims(8) mode(1) param(8) bits_len(8)
            Format::Zfp => &[5, 14, 22],
            Format::Zlib => &[0, 2, 8],
            // table_log(1) raw_len(4) state0(2) state1(2) npairs(2) freqs…
            // Substitution here forges out-of-range decoder states and
            // oversized declared raw sizes — the two tANS-specific
            // hardening paths.
            Format::Tans => &[0, 1, 5, 7, 9, 11],
        }
    }
}

/// Cap for [`Format::Zlib`] decodes: generous next to every corpus payload,
/// tiny next to a bomb.
const ZLIB_FUZZ_CAP: usize = 1 << 20;

/// What one decode attempt did.
enum Outcome {
    Accepted,
    Rejected,
    Panicked(String),
}

/// The shared codec set every container format decodes through. Built once;
/// the registry is immutable and `Sync`.
fn registry() -> &'static dpz_codec::Registry {
    static REG: OnceLock<dpz_codec::Registry> = OnceLock::new();
    REG.get_or_init(dpz_codec::Registry::builtin)
}

/// Feed `bytes` to `format`'s decoder, catching panics.
///
/// Container formats go through the production `Codec` trait objects — the
/// same surface the CLI and registry expose. Each format targets its *own*
/// codec by name (not magic sniffing), so magic-swap mutations still reach
/// the decoder under test rather than being re-routed.
fn try_decode(format: Format, bytes: &[u8]) -> Outcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let codec_name = match format {
            Format::Dpz => "dpz",
            Format::Chunked => "dpzc",
            Format::Sz => "sz",
            Format::Zfp => "zfp",
            Format::Zlib => {
                return dpz_deflate::decompress_bounded(bytes, ZLIB_FUZZ_CAP)
                    .map(drop)
                    .map_err(drop)
            }
            Format::Tans => {
                return dpz_deflate::tans::decompress_bounded(bytes, ZLIB_FUZZ_CAP)
                    .map(drop)
                    .map_err(drop)
            }
        };
        registry()
            .get(codec_name)
            .expect("builtin registry covers every container format")
            .decompress_from(&mut &bytes[..])
            .map(drop)
            .map_err(drop)
    }));
    match result {
        Ok(Ok(())) => Outcome::Accepted,
        Ok(Err(())) => Outcome::Rejected,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Outcome::Panicked(msg)
        }
    }
}

/// One valid stream per shape variant, per format — the mutation substrate.
pub struct Corpus {
    dpz: Vec<Vec<u8>>,
    chunked: Vec<Vec<u8>>,
    sz: Vec<Vec<u8>>,
    zfp: Vec<Vec<u8>>,
    zlib: Vec<Vec<u8>>,
    tans: Vec<Vec<u8>>,
}

impl Corpus {
    /// Build valid container streams from seeded synthetic fields.
    pub fn generate(seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let field: Vec<f32> = (0..1024)
            .map(|i| {
                let r = (i / 32) as f32;
                let c = (i % 32) as f32;
                (0.1 * r).sin() * 5.0 + (0.07 * c).cos() * 3.0 + rng.normal() as f32 * 0.01
            })
            .collect();
        let line: Vec<f32> = (0..600).map(|i| (i as f32 * 0.02).sin() * 4.0).collect();

        let cfg = dpz_core::DpzConfig::loose();
        // v3 containers: every section carries a lossless-backend flag byte
        // and sections above the size floor switch to the tANS coder — the
        // newest revision the fuzz contract must cover.
        let v3 = cfg.with_lossless(dpz_core::LosslessBackend::Tans);
        let dpz = vec![
            dpz_core::compress(&field, &[32, 32], &cfg).unwrap().bytes,
            dpz_core::compress(&line, &[600], &cfg).unwrap().bytes,
            dpz_core::compress(&field, &[32, 32], &v3).unwrap().bytes,
        ];
        let chunked_v4 = dpz_core::compress_chunked(&field, &[32, 32], &cfg, 2)
            .unwrap()
            .bytes;
        let chunked = vec![
            chunked_v4.clone(),
            dpz_core::compress_chunked(&field, &[32, 32], &v3, 2)
                .unwrap()
                .bytes,
            // The legacy v2 directory framing, still a live decode path.
            dpz_core::reencode_legacy(&chunked_v4, 2).unwrap(),
            // Progressive streams: energy-ordered components behind the
            // same DPZC magic, with per-component spans in the footer.
            dpz_core::compress_progressive(&field, &[32, 32], &cfg, 2)
                .unwrap()
                .bytes,
        ];
        let sz_cfg = dpz_sz::SzConfig::with_error_bound(1e-3);
        let sz_auto = sz_cfg.with_predictor(dpz_sz::Predictor::Auto);
        let sz = vec![
            dpz_sz::compress(&line, &[600], &sz_cfg),
            dpz_sz::compress(&field, &[32, 32], &sz_auto),
        ];
        let zfp = vec![
            dpz_zfp::compress(&field, &[32, 32], dpz_zfp::ZfpMode::FixedPrecision(16)),
            dpz_zfp::compress(&line, &[600], dpz_zfp::ZfpMode::FixedAccuracy(1e-3)),
        ];
        let raw: Vec<u8> = (0..4096).map(|_| (rng.next_u64() >> 32) as u8).collect();
        let zlib = vec![
            dpz_deflate::compress(&raw),
            dpz_deflate::compress(&vec![0u8; 2048]),
        ];
        // Skewed-histogram bytes (what quantized indices look like) plus
        // uniform noise: one stream with a rich tANS table, one near-raw.
        let skewed: Vec<u8> = (0..2048).map(|i| ((i * i) % 23) as u8).collect();
        let tans = vec![
            dpz_deflate::tans::compress(&skewed),
            dpz_deflate::tans::compress(&raw),
        ];
        Corpus {
            dpz,
            chunked,
            sz,
            zfp,
            zlib,
            tans,
        }
    }

    fn streams(&self, format: Format) -> &[Vec<u8>] {
        match format {
            Format::Dpz => &self.dpz,
            Format::Chunked => &self.chunked,
            Format::Sz => &self.sz,
            Format::Zfp => &self.zfp,
            Format::Zlib => &self.zlib,
            Format::Tans => &self.tans,
        }
    }

    /// A random stream of a random *other* format, for splicing.
    fn foreign(&self, format: Format, rng: &mut Xoshiro256) -> &[u8] {
        loop {
            let other = Format::ALL[rng.below(Format::ALL.len())];
            if other != format {
                let streams = self.streams(other);
                return &streams[rng.below(streams.len())];
            }
        }
    }
}

/// Integer values that historically break size arithmetic.
const INTERESTING: [u64; 12] = [
    0,
    1,
    2,
    7,
    255,
    65_535,
    1 << 20,
    1 << 31,
    1 << 32,
    u64::MAX / 2,
    u64::MAX - 1,
    u64::MAX,
];

/// Byte offsets of every v3 section's lossless-backend flag, found by
/// walking the section chain (flag, declared_raw u64, packed_len u64,
/// packed bytes, crc32). Empty for anything that is not a v3 DPZ1 stream.
fn v3_section_flag_offsets(bytes: &[u8]) -> Vec<usize> {
    if bytes.len() < 6 || &bytes[..4] != b"DPZ1" || bytes[4] < 3 {
        return Vec::new();
    }
    let ndims = bytes[5] as usize;
    // Fixed header tail after the dims: orig/m/n/pad (32) + norm (16) +
    // k (8) + transform/dwt (2) + p (8) + wide/standardized (2).
    let mut off = 6 + 8 * ndims + 68;
    let mut out = Vec::new();
    for _ in 0..3 {
        if off >= bytes.len() {
            break;
        }
        out.push(off);
        let Some(pl) = bytes
            .get(off + 9..off + 17)
            .and_then(|s| <[u8; 8]>::try_from(s).ok())
        else {
            break;
        };
        let packed = u64::from_le_bytes(pl) as usize;
        off = match off
            .checked_add(1 + 16 + 4)
            .and_then(|o| o.checked_add(packed))
        {
            Some(o) => o,
            None => break,
        };
    }
    out
}

/// v4 DPZC tail layout (16 bytes): `footer_len u64 | footer_crc32 u32 |
/// "DPZF"`.
const DPZC_TAIL_LEN: usize = 16;

/// The `[start, end)` span of a v4 DPZC stream's index footer, or `None`
/// when `bytes` does not carry a well-formed v4 tail.
fn dpzc_footer_span(bytes: &[u8]) -> Option<(usize, usize)> {
    let n = bytes.len();
    if n < 6 + DPZC_TAIL_LEN
        || &bytes[..4] != b"DPZC"
        || bytes[4] != 4
        || &bytes[n - 4..] != b"DPZF"
    {
        return None;
    }
    let flen = u64::from_le_bytes(bytes[n - 16..n - 8].try_into().ok()?);
    let flen = usize::try_from(flen).ok()?;
    let end = n - DPZC_TAIL_LEN;
    let start = end.checked_sub(flen)?;
    (start >= 6).then_some((start, end))
}

/// Recompute the stored footer CRC after a deliberate footer edit, so the
/// forged bytes reach the field validation instead of dying at the
/// checksum gate.
fn refresh_footer_crc(bytes: &mut [u8]) {
    let n = bytes.len();
    if let Some((start, end)) = dpzc_footer_span(bytes) {
        let crc = crc32(&bytes[start..end]).to_le_bytes();
        bytes[n - 8..n - 4].copy_from_slice(&crc);
    }
}

/// Produce one mutated stream from a corpus entry.
fn mutate(base: &[u8], format: Format, corpus: &Corpus, rng: &mut Xoshiro256) -> Vec<u8> {
    match rng.below(7) {
        // Truncation: anywhere from empty to one-byte-short.
        0 => base[..rng.below(base.len().max(1))].to_vec(),
        // Structure-aware field substitution.
        1 => {
            let mut out = base.to_vec();
            let offsets = format.field_offsets();
            let off = offsets[rng.below(offsets.len())];
            let value = if rng.below(4) == 0 {
                rng.next_u64()
            } else {
                INTERESTING[rng.below(INTERESTING.len())]
            };
            let bytes = value.to_le_bytes();
            for (i, b) in bytes.iter().enumerate() {
                if off + i < out.len() {
                    out[off + i] = *b;
                }
            }
            out
        }
        // Cross-format splice.
        2 => {
            let foreign = corpus.foreign(format, rng);
            let magic = format.magic();
            match rng.below(3) {
                // This format's magic, the other format's body.
                0 => {
                    let mut out = magic.to_vec();
                    out.extend_from_slice(&foreign[foreign.len().min(magic.len())..]);
                    out
                }
                // Head of this stream, tail of the other.
                1 => {
                    let cut = rng.below(base.len().max(1));
                    let mut out = base[..cut].to_vec();
                    out.extend_from_slice(&foreign[rng.below(foreign.len().max(1))..]);
                    out
                }
                // The other stream verbatim (wrong decoder entirely).
                _ => foreign.to_vec(),
            }
        }
        // Byte flips.
        3 => {
            let mut out = base.to_vec();
            if !out.is_empty() {
                for _ in 0..1 + rng.below(8) {
                    let i = rng.below(out.len());
                    out[i] ^= 1 << rng.below(8);
                }
            }
            out
        }
        // Random garbage, sometimes behind a valid magic.
        4 => {
            let len = rng.below(512);
            let mut out = if rng.below(2) == 0 {
                format.magic().to_vec()
            } else {
                Vec::new()
            };
            out.extend((0..len).map(|_| (rng.next_u64() >> 56) as u8));
            out
        }
        // Lossless-backend flag attack: swap a v3 section's coder byte
        // (Deflate <-> tANS, so the right bytes hit the wrong decoder) or
        // forge an unknown backend id. Non-v3 streams get their container
        // version byte forged instead, exercising the version dispatch.
        5 => {
            let mut out = base.to_vec();
            let flags = v3_section_flag_offsets(&out);
            if flags.is_empty() {
                if out.len() > 4 {
                    out[4] = (rng.next_u64() % 8) as u8;
                }
            } else {
                let off = flags[rng.below(flags.len())];
                out[off] = match rng.below(3) {
                    0 => out[off] ^ 1,
                    1 => 2 + (rng.next_u64() % 254) as u8,
                    _ => 0xFF,
                };
            }
            out
        }
        // Footer attack (v4 DPZC only): the index footer is the seekable
        // trust anchor, so it gets its own mutation class. Streams without
        // a v4 tail fall back to forging the version byte.
        _ => {
            let mut out = base.to_vec();
            let Some((start, end)) = dpzc_footer_span(&out) else {
                if out.len() > 4 {
                    out[4] = (rng.next_u64() % 8) as u8;
                }
                return out;
            };
            match rng.below(4) {
                // Truncate somewhere inside the footer or tail.
                0 => {
                    out.truncate(start + rng.below(out.len() - start));
                    out
                }
                // Forge an 8-byte field (offset, length, rows, span end…)
                // with an interesting integer; recompute the CRC so the
                // value reaches the structural validation.
                1 => {
                    let span = end - start;
                    if span >= 8 {
                        let off = start + rng.below(span - 7);
                        let v = if rng.below(4) == 0 {
                            rng.next_u64()
                        } else {
                            INTERESTING[rng.below(INTERESTING.len())]
                        };
                        out[off..off + 8].copy_from_slice(&v.to_le_bytes());
                        refresh_footer_crc(&mut out);
                    }
                    out
                }
                // Flip a bit in the stored footer CRC itself.
                2 => {
                    let n = out.len();
                    out[n - 8 + rng.below(4)] ^= 1 << rng.below(8);
                    out
                }
                // Swap two 16-byte records inside the footer (component
                // spans, halves of chunk entries), CRC kept honest — the
                // ordering invariants must catch it.
                _ => {
                    let span = end - start;
                    if span >= 32 {
                        let slots = span / 16;
                        let a = start + 16 * rng.below(slots);
                        let b = start + 16 * rng.below(slots);
                        for i in 0..16 {
                            out.swap(a + i, b + i);
                        }
                        refresh_footer_crc(&mut out);
                    }
                    out
                }
            }
        }
    }
}

/// Tally of one fuzz run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzReport {
    /// Mutations fed to the decoder.
    pub iterations: usize,
    /// Decodes that returned `Err` (the expected outcome).
    pub rejected: usize,
    /// Decodes that still succeeded (benign mutations).
    pub accepted: usize,
}

/// Run `iters` seeded mutations against `format`'s decoder.
///
/// # Panics
///
/// Panics — failing the enclosing test — if any decoder invocation panics,
/// reporting the format, seed and iteration for exact replay.
pub fn run(format: Format, seed: u64, iters: usize) -> FuzzReport {
    let corpus = Corpus::generate(seed);
    // Decouple the mutation stream from corpus generation so adding corpus
    // entries doesn't shift every subsequent case.
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xD9F2_0071 ^ format as u64);
    let mut report = FuzzReport {
        iterations: iters,
        rejected: 0,
        accepted: 0,
    };
    for iter in 0..iters {
        let streams = corpus.streams(format);
        let base = &streams[rng.below(streams.len())];
        let mutated = mutate(base, format, &corpus, &mut rng);
        match try_decode(format, &mutated) {
            Outcome::Accepted => report.accepted += 1,
            Outcome::Rejected => report.rejected += 1,
            Outcome::Panicked(msg) => panic!(
                "decoder panic: format {format:?} seed {seed} iteration {iter} \
                 ({} mutated bytes): {msg}",
                mutated.len()
            ),
        }
    }
    report
}

/// Iteration count for in-tree tests: `DPZ_FUZZ_ITERS` env var, default 500.
pub fn iters_from_env() -> usize {
    std::env::var("DPZ_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// The overflow-header repro from the hardening work: a DPZ1 header whose
/// eight dims are each `u64::MAX / 2`, so their product overflows `usize`.
/// Must decode to `Err`, never an `attempt to multiply with overflow` panic.
pub fn overflow_dims_header() -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"DPZ1");
    out.push(2); // version
    out.push(8); // ndims
    for _ in 0..8 {
        push_u64(&mut out, u64::MAX / 2);
    }
    // Enough zeroed header tail to reach the dims-product check.
    out.extend_from_slice(&[0u8; 128]);
    out
}

/// A DPZC directory whose chunk lengths sum past `usize::MAX`.
pub fn overflow_chunk_lens() -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"DPZC");
    out.push(1); // v1: reaches the length sum without a crc column
    out.push(1); // ndims
    push_u64(&mut out, 16);
    push_u64(&mut out, 3); // count
    for _ in 0..3 {
        push_u64(&mut out, u64::MAX / 2);
    }
    out
}

/// A syntactically valid v2 DPZ1 container whose index section *declares*
/// 40 raw bytes but whose packed stream inflates to `payload_mib` MiB of
/// zeros — a classic decompression bomb with correct CRCs, so decode gets
/// all the way to the inflate bound before rejecting.
pub fn deflate_bomb_container(payload_mib: usize) -> Vec<u8> {
    let section = |out: &mut Vec<u8>, declared_raw: u64, raw: &[u8]| {
        let packed = dpz_deflate::compress_with_level(raw, dpz_deflate::CompressionLevel::Fast);
        push_u64(out, declared_raw);
        push_u64(out, packed.len() as u64);
        out.extend_from_slice(&packed);
        out.extend_from_slice(&crc32(&packed).to_le_bytes());
    };
    let mut out = Vec::new();
    out.extend_from_slice(b"DPZ1");
    out.push(2); // version
    out.push(2); // ndims
    push_u64(&mut out, 10);
    push_u64(&mut out, 8);
    push_u64(&mut out, 80); // orig_len
    push_u64(&mut out, 8); // m
    push_u64(&mut out, 10); // n
    push_u64(&mut out, 0); // pad
    out.extend_from_slice(&0.0f64.to_le_bytes()); // norm_min
    out.extend_from_slice(&1.0f64.to_le_bytes()); // norm_range
    push_u64(&mut out, 4); // k
    out.push(0); // transform
    out.push(0); // dwt levels
    out.extend_from_slice(&1e-3f64.to_le_bytes()); // p
    out.push(0); // wide_index
    out.push(0); // standardized
                 // Model: (m*k + m) * 4 = 160 bytes, honest.
    section(&mut out, 160, &[0u8; 160]);
    // Indices: declares n*k = 40 raw bytes, inflates to megabytes.
    section(&mut out, 40, &vec![0u8; payload_mib << 20]);
    // Outliers: honest empty section.
    section(&mut out, 0, &[]);
    out
}

/// A well-formed v4 chunked stream for the footer fixtures.
fn seekable_fixture_base(progressive: bool) -> Vec<u8> {
    let field: Vec<f32> = (0..1024)
        .map(|i| {
            let r = (i / 32) as f32;
            let c = (i % 32) as f32;
            (0.1 * r).sin() * 5.0 + (0.07 * c).cos() * 3.0
        })
        .collect();
    let cfg = dpz_core::DpzConfig::loose();
    if progressive {
        dpz_core::compress_progressive(&field, &[32, 32], &cfg, 2)
            .unwrap()
            .bytes
    } else {
        dpz_core::compress_chunked(&field, &[32, 32], &cfg, 2)
            .unwrap()
            .bytes
    }
}

/// A v4 chunked container cut off midway through its index footer: the
/// tail magic is gone, so the stream must be rejected as corrupt — not
/// parsed as a legacy directory, not panicked on.
pub fn truncated_footer() -> Vec<u8> {
    let mut out = seekable_fixture_base(false);
    let (start, end) = dpzc_footer_span(&out).expect("v4 fixture has a footer");
    out.truncate(start + (end - start) / 2);
    out
}

/// A v4 chunked container whose second chunk's footer offset points past
/// the payload, with the footer CRC recomputed so only the contiguity
/// validation can catch the forgery.
pub fn forged_footer_offset() -> Vec<u8> {
    let mut out = seekable_fixture_base(false);
    let (start, _) = dpzc_footer_span(&out).expect("v4 fixture has a footer");
    // Footer layout: count u64, then 36-byte chunk records starting with
    // the offset field.
    let off = start + 8 + 36;
    out[off..off + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    refresh_footer_crc(&mut out);
    out
}

/// A progressive v4 container whose first chunk's component records are
/// swapped (CRC kept honest): the energy-descending span order is broken,
/// so the footer must be rejected as an invalid progressive layout.
pub fn permuted_component_order() -> Vec<u8> {
    let mut out = seekable_fixture_base(true);
    let (start, _) = dpzc_footer_span(&out).expect("v4 fixture has a footer");
    let count = u64::from_le_bytes(out[start..start + 8].try_into().unwrap()) as usize;
    // Component records for chunk 0 sit after the chunk table and the
    // chunk's own k/model_end pair.
    let comp0 = start + 8 + count * 36 + 16;
    for i in 0..16 {
        out.swap(comp0 + i, comp0 + 16 + i);
    }
    refresh_footer_crc(&mut out);
    out
}

/// A structurally valid tANS stream whose decoder states are forged out of
/// the table range (`state < 1<<table_log` or `>= 2<<table_log`). Decode
/// must reject it up front, never index a table out of bounds.
pub fn tans_bad_state() -> Vec<u8> {
    let skewed: Vec<u8> = (0..1024).map(|i| ((i * 7) % 17) as u8).collect();
    let mut out = dpz_deflate::tans::compress(&skewed);
    // Layout: table_log(1) raw_len(4) state0(2) state1(2) …
    out[5] = 0xFF;
    out[6] = 0xFF;
    out
}

/// A valid tANS stream whose declared raw length is forged to `u32::MAX`.
/// The bounded decoder must refuse past its limit instead of allocating
/// 4 GiB or decoding garbage forever.
pub fn tans_oversized_raw_len() -> Vec<u8> {
    let skewed: Vec<u8> = (0..1024).map(|i| ((i * 7) % 17) as u8).collect();
    let mut out = dpz_deflate::tans::compress(&skewed);
    out[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_streams_decode_cleanly() {
        let corpus = Corpus::generate(1);
        for format in Format::ALL {
            for (i, stream) in corpus.streams(format).iter().enumerate() {
                match try_decode(format, stream) {
                    Outcome::Accepted => {}
                    _ => panic!("corpus stream {i} for {format:?} must decode"),
                }
            }
        }
    }

    #[test]
    fn fuzz_every_format_bounded() {
        let iters = iters_from_env();
        for format in Format::ALL {
            let report = run(format, 0xDEFA_CED5, iters);
            assert_eq!(report.iterations, iters);
            // Structure-aware mutation must actually exercise reject paths.
            assert!(
                report.rejected > iters / 4,
                "{format:?}: only {}/{iters} rejected — mutator too tame?",
                report.rejected
            );
        }
    }

    #[test]
    fn fuzz_is_deterministic() {
        let a = run(Format::Dpz, 7, 100);
        let b = run(Format::Dpz, 7, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn crafted_overflow_headers_are_rejected() {
        assert!(matches!(
            try_decode(Format::Dpz, &overflow_dims_header()),
            Outcome::Rejected
        ));
        assert!(matches!(
            try_decode(Format::Chunked, &overflow_chunk_lens()),
            Outcome::Rejected
        ));
    }

    #[test]
    fn bomb_container_is_rejected() {
        // 96 MiB declared-as-40-bytes: must reject at the inflate bound.
        let bomb = deflate_bomb_container(96);
        assert!(matches!(try_decode(Format::Dpz, &bomb), Outcome::Rejected));
    }

    #[test]
    fn crafted_tans_streams_are_rejected() {
        assert!(matches!(
            try_decode(Format::Tans, &tans_bad_state()),
            Outcome::Rejected
        ));
        assert!(matches!(
            try_decode(Format::Tans, &tans_oversized_raw_len()),
            Outcome::Rejected
        ));
    }

    #[test]
    fn footer_span_finder_matches_v4_layout() {
        let corpus = Corpus::generate(5);
        // v4 plain and progressive streams both expose a footer span.
        for idx in [0usize, 3] {
            let stream = &corpus.chunked[idx];
            let (start, end) = dpzc_footer_span(stream).expect("v4 stream");
            assert!(start < end && end == stream.len() - DPZC_TAIL_LEN);
            let count = u64::from_le_bytes(stream[start..start + 8].try_into().unwrap());
            assert_eq!(count, 2, "fixture writes two chunks");
        }
        // Legacy reencodes and other formats have none.
        assert!(dpzc_footer_span(&corpus.chunked[2]).is_none());
        assert!(dpzc_footer_span(&corpus.dpz[0]).is_none());
    }

    #[test]
    fn crafted_footer_fixtures_are_rejected() {
        for (name, bytes) in [
            ("truncated_footer", truncated_footer()),
            ("forged_footer_offset", forged_footer_offset()),
            ("permuted_component_order", permuted_component_order()),
        ] {
            match try_decode(Format::Chunked, &bytes) {
                Outcome::Rejected => {}
                Outcome::Accepted => panic!("{name}: forged stream must not decode"),
                Outcome::Panicked(m) => panic!("{name}: decoder panicked: {m}"),
            }
        }
    }

    #[test]
    fn v3_flag_walker_finds_three_sections() {
        let corpus = Corpus::generate(3);
        // The third dpz corpus entry is the v3/tANS one.
        let v3 = &corpus.dpz[2];
        assert_eq!(v3[4], 3, "expected a v3 container");
        let flags = v3_section_flag_offsets(v3);
        assert_eq!(flags.len(), 3, "model/indices/outliers sections");
        for &off in &flags {
            assert!(v3[off] <= 1, "flag byte at {off} is a known backend");
        }
        // v2 streams and other formats yield no flag offsets.
        assert!(v3_section_flag_offsets(&corpus.dpz[0]).is_empty());
        assert!(v3_section_flag_offsets(&corpus.chunked[0]).is_empty());
    }
}
