//! Runtime-dispatched SIMD kernels for the DPZ hot paths.
//!
//! One CPU-feature probe at startup picks a [`Backend`] (AVX2+FMA on x86_64,
//! NEON on aarch64, portable scalar everywhere); every kernel then branches
//! on that cached choice. The scalar arm is always compiled, is exercised by
//! `DPZ_FORCE_SCALAR=1`, and is bit-identical to the SIMD arms by
//! construction — see the parity contract notes on each module and the
//! property suite in `tests/parity.rs`.
//!
//! Module map:
//! - [`mod@backend`] — detection, `DPZ_FORCE_SCALAR`, PCLMUL availability
//! - [`blas`] — dot / axpy / fused two-vector update / Givens row rotation
//! - [`gemm`] — packed-panel f64 matmul microkernel (4×8 register tiles)
//! - [`fft`] — radix-2 butterflies, Bluestein pointwise ops, DCT rotations
//! - [`quant`] — fused quantize/dequantize with escape-code handling
//! - [`checksum`] — CRC-32 (slice-by-8 + PCLMUL), Adler-32, byte histogram
//! - [`matchlen`] — LZ77 common-prefix (match extension) compare

#![warn(missing_docs)]

pub mod backend;
pub mod blas;
pub mod checksum;
pub mod complex;
pub mod fft;
pub mod gemm;
pub mod matchlen;
pub mod quant;

pub use backend::{backend, backend_name, Backend};
pub use complex::Complex;
