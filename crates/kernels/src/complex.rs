//! The complex number type shared by the FFT/DCT kernels and `dpz-linalg`.
//!
//! Lives here (rather than in `dpz-linalg`) because the vectorized butterfly
//! passes reinterpret `&[Complex]` as packed `f64` lanes: `#[repr(C)]`
//! guarantees the `[re, im]` memory layout the SIMD loads rely on.
//! `dpz-linalg` re-exports this type, so downstream code is unchanged.

/// A complex number. Minimal on purpose: only the operations the FFT and DCT
/// need are provided. `#[repr(C)]` pins the `[re, im]` interleaved layout the
/// SIMD kernels load directly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

// `mul`/`add`/`sub` intentionally mirror the operator names without the
// operator-trait machinery: this Complex type exists only for the FFT hot
// loops, where explicit method calls keep the codegen obvious.
#[allow(clippy::should_implement_trait)]
impl Complex {
    /// Construct from real and imaginary parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{i theta}` on the unit circle.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex multiplication.
    ///
    /// The exact operation order (`a·c − b·d`, `a·d + b·c`, no FMA) is part
    /// of this crate's parity contract: every SIMD arm reproduces it
    /// bit-for-bit via the `movedup`/`permute`/`addsub` recipe.
    #[inline]
    pub fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    /// Complex addition.
    #[inline]
    pub fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    /// Complex subtraction.
    #[inline]
    pub fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_interleaved_re_im() {
        assert_eq!(std::mem::size_of::<Complex>(), 16);
        let v = [Complex::new(1.0, 2.0), Complex::new(3.0, 4.0)];
        let flat = unsafe { std::slice::from_raw_parts(v.as_ptr() as *const f64, 4) };
        assert_eq!(flat, &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a.mul(b), Complex::new(5.0, 5.0));
        assert_eq!(a.add(b), Complex::new(4.0, 1.0));
        assert_eq!(a.sub(b), Complex::new(-2.0, 3.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!(a.scale(2.0), Complex::new(2.0, 4.0));
        assert_eq!(a.norm_sqr(), 5.0);
    }
}
