//! Fused quantize/dequantize kernels for the DPZ score stage.
//!
//! [`quantize_codes`] maps each f64 score to a bin index in `0..bins` or to
//! the caller's escape code (out-of-range, ±∞, NaN — anything the uniform
//! quantizer cannot represent). The AVX2 arm tests all four lanes with a
//! movemask: the common all-in-range case does a packed `u16` store, any lane
//! needing the escape path falls back to per-lane scalar handling.
//! [`dequantize_codes`] is the inverse midpoint reconstruction; escape slots
//! get the same formula applied to the escape code and are patched by the
//! caller from the outlier list.
//!
//! ## Parity contract
//!
//! Per element, both arms compute exactly
//! `idx = floor((s + half_range) / (2·p))` (true division, floor via
//! `_mm256_round_pd(NEG_INF)` = `f64::floor`), validity
//! `|s| < half_range && 0 ≤ idx < bins` (NaN/±∞ fail the comparison in both
//! arms), and reconstruction `−half_range + (2·code + 1)·p` with
//! multiply-then-add (no FMA). Results are bit-identical.

use crate::backend::{backend, Backend};

/// Quantize `scores` into `codes` (equal lengths): in-range values get their
/// bin index, everything else gets `escape`. `bins` must be ≤ 65 535 and
/// `escape` must not collide with a valid index.
pub fn quantize_codes(
    scores: &[f64],
    half_range: f64,
    p: f64,
    bins: u32,
    escape: u16,
    codes: &mut [u16],
) {
    assert_eq!(scores.len(), codes.len(), "quantize_codes length mismatch");
    assert!(
        bins <= u16::MAX as u32 + 1,
        "quantize_codes: bins too large"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { quantize_avx2(scores, half_range, p, bins, escape, codes) },
        _ => quantize_scalar(scores, half_range, p, bins, escape, codes),
    }
}

/// Scalar arm of [`quantize_codes`] (public for the parity tests and benches).
pub fn quantize_scalar(
    scores: &[f64],
    half_range: f64,
    p: f64,
    bins: u32,
    escape: u16,
    codes: &mut [u16],
) {
    let two_p = 2.0 * p;
    let binsf = bins as f64;
    for (c, &s) in codes.iter_mut().zip(scores) {
        let idx = ((s + half_range) / two_p).floor();
        *c = if s.abs() < half_range && idx >= 0.0 && idx < binsf {
            idx as u16
        } else {
            escape
        };
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn quantize_avx2(
    scores: &[f64],
    half_range: f64,
    p: f64,
    bins: u32,
    escape: u16,
    codes: &mut [u16],
) {
    use std::arch::x86_64::*;
    let n = scores.len();
    let two_p = 2.0 * p;
    let binsf = bins as f64;
    let vhalf = _mm256_set1_pd(half_range);
    let v2p = _mm256_set1_pd(two_p);
    let vbins = _mm256_set1_pd(binsf);
    let vzero = _mm256_setzero_pd();
    let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(i64::MAX));
    let sp = scores.as_ptr();
    let cp = codes.as_mut_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        let s = _mm256_loadu_pd(sp.add(i));
        let idx = _mm256_round_pd(
            _mm256_div_pd(_mm256_add_pd(s, vhalf), v2p),
            _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC,
        );
        let in_range = _mm256_and_pd(
            _mm256_cmp_pd(_mm256_and_pd(s, abs_mask), vhalf, _CMP_LT_OQ),
            _mm256_and_pd(
                _mm256_cmp_pd(idx, vzero, _CMP_GE_OQ),
                _mm256_cmp_pd(idx, vbins, _CMP_LT_OQ),
            ),
        );
        if _mm256_movemask_pd(in_range) == 0b1111 {
            // idx is integral in [0, 65535]: truncate to i32, pack to u16.
            let i32s = _mm256_cvttpd_epi32(idx);
            let u16s = _mm_packus_epi32(i32s, i32s);
            _mm_storel_epi64(cp.add(i) as *mut __m128i, u16s);
        } else {
            for l in 0..4 {
                let s = scores[i + l];
                let idx = ((s + half_range) / two_p).floor();
                codes[i + l] = if s.abs() < half_range && idx >= 0.0 && idx < binsf {
                    idx as u16
                } else {
                    escape
                };
            }
        }
        i += 4;
    }
    while i < n {
        let s = scores[i];
        let idx = ((s + half_range) / two_p).floor();
        codes[i] = if s.abs() < half_range && idx >= 0.0 && idx < binsf {
            idx as u16
        } else {
            escape
        };
        i += 1;
    }
}

/// Midpoint reconstruction `out[i] = −half_range + (2·codes[i] + 1)·p` for
/// every slot, escape slots included — the caller patches those from its
/// outlier list afterwards.
pub fn dequantize_codes(codes: &[u16], half_range: f64, p: f64, out: &mut [f64]) {
    assert_eq!(codes.len(), out.len(), "dequantize_codes length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { dequantize_avx2(codes, half_range, p, out) },
        _ => dequantize_scalar(codes, half_range, p, out),
    }
}

/// Scalar arm of [`dequantize_codes`].
pub fn dequantize_scalar(codes: &[u16], half_range: f64, p: f64, out: &mut [f64]) {
    for (o, &c) in out.iter_mut().zip(codes) {
        *o = -half_range + (2.0 * c as f64 + 1.0) * p;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dequantize_avx2(codes: &[u16], half_range: f64, p: f64, out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = codes.len();
    let vneg_half = _mm256_set1_pd(-half_range);
    let vp = _mm256_set1_pd(p);
    let vone = _mm256_set1_pd(1.0);
    let cp = codes.as_ptr();
    let op = out.as_mut_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        let u16s = _mm_loadl_epi64(cp.add(i) as *const __m128i);
        let i32s = _mm_cvtepu16_epi32(u16s);
        let codef = _mm256_cvtepi32_pd(i32s);
        // 2·code + 1 is exact; then multiply-then-add (no FMA) for parity.
        let t = _mm256_add_pd(_mm256_add_pd(codef, codef), vone);
        _mm256_storeu_pd(op.add(i), _mm256_add_pd(vneg_half, _mm256_mul_pd(t, vp)));
        i += 4;
    }
    while i < n {
        out[i] = -half_range + (2.0 * codes[i] as f64 + 1.0) * p;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| match i % 13 {
                11 => f64::NAN,
                12 => f64::INFINITY,
                7 => 1e300,
                _ => ((i as f64) * 0.61).sin() * 4.0,
            })
            .collect()
    }

    #[test]
    fn quantize_matches_scalar_bitwise() {
        for n in [0usize, 1, 3, 4, 5, 64, 129] {
            let s = scores(n);
            let mut a = vec![0u16; n];
            let mut b = vec![0u16; n];
            quantize_codes(&s, 4.0, 0.01, 400, 400, &mut a);
            quantize_scalar(&s, 4.0, 0.01, 400, 400, &mut b);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn quantize_escapes_non_finite_and_out_of_range() {
        let s = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            100.0,
            -100.0,
            0.0,
        ];
        let mut codes = vec![0u16; s.len()];
        quantize_codes(&s, 4.0, 0.01, 400, 65535, &mut codes);
        assert_eq!(&codes[..5], &[65535; 5]);
        assert!(codes[5] < 400);
    }

    #[test]
    fn dequantize_matches_scalar_bitwise() {
        for n in [0usize, 1, 4, 7, 100] {
            let codes: Vec<u16> = (0..n).map(|i| (i * 37 % 401) as u16).collect();
            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            dequantize_codes(&codes, 4.0, 0.01, &mut a);
            dequantize_scalar(&codes, 4.0, 0.01, &mut b);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_error_is_bounded_by_p() {
        let p = 0.01;
        let half = 4.0;
        let s: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.017).sin() * 3.9).collect();
        let mut codes = vec![0u16; s.len()];
        quantize_codes(&s, half, p, 400, 65535, &mut codes);
        let mut back = vec![0.0; s.len()];
        dequantize_codes(&codes, half, p, &mut back);
        for (i, (&orig, &rec)) in s.iter().zip(&back).enumerate() {
            if codes[i] != 65535 {
                assert!((orig - rec).abs() <= p + 1e-12, "i={i} {orig} {rec}");
            }
        }
    }
}
