//! Runtime backend selection.
//!
//! Every kernel in this crate is compiled in (at least) two forms: a portable
//! scalar fallback and one or more SIMD variants gated on `target_arch`. The
//! variant actually executed is chosen **once per process** here, from CPU
//! feature detection, and cached — kernels branch on [`backend`] rather than
//! re-detecting per call.
//!
//! Setting the environment variable `DPZ_FORCE_SCALAR=1` (or `true`) pins the
//! scalar fallback regardless of what the CPU supports. CI uses this to run
//! the whole test suite on both dispatch arms; the parity suite in
//! `tests/parity.rs` additionally compares the arms directly.

use std::sync::OnceLock;

/// The kernel implementation family selected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar fallback, available everywhere.
    Scalar,
    /// x86_64 AVX2 + FMA.
    Avx2,
    /// aarch64 NEON (f64x2).
    Neon,
}

impl Backend {
    /// Stable lowercase name, used for telemetry labels and CLI summaries.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Stable numeric id for the `dpz_kernel_backend` gauge
    /// (0 = scalar, 1 = avx2, 2 = neon).
    pub fn id(self) -> u8 {
        match self {
            Backend::Scalar => 0,
            Backend::Avx2 => 1,
            Backend::Neon => 2,
        }
    }
}

fn force_scalar() -> bool {
    matches!(
        std::env::var("DPZ_FORCE_SCALAR").as_deref(),
        Ok("1") | Ok("true") | Ok("TRUE")
    )
}

fn detect() -> Backend {
    if force_scalar() {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Backend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is architecturally mandatory on aarch64.
        return Backend::Neon;
    }
    #[allow(unreachable_code)]
    Backend::Scalar
}

/// The backend selected for this process (cached after the first call).
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(detect)
}

/// Convenience: [`Backend::name`] of the selected backend.
pub fn backend_name() -> &'static str {
    backend().name()
}

/// True when the CRC-32 kernel may use carry-less multiply folding
/// (x86_64 `pclmulqdq` + SSE4.1). Independent of [`backend`] because a CPU
/// can have PCLMUL without AVX2; still honors `DPZ_FORCE_SCALAR`.
pub fn has_pclmul() -> bool {
    static PCLMUL: OnceLock<bool> = OnceLock::new();
    *PCLMUL.get_or_init(|| {
        if force_scalar() {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("pclmulqdq")
                && std::arch::is_x86_feature_detected!("sse4.1")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_is_stable_across_calls() {
        assert_eq!(backend(), backend());
        assert_eq!(backend().name(), backend_name());
    }

    #[test]
    fn names_and_ids_are_distinct() {
        let all = [Backend::Scalar, Backend::Avx2, Backend::Neon];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name(), b.name());
                assert_ne!(a.id(), b.id());
            }
        }
    }
}
