//! Level-1 vector kernels: dot product, fused multiply-add updates, and the
//! Givens rotation applied across two rows.
//!
//! These back the dense matrix layer (`Matrix::gram`), the restructured
//! symmetric eigensolver (Householder dots/updates, QL rotations) and the
//! subspace-iteration orthonormalization in `dpz-linalg`.
//!
//! ## Parity contract
//!
//! Every per-element operation uses a *fused* multiply-add in both arms
//! (`f64::mul_add` in the scalar fallback, `vfmadd`/`vfma` in SIMD), so each
//! output element sees the identical op sequence and the arms agree
//! bit-for-bit. [`dot`] additionally fixes the accumulation tree: 8 virtual
//! lanes filled in stride-8 chunks, reduced as
//! `((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7)) + tail`, with the tail folded in a
//! single sequential chain — the scalar arm replays exactly that tree.

use crate::backend::{backend, Backend};

/// Dot product `Σ x[i]·y[i]` with the fixed 8-lane accumulation tree.
///
/// Panics if the slices differ in length.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { dot_avx2(x, y) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { dot_neon(x, y) },
        _ => dot_scalar(x, y),
    }
}

/// Scalar arm of [`dot`] (public for the parity tests and benches).
pub fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = [0.0f64; 8];
    let chunks = x.len() / 8;
    for c in 0..chunks {
        let base = c * 8;
        for (l, a) in acc.iter_mut().enumerate() {
            *a = x[base + l].mul_add(y[base + l], *a);
        }
    }
    let mut tail = 0.0f64;
    for i in chunks * 8..x.len() {
        tail = x[i].mul_add(y[i], tail);
    }
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7])) + tail
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2(x: &[f64], y: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = x.len();
    let chunks = n / 8;
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    // Lane map: v0 holds virtual lanes 0..4, v1 holds 4..8.
    let mut v0 = _mm256_setzero_pd();
    let mut v1 = _mm256_setzero_pd();
    for c in 0..chunks {
        let b = c * 8;
        v0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(b)), _mm256_loadu_pd(yp.add(b)), v0);
        v1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(xp.add(b + 4)),
            _mm256_loadu_pd(yp.add(b + 4)),
            v1,
        );
    }
    // v[i] = acc[i] + acc[i+4]; then [v0+v2, v1+v3]; then lane0 + lane1.
    let v = _mm256_add_pd(v0, v1);
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd(v, 1);
    let s2 = _mm_add_pd(lo, hi);
    let s = _mm_cvtsd_f64(s2) + _mm_cvtsd_f64(_mm_unpackhi_pd(s2, s2));
    let mut tail = 0.0f64;
    for i in chunks * 8..n {
        tail = x[i].mul_add(y[i], tail);
    }
    s + tail
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_neon(x: &[f64], y: &[f64]) -> f64 {
    use std::arch::aarch64::*;
    let n = x.len();
    let chunks = n / 8;
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    // Virtual lanes: a0 = {0,1}, a1 = {2,3}, a2 = {4,5}, a3 = {6,7}.
    let mut a0 = vdupq_n_f64(0.0);
    let mut a1 = vdupq_n_f64(0.0);
    let mut a2 = vdupq_n_f64(0.0);
    let mut a3 = vdupq_n_f64(0.0);
    for c in 0..chunks {
        let b = c * 8;
        a0 = vfmaq_f64(a0, vld1q_f64(xp.add(b)), vld1q_f64(yp.add(b)));
        a1 = vfmaq_f64(a1, vld1q_f64(xp.add(b + 2)), vld1q_f64(yp.add(b + 2)));
        a2 = vfmaq_f64(a2, vld1q_f64(xp.add(b + 4)), vld1q_f64(yp.add(b + 4)));
        a3 = vfmaq_f64(a3, vld1q_f64(xp.add(b + 6)), vld1q_f64(yp.add(b + 6)));
    }
    // {a0+a4, a1+a5} and {a2+a6, a3+a7}, then the same tree as scalar.
    let p02 = vaddq_f64(a0, a2);
    let p13 = vaddq_f64(a1, a3);
    let q = vaddq_f64(p02, p13);
    let s = vgetq_lane_f64(q, 0) + vgetq_lane_f64(q, 1);
    let mut tail = 0.0f64;
    for i in chunks * 8..n {
        tail = x[i].mul_add(y[i], tail);
    }
    s + tail
}

/// Fused `dst[i] += alpha · x[i]` (one rounding per element).
///
/// Panics if the slices differ in length.
pub fn axpy(dst: &mut [f64], x: &[f64], alpha: f64) {
    assert_eq!(dst.len(), x.len(), "axpy length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { axpy_avx2(dst, x, alpha) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { axpy_neon(dst, x, alpha) },
        _ => axpy_scalar(dst, x, alpha),
    }
}

/// Scalar arm of [`axpy`].
pub fn axpy_scalar(dst: &mut [f64], x: &[f64], alpha: f64) {
    for (d, &v) in dst.iter_mut().zip(x) {
        *d = alpha.mul_add(v, *d);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_avx2(dst: &mut [f64], x: &[f64], alpha: f64) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let a = _mm256_set1_pd(alpha);
    let dp = dst.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        let d = _mm256_loadu_pd(dp.add(i));
        let v = _mm256_loadu_pd(xp.add(i));
        _mm256_storeu_pd(dp.add(i), _mm256_fmadd_pd(a, v, d));
        i += 4;
    }
    while i < n {
        dst[i] = alpha.mul_add(x[i], dst[i]);
        i += 1;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn axpy_neon(dst: &mut [f64], x: &[f64], alpha: f64) {
    use std::arch::aarch64::*;
    let n = dst.len();
    let a = vdupq_n_f64(alpha);
    let dp = dst.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0usize;
    while i + 2 <= n {
        let d = vld1q_f64(dp.add(i));
        let v = vld1q_f64(xp.add(i));
        vst1q_f64(dp.add(i), vfmaq_f64(d, a, v));
        i += 2;
    }
    while i < n {
        dst[i] = alpha.mul_add(x[i], dst[i]);
        i += 1;
    }
}

/// Fused two-vector update `dst[i] -= a·x[i] + b·y[i]`, computed as
/// `dst = fma(-b, y, fma(-a, x, dst))` in both arms (Householder column
/// update in `tred2`).
pub fn update2(dst: &mut [f64], x: &[f64], y: &[f64], a: f64, b: f64) {
    assert!(
        dst.len() == x.len() && dst.len() == y.len(),
        "update2 length mismatch"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { update2_avx2(dst, x, y, a, b) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { update2_neon(dst, x, y, a, b) },
        _ => update2_scalar(dst, x, y, a, b),
    }
}

/// Scalar arm of [`update2`].
pub fn update2_scalar(dst: &mut [f64], x: &[f64], y: &[f64], a: f64, b: f64) {
    for i in 0..dst.len() {
        dst[i] = (-b).mul_add(y[i], (-a).mul_add(x[i], dst[i]));
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn update2_avx2(dst: &mut [f64], x: &[f64], y: &[f64], a: f64, b: f64) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let va = _mm256_set1_pd(a);
    let vb = _mm256_set1_pd(b);
    let dp = dst.as_mut_ptr();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        let d = _mm256_loadu_pd(dp.add(i));
        let t = _mm256_fnmadd_pd(va, _mm256_loadu_pd(xp.add(i)), d);
        let r = _mm256_fnmadd_pd(vb, _mm256_loadu_pd(yp.add(i)), t);
        _mm256_storeu_pd(dp.add(i), r);
        i += 4;
    }
    while i < n {
        dst[i] = (-b).mul_add(y[i], (-a).mul_add(x[i], dst[i]));
        i += 1;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn update2_neon(dst: &mut [f64], x: &[f64], y: &[f64], a: f64, b: f64) {
    use std::arch::aarch64::*;
    let n = dst.len();
    let va = vdupq_n_f64(a);
    let vb = vdupq_n_f64(b);
    let dp = dst.as_mut_ptr();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut i = 0usize;
    while i + 2 <= n {
        let d = vld1q_f64(dp.add(i));
        let t = vfmsq_f64(d, va, vld1q_f64(xp.add(i)));
        let r = vfmsq_f64(t, vb, vld1q_f64(yp.add(i)));
        vst1q_f64(dp.add(i), r);
        i += 2;
    }
    while i < n {
        dst[i] = (-b).mul_add(y[i], (-a).mul_add(x[i], dst[i]));
        i += 1;
    }
}

/// Fused symmetric-matvec step: returns `Σ row[k]·u[k]` (the [`dot`]
/// accumulation tree) while scattering `e[k] += uj·row[k]` in the same pass —
/// `row` is loaded once instead of twice across a separate dot + axpy. This
/// is the inner loop of the Householder reduction's `p = A·u` over
/// lower-triangle rows.
///
/// Panics if the slices differ in length.
pub fn dot_axpy(e: &mut [f64], row: &[f64], u: &[f64], uj: f64) -> f64 {
    assert!(
        e.len() == row.len() && e.len() == u.len(),
        "dot_axpy length mismatch"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { dot_axpy_avx2(e, row, u, uj) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { dot_axpy_neon(e, row, u, uj) },
        _ => dot_axpy_scalar(e, row, u, uj),
    }
}

/// Scalar arm of [`dot_axpy`] (replays [`dot_scalar`]'s 8-lane tree).
pub fn dot_axpy_scalar(e: &mut [f64], row: &[f64], u: &[f64], uj: f64) -> f64 {
    let mut acc = [0.0f64; 8];
    let chunks = row.len() / 8;
    for c in 0..chunks {
        let base = c * 8;
        for (l, a) in acc.iter_mut().enumerate() {
            let r = row[base + l];
            e[base + l] = uj.mul_add(r, e[base + l]);
            *a = r.mul_add(u[base + l], *a);
        }
    }
    let mut tail = 0.0f64;
    for i in chunks * 8..row.len() {
        let r = row[i];
        e[i] = uj.mul_add(r, e[i]);
        tail = r.mul_add(u[i], tail);
    }
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7])) + tail
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_axpy_avx2(e: &mut [f64], row: &[f64], u: &[f64], uj: f64) -> f64 {
    use std::arch::x86_64::*;
    let n = row.len();
    let chunks = n / 8;
    let ep = e.as_mut_ptr();
    let rp = row.as_ptr();
    let up = u.as_ptr();
    let vj = _mm256_set1_pd(uj);
    let mut v0 = _mm256_setzero_pd();
    let mut v1 = _mm256_setzero_pd();
    for c in 0..chunks {
        let b = c * 8;
        let r0 = _mm256_loadu_pd(rp.add(b));
        let r1 = _mm256_loadu_pd(rp.add(b + 4));
        _mm256_storeu_pd(
            ep.add(b),
            _mm256_fmadd_pd(vj, r0, _mm256_loadu_pd(ep.add(b))),
        );
        _mm256_storeu_pd(
            ep.add(b + 4),
            _mm256_fmadd_pd(vj, r1, _mm256_loadu_pd(ep.add(b + 4))),
        );
        v0 = _mm256_fmadd_pd(r0, _mm256_loadu_pd(up.add(b)), v0);
        v1 = _mm256_fmadd_pd(r1, _mm256_loadu_pd(up.add(b + 4)), v1);
    }
    let v = _mm256_add_pd(v0, v1);
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd(v, 1);
    let s2 = _mm_add_pd(lo, hi);
    let s = _mm_cvtsd_f64(s2) + _mm_cvtsd_f64(_mm_unpackhi_pd(s2, s2));
    let mut tail = 0.0f64;
    for i in chunks * 8..n {
        let r = row[i];
        e[i] = uj.mul_add(r, e[i]);
        tail = r.mul_add(u[i], tail);
    }
    s + tail
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_axpy_neon(e: &mut [f64], row: &[f64], u: &[f64], uj: f64) -> f64 {
    use std::arch::aarch64::*;
    let n = row.len();
    let chunks = n / 8;
    let ep = e.as_mut_ptr();
    let rp = row.as_ptr();
    let up = u.as_ptr();
    let vj = vdupq_n_f64(uj);
    let mut a0 = vdupq_n_f64(0.0);
    let mut a1 = vdupq_n_f64(0.0);
    let mut a2 = vdupq_n_f64(0.0);
    let mut a3 = vdupq_n_f64(0.0);
    for c in 0..chunks {
        let b = c * 8;
        let r0 = vld1q_f64(rp.add(b));
        let r1 = vld1q_f64(rp.add(b + 2));
        let r2 = vld1q_f64(rp.add(b + 4));
        let r3 = vld1q_f64(rp.add(b + 6));
        vst1q_f64(ep.add(b), vfmaq_f64(vld1q_f64(ep.add(b)), vj, r0));
        vst1q_f64(ep.add(b + 2), vfmaq_f64(vld1q_f64(ep.add(b + 2)), vj, r1));
        vst1q_f64(ep.add(b + 4), vfmaq_f64(vld1q_f64(ep.add(b + 4)), vj, r2));
        vst1q_f64(ep.add(b + 6), vfmaq_f64(vld1q_f64(ep.add(b + 6)), vj, r3));
        a0 = vfmaq_f64(a0, r0, vld1q_f64(up.add(b)));
        a1 = vfmaq_f64(a1, r1, vld1q_f64(up.add(b + 2)));
        a2 = vfmaq_f64(a2, r2, vld1q_f64(up.add(b + 4)));
        a3 = vfmaq_f64(a3, r3, vld1q_f64(up.add(b + 6)));
    }
    let p02 = vaddq_f64(a0, a2);
    let p13 = vaddq_f64(a1, a3);
    let q = vaddq_f64(p02, p13);
    let s = vgetq_lane_f64(q, 0) + vgetq_lane_f64(q, 1);
    let mut tail = 0.0f64;
    for i in chunks * 8..n {
        let r = row[i];
        e[i] = uj.mul_add(r, e[i]);
        tail = r.mul_add(u[i], tail);
    }
    s + tail
}

/// Fused four-vector accumulate `dst[i] += a·w[i] + b·x[i] + c·y[i] + d·z[i]`,
/// computed as the single chain `fma(d, z, fma(c, y, fma(b, x, fma(a, w,
/// dst))))` in both arms (rank-4 Gram update: four input rows scattered into
/// one output row per pass, quadrupling the arithmetic per `dst`
/// load/store).
#[allow(clippy::too_many_arguments)]
pub fn accum4(
    dst: &mut [f64],
    w: &[f64],
    x: &[f64],
    y: &[f64],
    z: &[f64],
    a: f64,
    b: f64,
    c: f64,
    d: f64,
) {
    assert!(
        dst.len() == w.len()
            && dst.len() == x.len()
            && dst.len() == y.len()
            && dst.len() == z.len(),
        "accum4 length mismatch"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { accum4_avx2(dst, w, x, y, z, a, b, c, d) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { accum4_neon(dst, w, x, y, z, a, b, c, d) },
        _ => accum4_scalar(dst, w, x, y, z, a, b, c, d),
    }
}

/// Scalar arm of [`accum4`].
#[allow(clippy::too_many_arguments)]
pub fn accum4_scalar(
    dst: &mut [f64],
    w: &[f64],
    x: &[f64],
    y: &[f64],
    z: &[f64],
    a: f64,
    b: f64,
    c: f64,
    d: f64,
) {
    for i in 0..dst.len() {
        dst[i] = d.mul_add(
            z[i],
            c.mul_add(y[i], b.mul_add(x[i], a.mul_add(w[i], dst[i]))),
        );
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn accum4_avx2(
    dst: &mut [f64],
    w: &[f64],
    x: &[f64],
    y: &[f64],
    z: &[f64],
    a: f64,
    b: f64,
    c: f64,
    d: f64,
) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let va = _mm256_set1_pd(a);
    let vb = _mm256_set1_pd(b);
    let vc = _mm256_set1_pd(c);
    let vd = _mm256_set1_pd(d);
    let dp = dst.as_mut_ptr();
    let wp = w.as_ptr();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let zp = z.as_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        let mut t = _mm256_loadu_pd(dp.add(i));
        t = _mm256_fmadd_pd(va, _mm256_loadu_pd(wp.add(i)), t);
        t = _mm256_fmadd_pd(vb, _mm256_loadu_pd(xp.add(i)), t);
        t = _mm256_fmadd_pd(vc, _mm256_loadu_pd(yp.add(i)), t);
        t = _mm256_fmadd_pd(vd, _mm256_loadu_pd(zp.add(i)), t);
        _mm256_storeu_pd(dp.add(i), t);
        i += 4;
    }
    while i < n {
        dst[i] = d.mul_add(
            z[i],
            c.mul_add(y[i], b.mul_add(x[i], a.mul_add(w[i], dst[i]))),
        );
        i += 1;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
#[allow(clippy::too_many_arguments)]
unsafe fn accum4_neon(
    dst: &mut [f64],
    w: &[f64],
    x: &[f64],
    y: &[f64],
    z: &[f64],
    a: f64,
    b: f64,
    c: f64,
    d: f64,
) {
    use std::arch::aarch64::*;
    let n = dst.len();
    let va = vdupq_n_f64(a);
    let vb = vdupq_n_f64(b);
    let vc = vdupq_n_f64(c);
    let vd = vdupq_n_f64(d);
    let dp = dst.as_mut_ptr();
    let wp = w.as_ptr();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let zp = z.as_ptr();
    let mut i = 0usize;
    while i + 2 <= n {
        let mut t = vld1q_f64(dp.add(i));
        t = vfmaq_f64(t, va, vld1q_f64(wp.add(i)));
        t = vfmaq_f64(t, vb, vld1q_f64(xp.add(i)));
        t = vfmaq_f64(t, vc, vld1q_f64(yp.add(i)));
        t = vfmaq_f64(t, vd, vld1q_f64(zp.add(i)));
        vst1q_f64(dp.add(i), t);
        i += 2;
    }
    while i < n {
        dst[i] = d.mul_add(
            z[i],
            c.mul_add(y[i], b.mul_add(x[i], a.mul_add(w[i], dst[i]))),
        );
        i += 1;
    }
}

/// Apply a Givens rotation across two rows:
/// `(r0[k], r1[k]) ← (c·r0[k] − s·r1[k], s·r0[k] + c·r1[k])`, with the fixed
/// op order `t = c·r1[k]` (rounded), `r1' = fma(s, r0[k], t)`,
/// `u = c·r0[k]` (rounded), `r0' = fma(−s, r1[k], u)` in both arms.
pub fn rot2(r0: &mut [f64], r1: &mut [f64], c: f64, s: f64) {
    assert_eq!(r0.len(), r1.len(), "rot2 length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { rot2_avx2(r0, r1, c, s) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { rot2_neon(r0, r1, c, s) },
        _ => rot2_scalar(r0, r1, c, s),
    }
}

/// Scalar arm of [`rot2`].
pub fn rot2_scalar(r0: &mut [f64], r1: &mut [f64], c: f64, s: f64) {
    for k in 0..r0.len() {
        let f = r1[k];
        let g = r0[k];
        r1[k] = s.mul_add(g, c * f);
        r0[k] = (-s).mul_add(f, c * g);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn rot2_avx2(r0: &mut [f64], r1: &mut [f64], c: f64, s: f64) {
    use std::arch::x86_64::*;
    let n = r0.len();
    let vc = _mm256_set1_pd(c);
    let vs = _mm256_set1_pd(s);
    let p0 = r0.as_mut_ptr();
    let p1 = r1.as_mut_ptr();
    let mut k = 0usize;
    while k + 4 <= n {
        let f = _mm256_loadu_pd(p1.add(k));
        let g = _mm256_loadu_pd(p0.add(k));
        _mm256_storeu_pd(p1.add(k), _mm256_fmadd_pd(vs, g, _mm256_mul_pd(vc, f)));
        _mm256_storeu_pd(p0.add(k), _mm256_fnmadd_pd(vs, f, _mm256_mul_pd(vc, g)));
        k += 4;
    }
    while k < n {
        let f = r1[k];
        let g = r0[k];
        r1[k] = s.mul_add(g, c * f);
        r0[k] = (-s).mul_add(f, c * g);
        k += 1;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn rot2_neon(r0: &mut [f64], r1: &mut [f64], c: f64, s: f64) {
    use std::arch::aarch64::*;
    let n = r0.len();
    let vc = vdupq_n_f64(c);
    let vs = vdupq_n_f64(s);
    let p0 = r0.as_mut_ptr();
    let p1 = r1.as_mut_ptr();
    let mut k = 0usize;
    while k + 2 <= n {
        let f = vld1q_f64(p1.add(k));
        let g = vld1q_f64(p0.add(k));
        vst1q_f64(p1.add(k), vfmaq_f64(vmulq_f64(vc, f), vs, g));
        vst1q_f64(p0.add(k), vfmsq_f64(vmulq_f64(vc, g), vs, f));
        k += 2;
    }
    while k < n {
        let f = r1[k];
        let g = r0[k];
        r1[k] = s.mul_add(g, c * f);
        r0[k] = (-s).mul_add(f, c * g);
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, mul: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * mul).sin() + 0.1).collect()
    }

    #[test]
    fn dot_matches_scalar_bitwise() {
        for n in [0usize, 1, 3, 7, 8, 9, 31, 100, 255] {
            let x = seq(n, 0.37);
            let y = seq(n, 0.11);
            assert_eq!(dot(&x, &y).to_bits(), dot_scalar(&x, &y).to_bits(), "n={n}");
        }
    }

    #[test]
    fn dot_is_accurate() {
        let x = seq(500, 0.2);
        let y = seq(500, 0.3);
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-9 * naive.abs().max(1.0));
    }

    #[test]
    fn axpy_matches_scalar_bitwise() {
        for n in [0usize, 1, 5, 16, 33] {
            let x = seq(n, 0.7);
            let mut a = seq(n, 0.2);
            let mut b = a.clone();
            axpy(&mut a, &x, 1.37);
            axpy_scalar(&mut b, &x, 1.37);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn update2_matches_scalar_bitwise() {
        for n in [0usize, 2, 9, 40] {
            let x = seq(n, 0.3);
            let y = seq(n, 0.9);
            let mut a = seq(n, 0.5);
            let mut b = a.clone();
            update2(&mut a, &x, &y, 0.7, -1.3);
            update2_scalar(&mut b, &x, &y, 0.7, -1.3);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn dot_axpy_matches_scalar_bitwise() {
        for n in [0usize, 1, 3, 7, 8, 9, 31, 100, 255] {
            let row = seq(n, 0.37);
            let u = seq(n, 0.11);
            let mut ea = seq(n, 0.23);
            let mut eb = ea.clone();
            let da = dot_axpy(&mut ea, &row, &u, 1.7);
            let db = dot_axpy_scalar(&mut eb, &row, &u, 1.7);
            assert_eq!(da.to_bits(), db.to_bits(), "n={n}");
            assert_eq!(ea, eb, "n={n}");
        }
    }

    #[test]
    fn dot_axpy_matches_separate_dot_and_axpy() {
        let n = 97;
        let row = seq(n, 0.37);
        let u = seq(n, 0.11);
        let mut e = seq(n, 0.23);
        let mut e_ref = e.clone();
        let d = dot_axpy(&mut e, &row, &u, 1.7);
        let d_ref = dot(&row, &u);
        axpy(&mut e_ref, &row, 1.7);
        assert_eq!(d.to_bits(), d_ref.to_bits());
        assert_eq!(e, e_ref);
    }

    #[test]
    fn accum4_matches_scalar_bitwise() {
        for n in [0usize, 1, 3, 4, 9, 40, 101] {
            let w = seq(n, 0.3);
            let x = seq(n, 0.9);
            let y = seq(n, 1.7);
            let z = seq(n, 2.3);
            let mut a = seq(n, 0.5);
            let mut b = a.clone();
            accum4(&mut a, &w, &x, &y, &z, 0.7, -1.3, 2.1, 0.01);
            accum4_scalar(&mut b, &w, &x, &y, &z, 0.7, -1.3, 2.1, 0.01);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn accum4_matches_four_axpys_numerically() {
        let n = 73;
        let w = seq(n, 0.3);
        let x = seq(n, 0.9);
        let y = seq(n, 1.7);
        let z = seq(n, 2.3);
        let mut a = seq(n, 0.5);
        let mut b = a.clone();
        accum4(&mut a, &w, &x, &y, &z, 0.7, -1.3, 2.1, 0.01);
        axpy(&mut b, &w, 0.7);
        axpy(&mut b, &x, -1.3);
        axpy(&mut b, &y, 2.1);
        axpy(&mut b, &z, 0.01);
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-12 * q.abs().max(1.0));
        }
    }

    #[test]
    fn rot2_matches_scalar_and_is_orthogonal() {
        let (c, s) = (0.8, 0.6); // c² + s² = 1
        for n in [1usize, 4, 11] {
            let mut a0 = seq(n, 0.4);
            let mut a1 = seq(n, 0.8);
            let (b0, b1) = (a0.clone(), a1.clone());
            let norm_before: f64 = a0.iter().chain(&a1).map(|v| v * v).sum();
            rot2(&mut a0, &mut a1, c, s);
            let norm_after: f64 = a0.iter().chain(&a1).map(|v| v * v).sum();
            assert!((norm_before - norm_after).abs() < 1e-12 * norm_before);
            let mut c0 = b0.clone();
            let mut c1 = b1.clone();
            rot2_scalar(&mut c0, &mut c1, c, s);
            assert_eq!(a0, c0);
            assert_eq!(a1, c1);
        }
    }
}
