//! Cache-blocked f64 matrix-multiply microkernel.
//!
//! The B operand is packed once into zero-padded column panels of width
//! [`NR`] ([`PackedB`]); callers then drive [`gemm_strip`] over row strips of
//! A (the `dpz-linalg` matrix layer parallelizes across strips, so one
//! `PackedB` is shared read-only by every worker). Each strip packs [`MR`]
//! rows of A at a time and runs a register-tiled MR×NR microkernel
//! (8 YMM accumulators on AVX2, 16 NEON q-registers on aarch64).
//!
//! ## Parity contract
//!
//! Every output element is an independent chain
//! `acc = fma(a[r][k], b[k][j], acc)` over `k` in ascending order, followed by
//! one final `c += acc`. The scalar arm replays exactly that chain per
//! element, so the arms agree bit-for-bit (tiling only reorders *independent*
//! chains, never the additions within one).

use crate::backend::{backend, Backend};

/// Microkernel row count (rows of A per register tile).
pub const MR: usize = 4;
/// Microkernel column count (columns of B per packed panel).
pub const NR: usize = 8;

/// B packed into `ceil(n / NR)` column panels, each `k × NR` with the last
/// panel zero-padded on the right. Panel `p` holds columns
/// `p·NR .. min((p+1)·NR, n)`; entry `(k, j)` of a panel lives at
/// `panel[k·NR + j]`.
pub struct PackedB {
    data: Vec<f64>,
    /// Shared (inner) dimension.
    pub k: usize,
    /// Output column count.
    pub n: usize,
}

impl PackedB {
    /// Pack a row-major `k × n` matrix.
    pub fn new(b: &[f64], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "PackedB shape mismatch");
        let panels = n.div_ceil(NR);
        let mut data = vec![0.0f64; panels * k * NR];
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &mut data[p * k * NR..(p + 1) * k * NR];
            for kk in 0..k {
                let src = &b[kk * n + j0..kk * n + j0 + w];
                panel[kk * NR..kk * NR + w].copy_from_slice(src);
            }
        }
        PackedB { data, k, n }
    }

    #[inline]
    fn panel(&self, p: usize) -> &[f64] {
        &self.data[p * self.k * NR..(p + 1) * self.k * NR]
    }
}

/// `c += a · b` for a row strip: `a` is `rows × k` row-major, `c` is
/// `rows × b.n` row-major, `b` pre-packed. Safe to call concurrently on
/// disjoint strips sharing one [`PackedB`].
pub fn gemm_strip(c: &mut [f64], a: &[f64], rows: usize, b: &PackedB) {
    let k = b.k;
    assert_eq!(a.len(), rows * k, "gemm_strip: A shape mismatch");
    assert_eq!(c.len(), rows * b.n, "gemm_strip: C shape mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { gemm_strip_avx2(c, a, rows, b) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { gemm_strip_neon(c, a, rows, b) },
        _ => gemm_strip_scalar(c, a, rows, b),
    }
}

/// Scalar arm of [`gemm_strip`] (public for the parity tests and benches).
pub fn gemm_strip_scalar(c: &mut [f64], a: &[f64], rows: usize, b: &PackedB) {
    let k = b.k;
    let n = b.n;
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let panel = b.panel(p);
        for r in 0..rows {
            let arow = &a[r * k..(r + 1) * k];
            let crow = &mut c[r * n + j0..r * n + j0 + w];
            for (j, cv) in crow.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for (kk, &av) in arow.iter().enumerate() {
                    acc = av.mul_add(panel[kk * NR + j], acc);
                }
                *cv += acc;
            }
        }
    }
}

/// Pack `mr` rows of A (row `r0 + i`, length `k`) into `apack` laid out
/// column-major (`apack[kk·MR + i]`), zero-padding missing rows.
#[inline]
fn pack_a_block(apack: &mut [f64], a: &[f64], k: usize, r0: usize, mr: usize) {
    apack[..k * MR].fill(0.0);
    for i in 0..mr {
        let row = &a[(r0 + i) * k..(r0 + i + 1) * k];
        for (kk, &v) in row.iter().enumerate() {
            apack[kk * MR + i] = v;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_strip_avx2(c: &mut [f64], a: &[f64], rows: usize, b: &PackedB) {
    use std::arch::x86_64::*;
    let k = b.k;
    let n = b.n;
    let panels = n.div_ceil(NR);
    let mut apack = vec![0.0f64; k.max(1) * MR];
    let mut tile = [0.0f64; MR * NR];
    let mut r0 = 0usize;
    while r0 < rows {
        let mr = MR.min(rows - r0);
        pack_a_block(&mut apack, a, k, r0, mr);
        let ap = apack.as_ptr();
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let bp = b.panel(p).as_ptr();
            let mut acc = [_mm256_setzero_pd(); MR * 2];
            for kk in 0..k {
                let b0 = _mm256_loadu_pd(bp.add(kk * NR));
                let b1 = _mm256_loadu_pd(bp.add(kk * NR + 4));
                for i in 0..MR {
                    let av = _mm256_set1_pd(*ap.add(kk * MR + i));
                    acc[i * 2] = _mm256_fmadd_pd(av, b0, acc[i * 2]);
                    acc[i * 2 + 1] = _mm256_fmadd_pd(av, b1, acc[i * 2 + 1]);
                }
            }
            let tp = tile.as_mut_ptr();
            for i in 0..MR {
                _mm256_storeu_pd(tp.add(i * NR), acc[i * 2]);
                _mm256_storeu_pd(tp.add(i * NR + 4), acc[i * 2 + 1]);
            }
            for i in 0..mr {
                let crow = &mut c[(r0 + i) * n + j0..(r0 + i) * n + j0 + w];
                for (j, cv) in crow.iter_mut().enumerate() {
                    *cv += tile[i * NR + j];
                }
            }
        }
        r0 += mr;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn gemm_strip_neon(c: &mut [f64], a: &[f64], rows: usize, b: &PackedB) {
    use std::arch::aarch64::*;
    let k = b.k;
    let n = b.n;
    let panels = n.div_ceil(NR);
    let mut apack = vec![0.0f64; k.max(1) * MR];
    let mut tile = [0.0f64; MR * NR];
    let mut r0 = 0usize;
    while r0 < rows {
        let mr = MR.min(rows - r0);
        pack_a_block(&mut apack, a, k, r0, mr);
        let ap = apack.as_ptr();
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let bp = b.panel(p).as_ptr();
            let mut acc = [vdupq_n_f64(0.0); MR * 4];
            for kk in 0..k {
                let b0 = vld1q_f64(bp.add(kk * NR));
                let b1 = vld1q_f64(bp.add(kk * NR + 2));
                let b2 = vld1q_f64(bp.add(kk * NR + 4));
                let b3 = vld1q_f64(bp.add(kk * NR + 6));
                for i in 0..MR {
                    let av = vdupq_n_f64(*ap.add(kk * MR + i));
                    acc[i * 4] = vfmaq_f64(acc[i * 4], av, b0);
                    acc[i * 4 + 1] = vfmaq_f64(acc[i * 4 + 1], av, b1);
                    acc[i * 4 + 2] = vfmaq_f64(acc[i * 4 + 2], av, b2);
                    acc[i * 4 + 3] = vfmaq_f64(acc[i * 4 + 3], av, b3);
                }
            }
            let tp = tile.as_mut_ptr();
            for i in 0..MR {
                vst1q_f64(tp.add(i * NR), acc[i * 4]);
                vst1q_f64(tp.add(i * NR + 2), acc[i * 4 + 1]);
                vst1q_f64(tp.add(i * NR + 4), acc[i * 4 + 2]);
                vst1q_f64(tp.add(i * NR + 6), acc[i * 4 + 3]);
            }
            for i in 0..mr {
                let crow = &mut c[(r0 + i) * n + j0..(r0 + i) * n + j0 + w];
                for (j, cv) in crow.iter_mut().enumerate() {
                    *cv += tile[i * NR + j];
                }
            }
        }
        r0 += mr;
    }
}

/// Tall-skinny panel product `c += w · b` for a *thin* left operand:
/// `w` is `s × n` row-major with `s` small (a sketch/subspace), `b` is
/// `n × m` row-major, `c` is `s × m` row-major.
///
/// Unlike [`gemm_strip`] there is no [`PackedB`]: packing an `n × m`
/// operand costs a full extra pass over it, which a rank-`s` product never
/// amortizes. Instead rows of `b` are streamed exactly once, in quads,
/// through [`crate::blas::accum4`] (remainder rows via
/// [`crate::blas::axpy`]), so every element of `b` is read once and all
/// arithmetic lands on contiguous output rows.
///
/// ## Parity contract
///
/// Each output element accumulates contributions in ascending row order of
/// `b`, grouped into the fixed four-term FMA chains of `accum4` plus an
/// `axpy` tail — both of which are bitwise-identical across the scalar,
/// AVX2 and NEON arms. The result is therefore deterministic and
/// backend-independent (and trivially thread-independent: the routine is
/// serial).
pub fn gemm_thin(c: &mut [f64], w: &[f64], s: usize, b: &[f64], n: usize, m: usize) {
    assert_eq!(w.len(), s * n, "gemm_thin: W shape mismatch");
    assert_eq!(b.len(), n * m, "gemm_thin: B shape mismatch");
    assert_eq!(c.len(), s * m, "gemm_thin: C shape mismatch");
    let quads = n & !3;
    let mut j = 0;
    while j < quads {
        let b0 = &b[j * m..(j + 1) * m];
        let b1 = &b[(j + 1) * m..(j + 2) * m];
        let b2 = &b[(j + 2) * m..(j + 3) * m];
        let b3 = &b[(j + 3) * m..(j + 4) * m];
        for r in 0..s {
            let wr = &w[r * n..(r + 1) * n];
            crate::blas::accum4(
                &mut c[r * m..(r + 1) * m],
                b0,
                b1,
                b2,
                b3,
                wr[j],
                wr[j + 1],
                wr[j + 2],
                wr[j + 3],
            );
        }
        j += 4;
    }
    while j < n {
        let bj = &b[j * m..(j + 1) * m];
        for r in 0..s {
            crate::blas::axpy(&mut c[r * m..(r + 1) * m], bj, w[r * n + j]);
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(rows: usize, cols: usize, seed: f64) -> Vec<f64> {
        (0..rows * cols)
            .map(|i| ((i as f64) * seed).sin() * 2.0 - 0.3)
            .collect()
    }

    fn naive(a: &[f64], b: &[f64], n: usize, k: usize, p: usize) -> Vec<f64> {
        let mut c = vec![0.0; n * p];
        for i in 0..n {
            for j in 0..p {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * p + j];
                }
                c[i * p + j] = acc;
            }
        }
        c
    }

    #[test]
    fn gemm_matches_naive_within_tolerance() {
        for &(n, k, p) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 8),
            (13, 17, 19),
            (32, 24, 40),
        ] {
            let a = fill(n, k, 0.13);
            let b = fill(k, p, 0.29);
            let pb = PackedB::new(&b, k, p);
            let mut c = vec![0.0; n * p];
            gemm_strip(&mut c, &a, n, &pb);
            let want = naive(&a, &b, n, k, p);
            for (got, exp) in c.iter().zip(&want) {
                assert!(
                    (got - exp).abs() <= 1e-12 * exp.abs().max(1.0),
                    "{n}x{k}x{p}"
                );
            }
        }
    }

    #[test]
    fn dispatched_matches_scalar_bitwise() {
        for &(n, k, p) in &[(5usize, 9usize, 11usize), (16, 16, 16), (7, 180, 23)] {
            let a = fill(n, k, 0.21);
            let b = fill(k, p, 0.17);
            let pb = PackedB::new(&b, k, p);
            let mut c0 = vec![0.0; n * p];
            let mut c1 = vec![0.0; n * p];
            gemm_strip(&mut c0, &a, n, &pb);
            gemm_strip_scalar(&mut c1, &a, n, &pb);
            assert_eq!(c0, c1, "{n}x{k}x{p}");
        }
    }

    #[test]
    fn gemm_thin_matches_naive_within_tolerance() {
        // Shapes chosen to exercise the quad loop, the axpy remainder
        // (n % 4 != 0) and single-row sketches.
        for &(s, n, m) in &[
            (1usize, 1usize, 1usize),
            (3, 7, 11),
            (4, 16, 8),
            (13, 31, 19),
            (16, 100, 48),
        ] {
            let w = fill(s, n, 0.19);
            let b = fill(n, m, 0.23);
            let mut c = vec![0.0; s * m];
            gemm_thin(&mut c, &w, s, &b, n, m);
            let want = naive(&w, &b, s, n, m);
            for (got, exp) in c.iter().zip(&want) {
                assert!(
                    (got - exp).abs() <= 1e-11 * exp.abs().max(1.0),
                    "{s}x{n}x{m}"
                );
            }
        }
    }

    #[test]
    fn gemm_thin_matches_scalar_chain_bitwise() {
        // The dispatched kernels must replay exactly the accum4/axpy chain
        // the scalar arms define — that is the determinism contract the
        // randomized range-finder's fixed-seed artifacts rely on.
        for &(s, n, m) in &[(2usize, 9usize, 13usize), (8, 32, 180), (5, 101, 7)] {
            let w = fill(s, n, 0.31);
            let b = fill(n, m, 0.11);
            let mut c0 = vec![0.0; s * m];
            gemm_thin(&mut c0, &w, s, &b, n, m);
            // Scalar replay of the same chain.
            let mut c1 = vec![0.0; s * m];
            let quads = n & !3;
            let mut j = 0;
            while j < quads {
                for r in 0..s {
                    let wr = &w[r * n..(r + 1) * n];
                    let (b0, b1, b2, b3) = (
                        &b[j * m..(j + 1) * m],
                        &b[(j + 1) * m..(j + 2) * m],
                        &b[(j + 2) * m..(j + 3) * m],
                        &b[(j + 3) * m..(j + 4) * m],
                    );
                    crate::blas::accum4_scalar(
                        &mut c1[r * m..(r + 1) * m],
                        b0,
                        b1,
                        b2,
                        b3,
                        wr[j],
                        wr[j + 1],
                        wr[j + 2],
                        wr[j + 3],
                    );
                }
                j += 4;
            }
            while j < n {
                for r in 0..s {
                    crate::blas::axpy_scalar(
                        &mut c1[r * m..(r + 1) * m],
                        &b[j * m..(j + 1) * m],
                        w[r * n + j],
                    );
                }
                j += 1;
            }
            assert_eq!(c0, c1, "{s}x{n}x{m}");
        }
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = fill(2, 3, 0.4);
        let b = fill(3, 2, 0.6);
        let pb = PackedB::new(&b, 3, 2);
        let mut c = vec![1.0; 4];
        gemm_strip(&mut c, &a, 2, &pb);
        let want = naive(&a, &b, 2, 3, 2);
        for (got, exp) in c.iter().zip(&want) {
            assert!((got - (exp + 1.0)).abs() < 1e-12);
        }
    }
}
