//! Integrity/entropy-stage kernels: CRC-32 (IEEE, reflected), Adler-32, and
//! the literal-byte histogram feeding Huffman code-length counting.
//!
//! CRC-32 uses slice-by-8 tables everywhere and, when the CPU has
//! `pclmulqdq` (see [`crate::backend::has_pclmul`]), a fold-by-4 carry-less
//! multiply loop for buffers ≥ 128 bytes. The folding constants are the
//! published Intel/zlib values for the reflected CRC-32 polynomial
//! (`x^{512+64}, x^{512}, x^{128+64}, x^{128} mod P`); instead of a Barrett
//! reduction the final 16 folded bytes are pushed through the table path,
//! which keeps the code small and exactly matches the scalar result.
//!
//! All kernels here are exact integer computations, so scalar/SIMD parity is
//! equality of values, not merely of rounding behavior.

use crate::backend::{backend, has_pclmul, Backend};

const CRC_POLY: u32 = 0xEDB8_8320;

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC_POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 8 {
        let mut i = 0usize;
        while i < 256 {
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// Advance a raw (pre-inverted) CRC-32 state over `data`. Streaming-safe:
/// splitting `data` at any point and chaining calls gives the same result.
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if data.len() >= 128 && has_pclmul() {
            return unsafe { crc32_pclmul(state, data) };
        }
    }
    crc32_update_scalar(state, data)
}

/// Slice-by-8 table arm of [`crc32_update`] (public for the parity tests and
/// benches).
pub fn crc32_update_scalar(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

// Reflected-domain folding constants (Intel "Fast CRC Computation Using
// PCLMULQDQ" / zlib): x^{512+64}, x^{512}, x^{128+64}, x^{128} mod P.
#[cfg(target_arch = "x86_64")]
const K1: i64 = 0x0000_0001_5444_2bd4;
#[cfg(target_arch = "x86_64")]
const K2: i64 = 0x0000_0001_c6e4_1596;
#[cfg(target_arch = "x86_64")]
const K3: i64 = 0x0000_0001_7519_97d0;
#[cfg(target_arch = "x86_64")]
const K4: i64 = 0x0000_0000_ccaa_009e;

/// Fold the 128-bit accumulator `a` across 512 or 128 bits (per `keys`) and
/// absorb the next block `b`.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
unsafe fn fold(
    a: std::arch::x86_64::__m128i,
    b: std::arch::x86_64::__m128i,
    keys: std::arch::x86_64::__m128i,
) -> std::arch::x86_64::__m128i {
    use std::arch::x86_64::*;
    let lo = _mm_clmulepi64_si128(a, keys, 0x00);
    let hi = _mm_clmulepi64_si128(a, keys, 0x11);
    _mm_xor_si128(_mm_xor_si128(b, lo), hi)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
unsafe fn crc32_pclmul(state: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::*;
    debug_assert!(data.len() >= 64);
    let mut p = data.as_ptr() as *const __m128i;
    let mut rem = data.len();
    // Oldest-to-newest stream order: x3, x2, x1, x0.
    let mut x3 = _mm_loadu_si128(p);
    let mut x2 = _mm_loadu_si128(p.add(1));
    let mut x1 = _mm_loadu_si128(p.add(2));
    let mut x0 = _mm_loadu_si128(p.add(3));
    p = p.add(4);
    rem -= 64;
    // The incoming state folds into the first four message bytes (the table
    // recurrence is linear in state ^ leading bytes).
    x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(state as i32));

    let k1k2 = _mm_set_epi64x(K2, K1);
    while rem >= 64 {
        x3 = fold(x3, _mm_loadu_si128(p), k1k2);
        x2 = fold(x2, _mm_loadu_si128(p.add(1)), k1k2);
        x1 = fold(x1, _mm_loadu_si128(p.add(2)), k1k2);
        x0 = fold(x0, _mm_loadu_si128(p.add(3)), k1k2);
        p = p.add(4);
        rem -= 64;
    }

    let k3k4 = _mm_set_epi64x(K4, K3);
    let mut x = fold(x3, x2, k3k4);
    x = fold(x, x1, k3k4);
    x = fold(x, x0, k3k4);
    while rem >= 16 {
        x = fold(x, _mm_loadu_si128(p), k3k4);
        p = p.add(1);
        rem -= 16;
    }

    // Finish via the table path: CRC of (16 folded bytes ++ tail) from a
    // zero state equals the CRC of the whole original stream.
    let mut xb = [0u8; 16];
    _mm_storeu_si128(xb.as_mut_ptr() as *mut __m128i, x);
    let crc = crc32_update_scalar(0, &xb);
    crc32_update_scalar(crc, &data[data.len() - rem..])
}

const MOD_ADLER: u32 = 65_521;
const NMAX: usize = 5552;

/// Advance an Adler-32 state (`s2 << 16 | s1`, initial state 1) over `data`.
pub fn adler32_update(state: u32, data: &[u8]) -> u32 {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { adler32_avx2(state, data) },
        _ => adler32_update_scalar(state, data),
    }
}

/// Scalar arm of [`adler32_update`].
pub fn adler32_update_scalar(state: u32, data: &[u8]) -> u32 {
    let mut s1 = state & 0xFFFF;
    let mut s2 = state >> 16;
    for block in data.chunks(NMAX) {
        for &b in block {
            s1 += b as u32;
            s2 += s1;
        }
        s1 %= MOD_ADLER;
        s2 %= MOD_ADLER;
    }
    (s2 << 16) | s1
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn adler32_avx2(state: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::*;
    let mut s1 = (state & 0xFFFF) as u64;
    let mut s2 = (state >> 16) as u64;
    // Weights 32..1 for Σ (32−i)·b_i within a chunk.
    let weights = _mm256_set_epi8(
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25,
        26, 27, 28, 29, 30, 31, 32,
    );
    let ones = _mm256_set1_epi16(1);
    let zero = _mm256_setzero_si256();
    for block in data.chunks(NMAX) {
        let chunks = block.len() / 32;
        if chunks > 0 {
            let mut vb = zero; // Σ Bsum_j lanes (epi64 from SAD)
            let mut vb_later = zero; // Σ_j (chunks−1−j)·Bsum_j lanes
            let mut vw = zero; // Σ weighted sums (epi32)
            let bp = block.as_ptr();
            for j in 0..chunks {
                let d = _mm256_loadu_si256(bp.add(j * 32) as *const __m256i);
                vb_later = _mm256_add_epi64(vb_later, vb);
                vb = _mm256_add_epi64(vb, _mm256_sad_epu8(d, zero));
                let w16 = _mm256_maddubs_epi16(d, weights);
                vw = _mm256_add_epi32(vw, _mm256_madd_epi16(w16, ones));
            }
            let hsum64 = |v: __m256i| -> u64 {
                let lo = _mm256_castsi256_si128(v);
                let hi = _mm256_extracti128_si256(v, 1);
                let s = _mm_add_epi64(lo, hi);
                (_mm_cvtsi128_si64(s) as u64)
                    .wrapping_add(_mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)) as u64)
            };
            let hsum32 = |v: __m256i| -> u64 {
                let lo = _mm256_castsi256_si128(v);
                let hi = _mm256_extracti128_si256(v, 1);
                let s = _mm_add_epi32(lo, hi);
                let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
                let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
                (_mm_cvtsi128_si32(s) as u32) as u64
            };
            let b_total = hsum64(vb);
            let b_later = hsum64(vb_later);
            let w_total = hsum32(vw);
            // s2 gains 32·s1 per chunk, plus 32× the byte sums of earlier
            // chunks, plus each chunk's in-chunk weighted sum.
            s2 += 32 * chunks as u64 * s1 + 32 * b_later + w_total;
            s1 += b_total;
        }
        for &b in &block[chunks * 32..] {
            s1 += b as u64;
            s2 += s1;
        }
        s1 %= MOD_ADLER as u64;
        s2 %= MOD_ADLER as u64;
    }
    ((s2 as u32) << 16) | s1 as u32
}

/// Accumulate byte counts into `counts`. Four-way table unrolling breaks the
/// store-to-load dependency on repeated bytes; exact counting, no SIMD
/// (vectorized histograms need conflict detection, AVX-512 CD territory).
pub fn byte_histogram(data: &[u8], counts: &mut [u64; 256]) {
    let mut t0 = [0u32; 256];
    let mut t1 = [0u32; 256];
    let mut t2 = [0u32; 256];
    let mut t3 = [0u32; 256];
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        t0[c[0] as usize] += 1;
        t1[c[1] as usize] += 1;
        t2[c[2] as usize] += 1;
        t3[c[3] as usize] += 1;
    }
    for &b in chunks.remainder() {
        t0[b as usize] += 1;
    }
    for i in 0..256 {
        counts[i] += t0[i] as u64 + t1[i] as u64 + t2[i] as u64 + t3[i] as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crc_bitwise(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ CRC_POLY
                } else {
                    crc >> 1
                };
            }
        }
        crc ^ 0xFFFF_FFFF
    }

    fn crc32(data: &[u8]) -> u32 {
        crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
    }

    fn pattern(n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u32).wrapping_mul(2654435761).to_le_bytes()[0])
            .collect()
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_matches_bitwise_reference_across_sizes() {
        for n in [
            0usize, 1, 7, 8, 9, 63, 64, 65, 127, 128, 129, 255, 1024, 4097,
        ] {
            let d = pattern(n);
            assert_eq!(crc32(&d), crc_bitwise(&d), "n={n}");
            assert_eq!(
                crc32_update(0xFFFF_FFFF, &d) ^ 0xFFFF_FFFF,
                crc32_update_scalar(0xFFFF_FFFF, &d) ^ 0xFFFF_FFFF,
                "parity n={n}"
            );
        }
    }

    #[test]
    fn crc32_streaming_split_anywhere() {
        let d = pattern(777);
        let whole = crc32_update(0xFFFF_FFFF, &d);
        for split in [0usize, 1, 16, 63, 64, 130, 776, 777] {
            let s = crc32_update(crc32_update(0xFFFF_FFFF, &d[..split]), &d[split..]);
            assert_eq!(s, whole, "split={split}");
        }
    }

    #[test]
    fn adler32_matches_scalar_across_sizes() {
        for n in [0usize, 1, 31, 32, 33, 100, 5551, 5552, 5553, 20000] {
            let d = pattern(n);
            assert_eq!(adler32_update(1, &d), adler32_update_scalar(1, &d), "n={n}");
        }
        // Known vector: adler32("Wikipedia") = 0x11E60398.
        assert_eq!(adler32_update(1, b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn histogram_counts_exactly() {
        let d = pattern(10_007);
        let mut got = [0u64; 256];
        byte_histogram(&d, &mut got);
        let mut want = [0u64; 256];
        for &b in &d {
            want[b as usize] += 1;
        }
        assert_eq!(got, want);
        // Accumulates rather than overwrites.
        byte_histogram(&d, &mut got);
        for i in 0..256 {
            assert_eq!(got[i], 2 * want[i]);
        }
    }
}
