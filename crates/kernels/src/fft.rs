//! Radix-2 FFT butterfly passes, pointwise complex multiplies for the
//! Bluestein convolution, and the DCT-II/III pre/post rotation stages.
//!
//! The FFT here replaces the serial twiddle recurrence (`w = w.mul(wlen)`)
//! with per-stage twiddle tables built once by [`fill_stage_twiddles`] and
//! cached by `dpz-linalg`'s `FftScratch` — that alone removes a loop-carried
//! dependency from every butterfly pass, and the tables give the SIMD arm
//! contiguous twiddle loads.
//!
//! ## Parity contract
//!
//! Complex multiplication follows `Complex::mul` exactly (`a·c − b·d`,
//! `a·d + b·c`, two products and one add/sub per component, no FMA). The
//! AVX2 arm reproduces that bit-for-bit with the
//! `movedup`/`permute`/`addsub` recipe in `cmul_pd`. Butterfly adds and
//! subtracts are per-element and commute with vectorization, so scalar and
//! dispatched transforms agree bit-for-bit.

use crate::backend::{backend, Backend};
use crate::complex::Complex;

/// Build the per-stage twiddle tables for a power-of-two FFT of length `n`.
///
/// Stage `len` (2, 4, …, n) owns `len/2` entries at offset `len/2 − 1`:
/// entry `j` is `e^{s·2πi·j/len}` with `s = +1` for inverse, `−1` for
/// forward. Total table length is `n − 1` (empty for `n ≤ 1`).
pub fn fill_stage_twiddles(table: &mut Vec<Complex>, n: usize, inverse: bool) {
    table.clear();
    if n > 1 {
        table.reserve(n - 1);
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let base = if inverse {
                2.0 * std::f64::consts::PI / len as f64
            } else {
                -2.0 * std::f64::consts::PI / len as f64
            };
            for j in 0..half {
                table.push(Complex::from_angle(base * j as f64));
            }
            len <<= 1;
        }
        debug_assert_eq!(table.len(), n - 1);
    }
}

fn bit_reverse(buf: &mut [Complex]) {
    let n = buf.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
}

/// In-place power-of-two FFT using pre-built stage tables (direction is baked
/// into the table). The inverse transform is unscaled — callers divide by
/// `n` themselves, matching the historical `dpz-linalg` behavior.
///
/// Panics in debug builds if `buf.len()` is not a power of two or the table
/// length does not match.
pub fn fft_pow2(buf: &mut [Complex], table: &[Complex]) {
    let n = buf.len();
    debug_assert!(n <= 1 || n.is_power_of_two(), "fft_pow2: non-pow2 length");
    debug_assert_eq!(table.len(), n.saturating_sub(1), "fft_pow2: table mismatch");
    bit_reverse(buf);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { stages_avx2(buf, table) },
        _ => stages_scalar(buf, table),
    }
}

/// Scalar arm of [`fft_pow2`] (public for the parity tests and benches).
pub fn fft_pow2_scalar(buf: &mut [Complex], table: &[Complex]) {
    let n = buf.len();
    debug_assert!(n <= 1 || n.is_power_of_two());
    debug_assert_eq!(table.len(), n.saturating_sub(1));
    bit_reverse(buf);
    stages_scalar(buf, table);
}

fn stages_scalar(buf: &mut [Complex], table: &[Complex]) {
    let n = buf.len();
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        let tw = &table[half - 1..half - 1 + half];
        let mut base = 0usize;
        while base < n {
            for j in 0..half {
                let u = buf[base + j];
                let v = buf[base + j + half].mul(tw[j]);
                buf[base + j] = u.add(v);
                buf[base + j + half] = u.sub(v);
            }
            base += len;
        }
        len <<= 1;
    }
}

/// `a.mul(b)` lane-pairwise on two packed complex numbers, bit-identical to
/// `Complex::mul`.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cmul_pd(
    a: std::arch::x86_64::__m256d,
    b: std::arch::x86_64::__m256d,
) -> std::arch::x86_64::__m256d {
    use std::arch::x86_64::*;
    let ar = _mm256_movedup_pd(a); // [a0.re, a0.re, a1.re, a1.re]
    let ai = _mm256_permute_pd(a, 0xF); // [a0.im, a0.im, a1.im, a1.im]
    let bswap = _mm256_permute_pd(b, 0x5); // [b0.im, b0.re, b1.im, b1.re]
    _mm256_addsub_pd(_mm256_mul_pd(ar, b), _mm256_mul_pd(ai, bswap))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn stages_avx2(buf: &mut [Complex], table: &[Complex]) {
    use std::arch::x86_64::*;
    let n = buf.len();
    if n < 2 {
        return;
    }
    let p = buf.as_mut_ptr() as *mut f64;
    // len == 2: butterflies on adjacent pairs, one YMM each.
    let mut i = 0usize;
    while i + 2 <= n {
        let x = _mm256_loadu_pd(p.add(2 * i)); // [u.re, u.im, v.re, v.im]
        let t = _mm256_permute2f128_pd(x, x, 0x01); // [v.re, v.im, u.re, u.im]
        let add = _mm256_add_pd(x, t); // [u+v, v+u]
        let sub = _mm256_sub_pd(t, x); // [v−u, u−v]
                                       // low half = u + v, high half = u − v.
        _mm256_storeu_pd(p.add(2 * i), _mm256_blend_pd(add, sub, 0b1100));
        i += 2;
    }
    // len >= 4: half is a multiple of 2, so the j loop never has a remainder.
    let mut len = 4usize;
    while len <= n {
        let half = len / 2;
        let tp = table[half - 1..half - 1 + half].as_ptr() as *const f64;
        let mut base = 0usize;
        while base < n {
            let mut j = 0usize;
            while j < half {
                let w = _mm256_loadu_pd(tp.add(2 * j));
                let v = _mm256_loadu_pd(p.add(2 * (base + j + half)));
                let vw = cmul_pd(v, w);
                let u = _mm256_loadu_pd(p.add(2 * (base + j)));
                _mm256_storeu_pd(p.add(2 * (base + j)), _mm256_add_pd(u, vw));
                _mm256_storeu_pd(p.add(2 * (base + j + half)), _mm256_sub_pd(u, vw));
                j += 2;
            }
            base += len;
        }
        len <<= 1;
    }
}

/// Pointwise `dst[i] = dst[i].mul(other[i])` (Bluestein convolution).
pub fn cmul_assign(dst: &mut [Complex], other: &[Complex]) {
    assert_eq!(dst.len(), other.len(), "cmul_assign length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { cmul_assign_avx2(dst, other) },
        _ => cmul_assign_scalar(dst, other),
    }
}

/// Scalar arm of [`cmul_assign`].
pub fn cmul_assign_scalar(dst: &mut [Complex], other: &[Complex]) {
    for (d, &o) in dst.iter_mut().zip(other) {
        *d = d.mul(o);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn cmul_assign_avx2(dst: &mut [Complex], other: &[Complex]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let dp = dst.as_mut_ptr() as *mut f64;
    let op = other.as_ptr() as *const f64;
    let mut i = 0usize;
    while i + 2 <= n {
        let a = _mm256_loadu_pd(dp.add(2 * i));
        let b = _mm256_loadu_pd(op.add(2 * i));
        _mm256_storeu_pd(dp.add(2 * i), cmul_pd(a, b));
        i += 2;
    }
    while i < n {
        dst[i] = dst[i].mul(other[i]);
        i += 1;
    }
}

/// Pointwise `dst[i] = dst[i].scale(s).mul(other[i])` — the Bluestein
/// epilogue (`conv · (1/m) · chirp`) with the historical op order preserved.
pub fn cmul_assign_prescaled(dst: &mut [Complex], other: &[Complex], s: f64) {
    assert_eq!(
        dst.len(),
        other.len(),
        "cmul_assign_prescaled length mismatch"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { cmul_assign_prescaled_avx2(dst, other, s) },
        _ => cmul_assign_prescaled_scalar(dst, other, s),
    }
}

/// Scalar arm of [`cmul_assign_prescaled`].
pub fn cmul_assign_prescaled_scalar(dst: &mut [Complex], other: &[Complex], s: f64) {
    for (d, &o) in dst.iter_mut().zip(other) {
        *d = d.scale(s).mul(o);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn cmul_assign_prescaled_avx2(dst: &mut [Complex], other: &[Complex], s: f64) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let dp = dst.as_mut_ptr() as *mut f64;
    let op = other.as_ptr() as *const f64;
    let vs = _mm256_set1_pd(s);
    let mut i = 0usize;
    while i + 2 <= n {
        let a = _mm256_mul_pd(_mm256_loadu_pd(dp.add(2 * i)), vs);
        let b = _mm256_loadu_pd(op.add(2 * i));
        _mm256_storeu_pd(dp.add(2 * i), cmul_pd(a, b));
        i += 2;
    }
    while i < n {
        dst[i] = dst[i].scale(s).mul(other[i]);
        i += 1;
    }
}

/// `out[i] = x[i].mul(y[i])` into a separate destination (Bluestein prologue:
/// input times chirp).
pub fn cmul_into(out: &mut [Complex], x: &[Complex], y: &[Complex]) {
    assert!(
        out.len() == x.len() && out.len() == y.len(),
        "cmul_into length mismatch"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { cmul_into_avx2(out, x, y) },
        _ => cmul_into_scalar(out, x, y),
    }
}

/// Scalar arm of [`cmul_into`].
pub fn cmul_into_scalar(out: &mut [Complex], x: &[Complex], y: &[Complex]) {
    for i in 0..out.len() {
        out[i] = x[i].mul(y[i]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn cmul_into_avx2(out: &mut [Complex], x: &[Complex], y: &[Complex]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let op = out.as_mut_ptr() as *mut f64;
    let xp = x.as_ptr() as *const f64;
    let yp = y.as_ptr() as *const f64;
    let mut i = 0usize;
    while i + 2 <= n {
        let a = _mm256_loadu_pd(xp.add(2 * i));
        let b = _mm256_loadu_pd(yp.add(2 * i));
        _mm256_storeu_pd(op.add(2 * i), cmul_pd(a, b));
        i += 2;
    }
    while i < n {
        out[i] = x[i].mul(y[i]);
        i += 1;
    }
}

/// Scale a complex buffer in place (`buf[i] = buf[i].scale(s)`, the inverse
/// FFT's `1/n` normalization).
pub fn cscale(buf: &mut [Complex], s: f64) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { cscale_avx2(buf, s) },
        _ => cscale_scalar(buf, s),
    }
}

/// Scalar arm of [`cscale`].
pub fn cscale_scalar(buf: &mut [Complex], s: f64) {
    for v in buf.iter_mut() {
        *v = v.scale(s);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn cscale_avx2(buf: &mut [Complex], s: f64) {
    use std::arch::x86_64::*;
    let n = buf.len();
    let p = buf.as_mut_ptr() as *mut f64;
    let vs = _mm256_set1_pd(s);
    let mut i = 0usize;
    while i + 2 <= n {
        _mm256_storeu_pd(
            p.add(2 * i),
            _mm256_mul_pd(_mm256_loadu_pd(p.add(2 * i)), vs),
        );
        i += 2;
    }
    while i < n {
        buf[i] = buf[i].scale(s);
        i += 1;
    }
}

/// DCT-II post-rotation: `out[i] = tw[i].mul(v[i]).re · sk` over equal-length
/// slices (callers pass the `k = 1..n` range; `k = 0` uses a different scale).
pub fn dct2_post(out: &mut [f64], tw: &[Complex], v: &[Complex], sk: f64) {
    assert!(
        out.len() == tw.len() && out.len() == v.len(),
        "dct2_post length mismatch"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { dct2_post_avx2(out, tw, v, sk) },
        _ => dct2_post_scalar(out, tw, v, sk),
    }
}

/// Scalar arm of [`dct2_post`].
pub fn dct2_post_scalar(out: &mut [f64], tw: &[Complex], v: &[Complex], sk: f64) {
    for i in 0..out.len() {
        out[i] = tw[i].mul(v[i]).re * sk;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dct2_post_avx2(out: &mut [f64], tw: &[Complex], v: &[Complex], sk: f64) {
    use std::arch::x86_64::*;
    let n = out.len();
    let tp = tw.as_ptr() as *const f64;
    let vp = v.as_ptr() as *const f64;
    let vs = _mm_set1_pd(sk);
    let mut i = 0usize;
    while i + 2 <= n {
        let prod = cmul_pd(
            _mm256_loadu_pd(tp.add(2 * i)),
            _mm256_loadu_pd(vp.add(2 * i)),
        );
        // [re0, re1, im0, im1] — keep the low 128 bits.
        let sorted = _mm256_permute4x64_pd(prod, 0b11011000);
        let re = _mm256_castpd256_pd128(sorted);
        _mm_storeu_pd(out.as_mut_ptr().add(i), _mm_mul_pd(re, vs));
        i += 2;
    }
    while i < n {
        out[i] = tw[i].mul(v[i]).re * sk;
        i += 1;
    }
}

/// DCT-III pre-rotation: for `k` in `1..n`,
/// `v[k] = tw[k].conj().mul(Complex::new(c[k], −c[n−k]))`. `v[0]` is left
/// untouched for the caller. All slices have length `n`.
pub fn dct3_pre(v: &mut [Complex], tw: &[Complex], c: &[f64]) {
    let n = c.len();
    assert!(v.len() == n && tw.len() == n, "dct3_pre length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { dct3_pre_avx2(v, tw, c) },
        _ => dct3_pre_scalar(v, tw, c),
    }
}

/// Scalar arm of [`dct3_pre`].
pub fn dct3_pre_scalar(v: &mut [Complex], tw: &[Complex], c: &[f64]) {
    let n = c.len();
    for k in 1..n {
        v[k] = tw[k].conj().mul(Complex::new(c[k], -c[n - k]));
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dct3_pre_avx2(v: &mut [Complex], tw: &[Complex], c: &[f64]) {
    use std::arch::x86_64::*;
    let n = c.len();
    if n < 2 {
        return;
    }
    let vp = v.as_mut_ptr() as *mut f64;
    let tp = tw.as_ptr() as *const f64;
    let cp = c.as_ptr();
    // Sign masks: conj flips im lanes; the rhs negates its im component.
    let conj_mask = _mm256_castsi256_pd(_mm256_set_epi64x(
        i64::MIN,
        0,
        i64::MIN,
        0, // lanes [0,1,2,3] = [0, −0, 0, −0]
    ));
    let neg = _mm_castsi128_pd(_mm_set1_epi64x(i64::MIN));
    let mut k = 1usize;
    while k + 2 <= n {
        // b = [c[k], −c[n−k], c[k+1], −c[n−k−1]]
        let cf = _mm_loadu_pd(cp.add(k)); // [c[k], c[k+1]]
        let cr = _mm_loadu_pd(cp.add(n - k - 1)); // [c[n−k−1], c[n−k]]
        let nr = _mm_xor_pd(_mm_shuffle_pd(cr, cr, 0b01), neg); // [−c[n−k], −c[n−k−1]]
        let lo = _mm_unpacklo_pd(cf, nr);
        let hi = _mm_unpackhi_pd(cf, nr);
        let b = _mm256_set_m128d(hi, lo);
        let a = _mm256_xor_pd(_mm256_loadu_pd(tp.add(2 * k)), conj_mask); // tw.conj()
        _mm256_storeu_pd(vp.add(2 * k), cmul_pd(a, b));
        k += 2;
    }
    while k < n {
        v[k] = tw[k].conj().mul(Complex::new(c[k], -c[n - k]));
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft_naive(input: &[Complex], inverse: bool) -> Vec<Complex> {
        let n = input.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (j, &x) in input.iter().enumerate() {
                    let ang = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc = acc.add(x.mul(Complex::from_angle(ang)));
                }
                acc
            })
            .collect()
    }

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            for inverse in [false, true] {
                let input = signal(n);
                let mut table = Vec::new();
                fill_stage_twiddles(&mut table, n, inverse);
                let mut buf = input.clone();
                fft_pow2(&mut buf, &table);
                let want = dft_naive(&input, inverse);
                for (g, w) in buf.iter().zip(&want) {
                    assert!(
                        (g.re - w.re).abs() < 1e-9 && (g.im - w.im).abs() < 1e-9,
                        "n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn fft_dispatched_matches_scalar_bitwise() {
        for n in [2usize, 4, 32, 128, 1024] {
            let input = signal(n);
            let mut table = Vec::new();
            fill_stage_twiddles(&mut table, n, false);
            let mut a = input.clone();
            let mut b = input;
            fft_pow2(&mut a, &table);
            fft_pow2_scalar(&mut b, &table);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn cmul_variants_match_scalar_bitwise() {
        for n in [0usize, 1, 2, 5, 17] {
            let x = signal(n);
            let y: Vec<Complex> = signal(n).iter().map(|c| c.conj()).collect();
            let mut d0 = x.clone();
            let mut d1 = x.clone();
            cmul_assign(&mut d0, &y);
            cmul_assign_scalar(&mut d1, &y);
            assert_eq!(d0, d1);

            let mut p0 = x.clone();
            let mut p1 = x.clone();
            cmul_assign_prescaled(&mut p0, &y, 0.125);
            cmul_assign_prescaled_scalar(&mut p1, &y, 0.125);
            assert_eq!(p0, p1);

            let mut o0 = vec![Complex::default(); n];
            let mut o1 = vec![Complex::default(); n];
            cmul_into(&mut o0, &x, &y);
            cmul_into_scalar(&mut o1, &x, &y);
            assert_eq!(o0, o1);

            let mut s0 = x.clone();
            let mut s1 = x.clone();
            cscale(&mut s0, 1.0 / 3.0);
            cscale_scalar(&mut s1, 1.0 / 3.0);
            assert_eq!(s0, s1);
        }
    }

    #[test]
    fn dct_rotations_match_scalar_bitwise() {
        for n in [1usize, 2, 3, 8, 15, 64] {
            let tw: Vec<Complex> = (0..n)
                .map(|k| Complex::from_angle(-std::f64::consts::PI * k as f64 / (2.0 * n as f64)))
                .collect();
            let v = signal(n);
            let c: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();

            let mut o0 = vec![0.0f64; n];
            let mut o1 = vec![0.0f64; n];
            dct2_post(&mut o0, &tw, &v, 0.37);
            dct2_post_scalar(&mut o1, &tw, &v, 0.37);
            assert_eq!(o0, o1, "dct2_post n={n}");

            let mut v0 = vec![Complex::default(); n];
            let mut v1 = vec![Complex::default(); n];
            dct3_pre(&mut v0, &tw, &c);
            dct3_pre_scalar(&mut v1, &tw, &c);
            assert_eq!(v0, v1, "dct3_pre n={n}");
        }
    }

    #[test]
    fn fft_roundtrip_recovers_input() {
        let n = 128usize;
        let input = signal(n);
        let mut fwd = Vec::new();
        let mut inv = Vec::new();
        fill_stage_twiddles(&mut fwd, n, false);
        fill_stage_twiddles(&mut inv, n, true);
        let mut buf = input.clone();
        fft_pow2(&mut buf, &fwd);
        fft_pow2(&mut buf, &inv);
        cscale(&mut buf, 1.0 / n as f64);
        for (g, w) in buf.iter().zip(&input) {
            assert!((g.re - w.re).abs() < 1e-12 && (g.im - w.im).abs() < 1e-12);
        }
    }
}
