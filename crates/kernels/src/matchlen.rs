//! Common-prefix length — the LZ77 match-extension primitive.
//!
//! `match_len(a, b, limit)` returns how many leading bytes of `a` and `b`
//! are equal, capped at `limit`. The hash-chain matcher calls this once per
//! surviving chain candidate, so it dominates deflate's compress-side cost
//! on match-rich data; the wide arms compare 32 (AVX2) or 16 (NEON) bytes
//! per probe and locate the first difference with a movemask +
//! trailing-zeros step.
//!
//! Like the checksum kernels this is an exact integer computation: every arm
//! returns the identical value, so the scalar/SIMD parity contract is plain
//! equality (see `tests/parity.rs`).

use crate::backend::{backend, Backend};

/// Length of the common prefix of `a` and `b`, capped at `limit` (further
/// capped by the shorter slice).
#[inline]
pub fn match_len(a: &[u8], b: &[u8], limit: usize) -> usize {
    let limit = limit.min(a.len()).min(b.len());
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if limit >= 32 => unsafe { match_len_avx2(a, b, limit) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if limit >= 16 => unsafe { match_len_neon(a, b, limit) },
        _ => match_len_scalar(a, b, limit),
    }
}

/// Portable arm of [`match_len`] (public for the parity tests and benches).
///
/// Compares 8-byte words and finds the first mismatching byte via the XOR's
/// trailing zero count, falling back to a byte loop for the tail.
pub fn match_len_scalar(a: &[u8], b: &[u8], limit: usize) -> usize {
    let limit = limit.min(a.len()).min(b.len());
    let mut i = 0usize;
    while i + 8 <= limit {
        let wa = u64::from_le_bytes(a[i..i + 8].try_into().unwrap());
        let wb = u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        let x = wa ^ wb;
        if x != 0 {
            return i + (x.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < limit && a[i] == b[i] {
        i += 1;
    }
    i
}

/// AVX2 arm: 32-byte equality masks; the first zero bit of the movemask is
/// the first mismatch.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn match_len_avx2(a: &[u8], b: &[u8], limit: usize) -> usize {
    use std::arch::x86_64::*;
    debug_assert!(limit <= a.len() && limit <= b.len());
    let mut i = 0usize;
    while i + 32 <= limit {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let eq = _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32;
        if eq != u32::MAX {
            return i + (!eq).trailing_zeros() as usize;
        }
        i += 32;
    }
    i + match_len_scalar(&a[i..], &b[i..], limit - i)
}

/// NEON arm: 16-byte equality masks narrowed to a 64-bit nibble mask.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn match_len_neon(a: &[u8], b: &[u8], limit: usize) -> usize {
    use std::arch::aarch64::*;
    debug_assert!(limit <= a.len() && limit <= b.len());
    let mut i = 0usize;
    while i + 16 <= limit {
        let va = vld1q_u8(a.as_ptr().add(i));
        let vb = vld1q_u8(b.as_ptr().add(i));
        let eq = vceqq_u8(va, vb);
        // Narrow each 8-bit lane to 4 bits: lane j of the comparison maps to
        // bits 4j..4j+3 of the scalar, so tz/4 indexes the first mismatch.
        let nibbles = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
        let mask = vget_lane_u64(vreinterpret_u64_u8(nibbles), 0);
        if mask != u64::MAX {
            return i + ((!mask).trailing_zeros() / 4) as usize;
        }
        i += 16;
    }
    i + match_len_scalar(&a[i..], &b[i..], limit - i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_naive_on_crafted_prefixes() {
        let base: Vec<u8> = (0..512).map(|i| (i % 251) as u8).collect();
        for mismatch_at in [0usize, 1, 7, 8, 15, 16, 31, 32, 33, 63, 100, 258, 511] {
            let mut other = base.clone();
            if mismatch_at < other.len() {
                other[mismatch_at] ^= 0x40;
            }
            for limit in [0usize, 1, 3, 16, 32, 200, 258, 512, 1000] {
                let naive = base
                    .iter()
                    .zip(&other)
                    .take(limit)
                    .take_while(|(x, y)| x == y)
                    .count();
                assert_eq!(
                    match_len(&base, &other, limit),
                    naive,
                    "m={mismatch_at} l={limit}"
                );
                assert_eq!(
                    match_len_scalar(&base, &other, limit),
                    naive,
                    "scalar m={mismatch_at} l={limit}"
                );
            }
        }
    }

    #[test]
    fn identical_slices_hit_the_cap() {
        let v = vec![0xAB; 300];
        assert_eq!(match_len(&v, &v, 258), 258);
        assert_eq!(match_len(&v, &v, 1000), 300);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(match_len(&[], &[], 10), 0);
        assert_eq!(match_len(b"a", &[], 10), 0);
    }
}
