//! Backend parity properties: the scalar arm of every kernel must agree with
//! whatever `backend()` dispatched on this host. On AVX2/NEON machines these
//! properties compare genuinely different code paths; under
//! `DPZ_FORCE_SCALAR=1` (CI runs the suite both ways) they degenerate to
//! self-comparison, which keeps the suite green on scalar-only hosts.
//!
//! Tolerances follow each module's documented contract: blas, gemm, quant,
//! and checksum arms are engineered bit-identical; the fft/dct rotation
//! stages are held to ≤ 1 ulp per component.

use dpz_kernels::{blas, checksum, fft, gemm, matchlen, quant, Complex};
use proptest::prelude::*;

/// xorshift64* stream for dependently-sized buffers (the shim's `vec`
/// strategy cannot couple a length drawn in the same case).
fn fill_f64(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn fill_bytes(n: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 32) as u8
        })
        .collect()
}

/// Distance in units-in-the-last-place between two finite doubles
/// (0 for bit-equal values, including ±0).
fn ulp_diff(a: f64, b: f64) -> u64 {
    if a.to_bits() == b.to_bits() || a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Monotone total-order transform: negatives fold below the positives.
    let key = |x: f64| -> u64 {
        let bits = x.to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        }
    };
    key(a).abs_diff(key(b))
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs ({g:e} vs {w:e})"
        );
    }
}

fn assert_ulp_le(got: &[f64], want: &[f64], max_ulp: u64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let d = ulp_diff(g, w);
        assert!(
            d <= max_ulp,
            "{what}: element {i} off by {d} ulp ({g:e} vs {w:e})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- blas: bit-identical ----

    #[test]
    fn dot_matches_scalar_bitwise(n in 0usize..200, seed in any::<u64>()) {
        let x = fill_f64(n, seed);
        let y = fill_f64(n, seed ^ 0xDEAD_BEEF);
        let a = blas::dot(&x, &y);
        let b = blas::dot_scalar(&x, &y);
        prop_assert_eq!(a.to_bits(), b.to_bits(), "dot: {} vs {}", a, b);
    }

    #[test]
    fn axpy_matches_scalar_bitwise(
        n in 0usize..200,
        alpha in -4.0f64..4.0,
        seed in any::<u64>(),
    ) {
        let x = fill_f64(n, seed);
        let mut d0 = fill_f64(n, seed ^ 1);
        let mut d1 = d0.clone();
        blas::axpy(&mut d0, &x, alpha);
        blas::axpy_scalar(&mut d1, &x, alpha);
        assert_bits_eq(&d0, &d1, "axpy");
    }

    #[test]
    fn update2_matches_scalar_bitwise(
        n in 0usize..200,
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let x = fill_f64(n, seed);
        let y = fill_f64(n, seed ^ 2);
        let mut d0 = fill_f64(n, seed ^ 3);
        let mut d1 = d0.clone();
        blas::update2(&mut d0, &x, &y, a, b);
        blas::update2_scalar(&mut d1, &x, &y, a, b);
        assert_bits_eq(&d0, &d1, "update2");
    }

    #[test]
    fn rot2_matches_scalar_bitwise(n in 0usize..200, angle in 0.0f64..6.5, seed in any::<u64>()) {
        let (s, c) = angle.sin_cos();
        let mut a0 = fill_f64(n, seed);
        let mut b0 = fill_f64(n, seed ^ 4);
        let mut a1 = a0.clone();
        let mut b1 = b0.clone();
        blas::rot2(&mut a0, &mut b0, c, s);
        blas::rot2_scalar(&mut a1, &mut b1, c, s);
        assert_bits_eq(&a0, &a1, "rot2 r0");
        assert_bits_eq(&b0, &b1, "rot2 r1");
    }

    // ---- gemm: the microkernel reorders independent chains only ----

    #[test]
    fn gemm_strip_matches_scalar(
        m in 1usize..12,
        k in 1usize..48,
        n in 1usize..36,
        seed in any::<u64>(),
    ) {
        let a = fill_f64(m * k, seed);
        let b = fill_f64(k * n, seed ^ 5);
        let packed = gemm::PackedB::new(&b, k, n);
        let mut c0 = fill_f64(m * n, seed ^ 6);
        let mut c1 = c0.clone();
        gemm::gemm_strip(&mut c0, &a, m, &packed);
        gemm::gemm_strip_scalar(&mut c1, &a, m, &packed);
        assert_ulp_le(&c0, &c1, 1, "gemm_strip");
    }

    // ---- quant: bit-identical codes and reconstructions ----

    #[test]
    fn quantize_matches_scalar_bitwise(
        n in 0usize..2000,
        wide in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let bins: u32 = if wide { 65535 } else { 255 };
        let escape = bins as u16;
        // Scale some scores far past half_range so escape codes appear.
        let scores: Vec<f64> = fill_f64(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, v)| if i % 7 == 0 { v * 40.0 } else { v })
            .collect();
        let p = 0.5 / f64::from(bins);
        let half_range = p * f64::from(bins);
        let mut c0 = vec![0u16; n];
        let mut c1 = vec![0u16; n];
        quant::quantize_codes(&scores, half_range, p, bins, escape, &mut c0);
        quant::quantize_scalar(&scores, half_range, p, bins, escape, &mut c1);
        prop_assert_eq!(&c0, &c1);

        let inliers: Vec<u16> = c0.iter().map(|&c| if c == escape { 0 } else { c }).collect();
        let mut d0 = vec![0.0f64; n];
        let mut d1 = vec![0.0f64; n];
        quant::dequantize_codes(&inliers, half_range, p, &mut d0);
        quant::dequantize_scalar(&inliers, half_range, p, &mut d1);
        assert_bits_eq(&d0, &d1, "dequantize");
    }

    // ---- checksum: exact integer results ----

    #[test]
    fn crc32_matches_scalar(n in 0usize..5000, state in any::<u32>(), seed in any::<u64>()) {
        let data = fill_bytes(n, seed);
        prop_assert_eq!(
            checksum::crc32_update(state, &data),
            checksum::crc32_update_scalar(state, &data)
        );
    }

    #[test]
    fn adler32_matches_scalar(n in 0usize..20000, seed in any::<u64>()) {
        // Lengths past NMAX = 5552 exercise the modular-reduction blocking.
        let data = fill_bytes(n, seed);
        prop_assert_eq!(
            checksum::adler32_update(1, &data),
            checksum::adler32_update_scalar(1, &data)
        );
    }

    #[test]
    fn byte_histogram_matches_naive(n in 0usize..5000, seed in any::<u64>()) {
        let data = fill_bytes(n, seed);
        let mut counts = [0u64; 256];
        checksum::byte_histogram(&data, &mut counts);
        let mut naive = [0u64; 256];
        for &b in &data {
            naive[b as usize] += 1;
        }
        prop_assert_eq!(counts.to_vec(), naive.to_vec());
    }

    // ---- fft / dct rotation stages: ≤ 1 ulp per component ----

    #[test]
    fn fft_pow2_matches_scalar(log_n in 0u32..9, inverse in any::<bool>(), seed in any::<u64>()) {
        let n = 1usize << log_n;
        let re = fill_f64(n, seed);
        let im = fill_f64(n, seed ^ 7);
        let mut b0: Vec<Complex> = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| Complex::new(r, i))
            .collect();
        let mut b1 = b0.clone();
        let mut table = Vec::new();
        fft::fill_stage_twiddles(&mut table, n, inverse);
        fft::fft_pow2(&mut b0, &table);
        fft::fft_pow2_scalar(&mut b1, &table);
        for (i, (g, w)) in b0.iter().zip(&b1).enumerate() {
            prop_assert!(
                ulp_diff(g.re, w.re) <= 1 && ulp_diff(g.im, w.im) <= 1,
                "fft bin {}: ({}, {}) vs ({}, {})", i, g.re, g.im, w.re, w.im
            );
        }
    }

    #[test]
    fn cmul_kernels_match_scalar(n in 0usize..300, s in -2.0f64..2.0, seed in any::<u64>()) {
        let mk = |sd: u64| -> Vec<Complex> {
            let re = fill_f64(n, sd);
            let im = fill_f64(n, sd ^ 9);
            re.iter().zip(&im).map(|(&r, &i)| Complex::new(r, i)).collect()
        };
        let x = mk(seed);
        let y = mk(seed ^ 8);
        let check = |got: &[Complex], want: &[Complex], what: &str| {
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                assert!(
                    ulp_diff(g.re, w.re) <= 1 && ulp_diff(g.im, w.im) <= 1,
                    "{what} element {i}: ({}, {}) vs ({}, {})", g.re, g.im, w.re, w.im
                );
            }
        };

        let mut d0 = x.clone();
        let mut d1 = x.clone();
        fft::cmul_assign(&mut d0, &y);
        fft::cmul_assign_scalar(&mut d1, &y);
        check(&d0, &d1, "cmul_assign");

        let mut d0 = x.clone();
        let mut d1 = x.clone();
        fft::cmul_assign_prescaled(&mut d0, &y, s);
        fft::cmul_assign_prescaled_scalar(&mut d1, &y, s);
        check(&d0, &d1, "cmul_assign_prescaled");

        let mut o0 = vec![Complex::new(0.0, 0.0); n];
        let mut o1 = o0.clone();
        fft::cmul_into(&mut o0, &x, &y);
        fft::cmul_into_scalar(&mut o1, &x, &y);
        check(&o0, &o1, "cmul_into");

        let mut d0 = x.clone();
        let mut d1 = x;
        fft::cscale(&mut d0, s);
        fft::cscale_scalar(&mut d1, s);
        check(&d0, &d1, "cscale");
    }

    #[test]
    fn dct_rotation_stages_match_scalar(n in 2usize..200, sk in 0.01f64..2.0, seed in any::<u64>()) {
        let re = fill_f64(n, seed);
        let im = fill_f64(n, seed ^ 10);
        let tw: Vec<Complex> = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| Complex::new(r, i))
            .collect();
        let v: Vec<Complex> = fill_f64(n, seed ^ 11)
            .iter()
            .zip(fill_f64(n, seed ^ 12).iter())
            .map(|(&r, &i)| Complex::new(r, i))
            .collect();

        let mut o0 = vec![0.0f64; n];
        let mut o1 = vec![0.0f64; n];
        fft::dct2_post(&mut o0, &tw, &v, sk);
        fft::dct2_post_scalar(&mut o1, &tw, &v, sk);
        assert_ulp_le(&o0, &o1, 1, "dct2_post");

        let c = fill_f64(n, seed ^ 13);
        let mut v0 = v.clone();
        let mut v1 = v;
        fft::dct3_pre(&mut v0, &tw, &c);
        fft::dct3_pre_scalar(&mut v1, &tw, &c);
        for (i, (g, w)) in v0.iter().zip(&v1).enumerate() {
            prop_assert!(
                ulp_diff(g.re, w.re) <= 1 && ulp_diff(g.im, w.im) <= 1,
                "dct3_pre element {}: ({}, {}) vs ({}, {})", i, g.re, g.im, w.re, w.im
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // ---- matchlen: exact (a length, not a float) ----

    #[test]
    fn match_len_matches_scalar_exactly(
        n in 0usize..600,
        prefix in 0usize..600,
        limit in 0usize..600,
        seed in any::<u64>(),
    ) {
        // Two buffers forced to agree on `prefix` bytes, with the byte after
        // it (when present) forced to differ — so every divergence point,
        // including ones straddling the kernel's vector width, is reachable.
        let a = fill_bytes(n, seed);
        let mut b = fill_bytes(n, seed ^ 0xA5A5);
        let p = prefix.min(n);
        b[..p].copy_from_slice(&a[..p]);
        if p < n {
            b[p] = a[p].wrapping_add(1);
        }
        let fast = matchlen::match_len(&a, &b, limit);
        let slow = matchlen::match_len_scalar(&a, &b, limit);
        prop_assert_eq!(fast, slow, "n={} prefix={} limit={}", n, p, limit);
        prop_assert_eq!(slow, p.min(limit).min(n));
    }
}

/// The ulp metric itself has to be sound for the tolerances above to mean
/// anything.
#[test]
fn ulp_diff_sanity() {
    assert_eq!(ulp_diff(1.0, 1.0), 0);
    assert_eq!(ulp_diff(0.0, -0.0), 0);
    assert_eq!(ulp_diff(1.0, 1.0 + f64::EPSILON), 1);
    assert_eq!(ulp_diff(-1.0, -1.0 - f64::EPSILON), 1);
    assert!(ulp_diff(1.0, 2.0) > 1);
    assert!(ulp_diff(1.0, -1.0) > 1);
    assert_eq!(ulp_diff(f64::NAN, 1.0), u64::MAX);
}
