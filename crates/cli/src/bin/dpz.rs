//! `dpz` — command-line front end for the DPZ compressor.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dpz_cli::run(&args) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
