//! Implementation of the `dpz` command-line tool (argument parsing and
//! subcommands live here so they can be unit-tested; `src/bin/dpz.rs` is a
//! thin wrapper).
//!
//! ```text
//! dpz gen <dataset> <out.f32> [--scale tiny|small|default|paper] [--seed N]
//! dpz compress <in.f32> <out.dpz> --dims RxCxD [--codec dpz|dpzc|sz|zfp|auto]
//!     [--scheme loose|strict] [--tve NINES | --knee 1d|polyn] [--sampling]
//!     [--lossless deflate|tans] [--eb BOUND] [--precision BITS]
//! dpz decompress <in.dpz> <out.f32>
//! dpz info <in.dpz>
//! dpz eval <orig.f32> <recon.f32> [--compressed <file>]
//! ```

#![warn(missing_docs)]

use dpz_codec::{
    AutoCodec, Codec, CodecStats, DpzChunkedCodec, DpzCodec, Registry, SzCodec, ZfpCodec,
};
use dpz_core::{
    ContainerInfo, DpzConfig, KSelection, LosslessBackend, QualityTarget, Stage1Transform, TveLevel,
};
use dpz_data::dataset::DEFAULT_SEED;
use dpz_data::io::{read_f32_file, write_f32_file};
use dpz_data::metrics;
use dpz_data::{Dataset, DatasetKind, Scale};
use dpz_linalg::fit::FitKind;
use std::fmt::Write as _;

/// CLI failure: message for stderr plus a suggestion to use `--help`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str =
    "dpz — multi-stage information-retrieval lossy compressor (CLUSTER'21 reproduction)

USAGE:
  dpz gen <dataset> <out.f32> [--scale tiny|small|default|paper] [--seed N]
  dpz compress <in.f32> <out.dpz> --dims RxC[xD] [--codec dpz|dpzc|sz|zfp|auto]
               [--scheme loose|strict] [--tve NINES] [--knee 1d|polyn] [--sampling]
               [--transform dct|dwt] [--lossless deflate|tans] [--chunks N (dpzc)]
               [--progressive (dpzc)] [--eb BOUND, --predictor lorenzo|auto (sz)]
               [--precision BITS | --rate BITS/VAL (zfp)]
               [--target-ratio R [--ratio-tol T] | --target-psnr DB |
                --rel-bound REL | --abs-bound P]
               [--threads N] [--verbose] [--metrics-out <file[.prom|.json]>]
               [--trace-out <trace.json>]
  dpz decompress <in.dpz> <out.f32> [--threads N] [--verbose] [--metrics-out <file>]
                 [--trace-out <trace.json>]
                 [--chunk N | --region A..B[,C..D,...] | --budget BYTES (dpzc v4)]
  dpz info <in.dpz>
  dpz eval <orig.f32> <recon.f32> [--compressed <file>]

DATASETS: Isotropic Channel CLDHGH CLDLOW PHIS FREQSH FLDSC HACC-x HACC-vx
NINES:    3..=8 (\"--tve 5\" = 99.999%)

QUALITY TARGETS (any codec, mutually exclusive):
  --target-ratio R   search the bound space until the compression ratio
                     lands within --ratio-tol (default 0.1) of R, or fail
                     with the best achievable ratio
  --target-psnr DB   pick the bound for a reconstruction quality of DB
                     decibels, validated against the real roundtrip
  --rel-bound REL    pointwise error at most REL x the input's value range
  --abs-bound P      absolute quantizer bound P (DPZ) / absolute error
                     bound (sz, zfp)

OBSERVABILITY:
  --verbose      trace every pipeline span to stderr (same as DPZ_TRACE=1)
  --metrics-out  dump this run's metrics; '.json' writes the JSON form,
                 anything else the Prometheus text exposition
  --trace-out    record an event trace of this run and write it as Chrome
                 trace-event JSON (open in Perfetto or chrome://tracing)

PARALLELISM:
  --threads N    size of the work-stealing pool (default: DPZ_THREADS env,
                 then the machine's core count); N=1 forces sequential runs

RANDOM ACCESS (dpzc v4 containers):
  --chunk N      decode only chunk N; reads and CRC-verifies just its bytes
  --region R     decode an axis-aligned region, one half-open range per
                 dimension (e.g. --region 0..100,250..300)
  --budget B     progressive streams only: reconstruct the full extent from
                 roughly the first B bytes, highest-energy components first
";

/// Parse dims like `1800x3600` or `128x128x128`.
pub fn parse_dims(s: &str) -> Result<Vec<usize>, CliError> {
    let dims: Result<Vec<usize>, _> = s.split(['x', 'X']).map(str::parse::<usize>).collect();
    let dims = dims.map_err(|_| err(format!("invalid --dims '{s}'")))?;
    if dims.is_empty() || dims.contains(&0) {
        return Err(err(format!("invalid --dims '{s}'")));
    }
    Ok(dims)
}

/// Pull the value following a `--flag`.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Honor `--threads N` by sizing the global pool, and return the effective
/// worker count for the summary line. The pool cannot be resized once it has
/// started, so a conflicting request is a hard error rather than a silent
/// fallback.
fn apply_threads(args: &[String]) -> Result<usize, CliError> {
    if let Some(v) = flag_value(args, "--threads") {
        let n: usize = v
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| err(format!("--threads expects a positive integer, got '{v}'")))?;
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .map_err(|e| err(format!("--threads {n}: {e}")))?;
    } else if has_flag(args, "--threads") {
        return Err(err("--threads needs a value"));
    }
    Ok(rayon::current_num_threads())
}

/// Per-run observability state: the registry snapshot backing
/// `--metrics-out`, the scoped `--verbose` span tracing (restored on drop so
/// it cannot leak into later runs in the same process), and the event
/// journal backing `--trace-out`.
struct RunTelemetry {
    before: dpz_telemetry::Snapshot,
    trace_out: Option<String>,
    _verbose: Option<dpz_telemetry::TraceGuard>,
}

impl Drop for RunTelemetry {
    fn drop(&mut self) {
        // An error between begin and finish must not leave the global
        // journal recording (stop is idempotent, so the normal path — which
        // already stopped it in `telemetry_finish` — is unaffected).
        if self.trace_out.is_some() {
            dpz_telemetry::trace::stop();
        }
    }
}

/// Honor `--verbose`/`--trace-out` and capture the registry state before the
/// operation, so `--metrics-out` can export only this run's activity.
fn telemetry_begin(args: &[String]) -> Result<RunTelemetry, CliError> {
    let _verbose = has_flag(args, "--verbose").then(|| dpz_telemetry::TraceGuard::set(true));
    let trace_out = match flag_value(args, "--trace-out") {
        Some(path) => {
            dpz_telemetry::trace::start();
            Some(path.to_string())
        }
        None if has_flag(args, "--trace-out") => return Err(err("--trace-out needs a file path")),
        None => None,
    };
    Ok(RunTelemetry {
        before: dpz_telemetry::global().snapshot(),
        trace_out,
        _verbose,
    })
}

/// Delta of global registry activity since `run` began; optionally written
/// to the `--metrics-out` path (`.json` selects JSON, else Prometheus text).
/// Drains the event journal to the `--trace-out` path as Chrome trace JSON.
fn telemetry_finish(
    args: &[String],
    run: RunTelemetry,
) -> Result<dpz_telemetry::Snapshot, CliError> {
    let delta = dpz_telemetry::global().snapshot().since(&run.before);
    if let Some(path) = run.trace_out.as_deref() {
        dpz_telemetry::trace::stop();
        let trace = dpz_telemetry::trace::drain();
        std::fs::write(path, dpz_telemetry::trace::to_chrome_json(&trace))
            .map_err(|e| err(format!("write {path}: {e}")))?;
    }
    if let Some(path) = flag_value(args, "--metrics-out") {
        let text = if path.ends_with(".json") {
            dpz_telemetry::to_json(&delta)
        } else {
            dpz_telemetry::to_prometheus(&delta)
        };
        std::fs::write(path, text).map_err(|e| err(format!("write {path}: {e}")))?;
    } else if has_flag(args, "--metrics-out") {
        return Err(err("--metrics-out needs a file path"));
    }
    Ok(delta)
}

/// One-line compression summary: ratio from the codec's own stats, model
/// size (DPZ) and throughput read back from the metric deltas.
fn compress_summary(
    args: &[String],
    input: &str,
    output: &str,
    requested: &str,
    stats: &CodecStats,
    threads: usize,
    delta: &dpz_telemetry::Snapshot,
) -> String {
    // For `--codec auto` the label shows both the request and the backend
    // the selector actually ran.
    let display = if requested == stats.codec {
        requested.to_string()
    } else {
        format!("{requested}:{}", stats.codec)
    };
    let span_name = match stats.codec {
        "sz" => "sz.compress",
        "zfp" => "zfp.compress",
        "dpzc" => "compress_chunked",
        _ => "compress",
    };
    let secs = delta
        .histogram("dpz_span_seconds", &[("span", span_name)])
        .map_or(0.0, |h| h.sum);
    let mbps = if secs > 0.0 {
        stats.bytes_in as f64 / 1e6 / secs
    } else {
        0.0
    };
    let mut msg = format!(
        "compressed {input} -> {output} [{display}] {:.2}x",
        stats.ratio()
    );
    if let (Some(k), Some(tve)) = (
        delta.gauge("dpz_k_selected", &[]),
        delta.gauge("dpz_tve_achieved", &[]),
    ) {
        let _ = write!(msg, ", k={k:.0} tve={tve:.8}");
    }
    let _ = write!(msg, ", {mbps:.1} MB/s, threads={threads}");
    if has_flag(args, "--verbose") {
        let _ = write!(
            msg,
            ", codec={}, kernel={}",
            stats.codec,
            dpz_kernels::backend_name()
        );
    }
    msg
}

/// Parse a float-valued flag, rejecting malformed values with the flag
/// name in the message.
fn float_flag(args: &[String], flag: &str) -> Result<Option<f64>, CliError> {
    match flag_value(args, flag) {
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|_| err(format!("{flag} expects a number, got '{v}'"))),
        None if has_flag(args, flag) => Err(err(format!("{flag} needs a value"))),
        None => Ok(None),
    }
}

/// Parse the quality-target flags into a [`QualityTarget`], if any is
/// present. The four spellings are mutually exclusive, and every parsed
/// target is validated through [`QualityTarget::validate`] — nonsense
/// values (non-positive bounds, tolerance ≥ 1, PSNR ≤ 0) come back as
/// errors, never panics.
pub fn target_from_args(args: &[String]) -> Result<Option<QualityTarget>, CliError> {
    let ratio = float_flag(args, "--target-ratio")?;
    let tol = float_flag(args, "--ratio-tol")?;
    let psnr = float_flag(args, "--target-psnr")?;
    let rel = float_flag(args, "--rel-bound")?;
    let abs = float_flag(args, "--abs-bound")?;
    if tol.is_some() && ratio.is_none() {
        return Err(err("--ratio-tol requires --target-ratio"));
    }
    let mut targets = Vec::new();
    if let Some(r) = ratio {
        targets.push(QualityTarget::Ratio {
            target: r,
            tol: tol.unwrap_or(0.1),
        });
    }
    if let Some(db) = psnr {
        targets.push(QualityTarget::Psnr(db));
    }
    if let Some(r) = rel {
        targets.push(QualityTarget::RelBound(r));
    }
    if let Some(p) = abs {
        targets.push(QualityTarget::ErrorBound(p));
    }
    if targets.len() > 1 {
        return Err(err(
            "--target-ratio, --target-psnr, --rel-bound and --abs-bound are mutually exclusive",
        ));
    }
    match targets.pop() {
        Some(t) => {
            t.validate().map_err(|e| err(e.to_string()))?;
            Ok(Some(t))
        }
        None => Ok(None),
    }
}

/// Build a [`DpzConfig`] from the optional flags — the one construction
/// path every DPZ-family codec selection goes through (single-stream,
/// chunked, and progressive alike).
pub fn config_from_args(args: &[String]) -> Result<DpzConfig, CliError> {
    let mut cfg = match flag_value(args, "--scheme").unwrap_or("loose") {
        "loose" => DpzConfig::loose(),
        "strict" => DpzConfig::strict(),
        other => return Err(err(format!("unknown --scheme '{other}'"))),
    };
    if let Some(target) = target_from_args(args)? {
        cfg = cfg.with_target(target);
    }
    if let Some(nines) = flag_value(args, "--tve") {
        let n: u32 = nines.parse().map_err(|_| err("--tve expects 3..=8"))?;
        let level = match n {
            3 => TveLevel::ThreeNines,
            4 => TveLevel::FourNines,
            5 => TveLevel::FiveNines,
            6 => TveLevel::SixNines,
            7 => TveLevel::SevenNines,
            8 => TveLevel::EightNines,
            _ => return Err(err("--tve expects 3..=8")),
        };
        cfg = cfg.with_tve(level);
    }
    if let Some(fit) = flag_value(args, "--knee") {
        let kind = match fit {
            "1d" => FitKind::Interp1d,
            "polyn" => FitKind::Polynomial(7),
            other => return Err(err(format!("unknown --knee '{other}' (1d|polyn)"))),
        };
        cfg = cfg.with_selection(KSelection::KneePoint(kind));
    }
    if has_flag(args, "--sampling") {
        cfg = cfg.with_sampling(true);
    }
    if let Some(t) = flag_value(args, "--transform") {
        cfg = match t {
            "dct" => cfg.with_transform(Stage1Transform::Dct),
            "dwt" => cfg.with_transform(Stage1Transform::Dwt { levels: 5 }),
            other => return Err(err(format!("unknown --transform '{other}' (dct|dwt)"))),
        };
    }
    if let Some(b) = flag_value(args, "--lossless") {
        cfg = match b {
            "deflate" => cfg.with_lossless(LosslessBackend::Deflate),
            "tans" => cfg.with_lossless(LosslessBackend::Tans),
            other => {
                return Err(err(format!("unknown --lossless '{other}' (deflate|tans)")));
            }
        };
    }
    Ok(cfg)
}

/// Run the CLI; returns the text to print on success.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(err(USAGE));
    };
    match command.as_str() {
        "gen" => cmd_gen(&args[1..]),
        "compress" => cmd_compress(&args[1..]),
        "decompress" => cmd_decompress(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "eval" => cmd_eval(&args[1..]),
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

fn cmd_gen(args: &[String]) -> Result<String, CliError> {
    let (name, out) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(err("usage: dpz gen <dataset> <out.f32> [--scale ...]")),
    };
    let kind =
        DatasetKind::from_name(name).ok_or_else(|| err(format!("unknown dataset '{name}'")))?;
    let scale = match flag_value(args, "--scale") {
        Some(s) => Scale::from_name(s).ok_or_else(|| err(format!("unknown scale '{s}'")))?,
        None => Scale::Default,
    };
    let seed = match flag_value(args, "--seed") {
        Some(s) => s.parse().map_err(|_| err("--seed expects an integer"))?,
        None => DEFAULT_SEED,
    };
    let ds = Dataset::generate(kind, scale, seed);
    write_f32_file(out, &ds.data).map_err(|e| err(format!("write {out}: {e}")))?;
    let dims = ds
        .dims
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("x");
    Ok(format!(
        "wrote {} ({} values, dims {})",
        out,
        ds.len(),
        dims
    ))
}

/// Resolve `--codec` (plus its codec-specific flags) to a trait object and
/// a suffix for the summary line. Every compressor goes through the same
/// [`Codec`] path after this point.
fn codec_from_args(args: &[String]) -> Result<(Box<dyn Codec>, String), CliError> {
    let requested = flag_value(args, "--codec").unwrap_or("dpz");
    if has_flag(args, "--progressive") && requested != "dpzc" {
        return Err(err("--progressive requires --codec dpzc"));
    }
    match requested {
        "dpz" => {
            let cfg = config_from_args(args)?;
            Ok((Box::new(DpzCodec::new(cfg)), String::new()))
        }
        "dpzc" => {
            let cfg = config_from_args(args)?;
            let chunks: usize = flag_value(args, "--chunks")
                .unwrap_or("4")
                .parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| err("--chunks expects a positive integer"))?;
            if has_flag(args, "--progressive") {
                Ok((
                    Box::new(DpzChunkedCodec::progressive(cfg, chunks)),
                    format!(" (chunks={chunks}, progressive)"),
                ))
            } else {
                Ok((
                    Box::new(DpzChunkedCodec::new(cfg, chunks)),
                    format!(" (chunks={chunks})"),
                ))
            }
        }
        "sz" => {
            let eb: f64 = flag_value(args, "--eb")
                .unwrap_or("1e-3")
                .parse()
                .map_err(|_| err("--eb expects a float"))?;
            // The SzConfig constructor asserts on bad bounds; reject them
            // here as a typed error instead.
            if !(eb > 0.0 && eb.is_finite()) {
                return Err(err(format!("--eb must be positive and finite, got {eb}")));
            }
            let mut cfg = dpz_sz::SzConfig::with_error_bound(eb);
            if let Some(p) = flag_value(args, "--predictor") {
                cfg = match p {
                    "lorenzo" => cfg.with_predictor(dpz_sz::Predictor::Lorenzo),
                    "auto" => cfg.with_predictor(dpz_sz::Predictor::Auto),
                    other => {
                        return Err(err(format!("unknown --predictor '{other}' (lorenzo|auto)")))
                    }
                };
            }
            Ok((Box::new(SzCodec::new(cfg)), format!(" (eb={eb:e})")))
        }
        "zfp" => {
            let mode = if let Some(r) = flag_value(args, "--rate") {
                let rate: f64 = r
                    .parse()
                    .map_err(|_| err("--rate expects bits per value"))?;
                dpz_zfp::ZfpMode::FixedRate(rate)
            } else {
                let prec: u32 = flag_value(args, "--precision")
                    .unwrap_or("20")
                    .parse()
                    .map_err(|_| err("--precision expects 1..=32"))?;
                dpz_zfp::ZfpMode::FixedPrecision(prec)
            };
            Ok((Box::new(ZfpCodec::new(mode)), format!(" ({mode:?})")))
        }
        "auto" => Ok((Box::new(AutoCodec::new()), String::new())),
        other => Err(err(format!(
            "unknown --codec '{other}' (dpz|dpzc|sz|zfp|auto)"
        ))),
    }
}

fn cmd_compress(args: &[String]) -> Result<String, CliError> {
    let (input, output) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(err("usage: dpz compress <in.f32> <out.dpz> --dims RxC ...")),
    };
    let dims = parse_dims(flag_value(args, "--dims").ok_or_else(|| err("--dims is required"))?)?;
    let requested = flag_value(args, "--codec").unwrap_or("dpz").to_string();
    let (codec, suffix) = codec_from_args(args)?;
    let threads = apply_threads(args)?;
    let data = read_f32_file(input).map_err(|e| err(format!("read {input}: {e}")))?;
    let target = target_from_args(args)?;
    let run = telemetry_begin(args)?;
    let mut bytes = Vec::new();
    // A quality target routes through the resolving entry point (identical
    // to compress_into for the DPZ codecs, whose config already carries the
    // target, but required for sz/zfp/auto which map it per input).
    let stats = match &target {
        Some(t) => codec.compress_with_target(&data, &dims, t, &mut bytes),
        None => codec.compress_into(&data, &dims, &mut bytes),
    }
    .map_err(|e| err(e.to_string()))?;
    std::fs::write(output, &bytes).map_err(|e| err(format!("write {output}: {e}")))?;
    let delta = telemetry_finish(args, run)?;
    let crc = match &stats.dpz {
        Some(s) if s.checksummed => ", crc32",
        Some(_) => ", no-crc",
        None => "",
    };
    Ok(compress_summary(args, input, output, &requested, &stats, threads, &delta) + crc + &suffix)
}

/// Human-readable checksum status for decode summaries.
fn crc_status(info: Option<ContainerInfo>) -> String {
    let crc = match info {
        Some(i) if i.checksummed => "crc=verified",
        Some(_) => "crc=absent (v1 container)",
        None => "crc=n/a",
    };
    match info {
        Some(i) if i.tans_sections > 0 => {
            format!("{crc}, tans-sections={}", i.tans_sections)
        }
        _ => crc.to_string(),
    }
}

/// Parse a `--region` spec like `0..100,250..300` into per-axis half-open
/// ranges.
fn parse_region(s: &str) -> Result<Vec<std::ops::Range<usize>>, CliError> {
    s.split(',')
        .map(|axis| {
            let (lo, hi) = axis
                .split_once("..")
                .ok_or_else(|| err(format!("invalid --region axis '{axis}' (want LO..HI)")))?;
            let lo: usize = lo
                .parse()
                .map_err(|_| err(format!("invalid --region bound '{lo}'")))?;
            let hi: usize = hi
                .parse()
                .map_err(|_| err(format!("invalid --region bound '{hi}'")))?;
            Ok(lo..hi)
        })
        .collect()
}

fn cmd_decompress(args: &[String]) -> Result<String, CliError> {
    let (input, output) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(err("usage: dpz decompress <in.dpz> <out.f32>")),
    };
    let picked = ["--chunk", "--region", "--budget"]
        .iter()
        .filter(|f| has_flag(args, f))
        .count();
    if picked > 1 {
        return Err(err("--chunk, --region and --budget are mutually exclusive"));
    }
    let threads = apply_threads(args)?;
    let bytes = std::fs::read(input).map_err(|e| err(format!("read {input}: {e}")))?;
    let run = telemetry_begin(args)?;
    let registry = Registry::builtin();
    // Partial retrieval goes through the seekable view; everything else
    // through the registry's magic-sniffing full decode.
    let (values, dims, info, what) = if let Some(v) = flag_value(args, "--chunk") {
        let n: usize = v
            .parse()
            .map_err(|_| err(format!("--chunk expects an integer, got '{v}'")))?;
        let seek = registry
            .seekable_for(&bytes)
            .ok_or_else(|| err("--chunk requires a seekable container (dpzc)"))?;
        let d = seek
            .decompress_chunk(&bytes, n)
            .map_err(|e| err(e.to_string()))?;
        (d.values, d.dims, d.info, format!("chunk {n} of "))
    } else if let Some(v) = flag_value(args, "--region") {
        let region = parse_region(v)?;
        let seek = registry
            .seekable_for(&bytes)
            .ok_or_else(|| err("--region requires a seekable container (dpzc)"))?;
        let d = seek
            .decompress_region(&bytes, &region)
            .map_err(|e| err(e.to_string()))?;
        (d.values, d.dims, d.info, format!("region {v} of "))
    } else if let Some(v) = flag_value(args, "--budget") {
        let budget: usize = v
            .parse()
            .map_err(|_| err(format!("--budget expects a byte count, got '{v}'")))?;
        let p = dpz_core::decompress_progressive(&bytes, budget).map_err(|e| err(e.to_string()))?;
        let what = format!(
            "progressive ({} of {} bytes, {} components, TVE {:.4}, PSNR est {:.1} dB) of ",
            p.bytes_used,
            bytes.len(),
            p.components_used.iter().sum::<usize>(),
            p.tve_achieved,
            p.psnr_estimate,
        );
        let info = Some(ContainerInfo {
            version: 4,
            checksummed: true,
            tans_sections: 0,
        });
        (p.values, p.dims, info, what)
    } else {
        let decoded = registry
            .decompress(&bytes)
            .map_err(|e| err(e.to_string()))?;
        (decoded.values, decoded.dims, decoded.info, String::new())
    };
    write_f32_file(output, &values).map_err(|e| err(format!("write {output}: {e}")))?;
    telemetry_finish(args, run)?;
    let dims = dims
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("x");
    Ok(format!(
        "decompressed {what}{input} -> {output} ({} values, dims {dims}, {}, threads={threads})",
        values.len(),
        crc_status(info),
    ))
}

fn cmd_info(args: &[String]) -> Result<String, CliError> {
    let input = args
        .first()
        .ok_or_else(|| err("usage: dpz info <in.dpz>"))?;
    let bytes = std::fs::read(input).map_err(|e| err(format!("read {input}: {e}")))?;
    let (payload, info) =
        dpz_core::container::deserialize_with_info(&bytes).map_err(|e| err(e.to_string()))?;
    let dims = payload
        .dims
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("x");
    Ok(format!(
        "DPZ container: v{} ({}) dims {dims} ({} values)\n  M={} N={} pad={} k={}\n  P={:e} wide_index={} standardized={}\n  outliers={} container {} bytes (CR {:.2}x)",
        info.version,
        if info.checksummed {
            "crc32 per section"
        } else {
            "no checksums"
        },
        payload.orig_len,
        payload.m,
        payload.n,
        payload.pad,
        payload.k,
        payload.p,
        payload.scores.wide_index,
        payload.standardized,
        payload.scores.outliers.len(),
        bytes.len(),
        (payload.orig_len * 4) as f64 / bytes.len() as f64,
    ))
}

fn cmd_eval(args: &[String]) -> Result<String, CliError> {
    let (orig_path, recon_path) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(err(
                "usage: dpz eval <orig.f32> <recon.f32> [--compressed f]",
            ))
        }
    };
    let orig = read_f32_file(orig_path).map_err(|e| err(format!("read {orig_path}: {e}")))?;
    let recon = read_f32_file(recon_path).map_err(|e| err(format!("read {recon_path}: {e}")))?;
    if orig.len() != recon.len() {
        return Err(err(format!(
            "length mismatch: {} vs {} values",
            orig.len(),
            recon.len()
        )));
    }
    let mut msg = format!(
        "PSNR {:.2} dB | MSE {:.3e} | max abs err {:.3e} | mean rel err θ {:.3e}",
        metrics::psnr(&orig, &recon),
        metrics::mse(&orig, &recon),
        metrics::max_abs_error(&orig, &recon),
        metrics::mean_relative_error(&orig, &recon),
    );
    if let Some(comp) = flag_value(args, "--compressed") {
        let size = std::fs::metadata(comp)
            .map_err(|e| err(format!("stat {comp}: {e}")))?
            .len() as usize;
        let _ = write!(
            msg,
            "\nCR {:.2}x | bit-rate {:.3} bits/value",
            metrics::compression_ratio(orig.len() * 4, size),
            metrics::bit_rate(orig.len(), size)
        );
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn dims_parsing() {
        assert_eq!(parse_dims("1800x3600").unwrap(), vec![1800, 3600]);
        assert_eq!(parse_dims("128X128X128").unwrap(), vec![128, 128, 128]);
        assert!(parse_dims("12x0").is_err());
        assert!(parse_dims("abc").is_err());
        assert!(parse_dims("").is_err());
    }

    #[test]
    fn config_parsing() {
        use dpz_core::IndexWidth;
        let cfg = config_from_args(&s(&["--scheme", "strict", "--tve", "7"])).unwrap();
        assert_eq!(cfg.target, QualityTarget::ErrorBound(1e-4));
        assert_eq!(cfg.index_width, IndexWidth::Wide);
        assert_eq!(cfg.selection, KSelection::Tve(0.9999999));
        let cfg = config_from_args(&s(&["--knee", "polyn", "--sampling"])).unwrap();
        assert!(matches!(
            cfg.selection,
            KSelection::KneePoint(FitKind::Polynomial(7))
        ));
        assert!(cfg.sampling);
        assert!(config_from_args(&s(&["--tve", "9"])).is_err());
        assert!(config_from_args(&s(&["--scheme", "wat"])).is_err());
        let cfg = config_from_args(&s(&["--lossless", "tans"])).unwrap();
        assert_eq!(cfg.lossless, LosslessBackend::Tans);
        assert_eq!(
            config_from_args(&[]).unwrap().lossless,
            LosslessBackend::Deflate
        );
        assert!(config_from_args(&s(&["--lossless", "lzma"])).is_err());
    }

    #[test]
    fn target_flag_parsing() {
        assert_eq!(target_from_args(&[]).unwrap(), None);
        assert_eq!(
            target_from_args(&s(&["--target-ratio", "8"])).unwrap(),
            Some(QualityTarget::Ratio {
                target: 8.0,
                tol: 0.1
            })
        );
        assert_eq!(
            target_from_args(&s(&["--target-ratio", "8", "--ratio-tol", "0.25"])).unwrap(),
            Some(QualityTarget::Ratio {
                target: 8.0,
                tol: 0.25
            })
        );
        assert_eq!(
            target_from_args(&s(&["--target-psnr", "60"])).unwrap(),
            Some(QualityTarget::Psnr(60.0))
        );
        assert_eq!(
            target_from_args(&s(&["--rel-bound", "1e-3"])).unwrap(),
            Some(QualityTarget::RelBound(1e-3))
        );
        assert_eq!(
            target_from_args(&s(&["--abs-bound", "1e-4"])).unwrap(),
            Some(QualityTarget::ErrorBound(1e-4))
        );
        // A target flag flows into the shared config builder.
        let cfg = config_from_args(&s(&["--target-psnr", "70"])).unwrap();
        assert_eq!(cfg.target, QualityTarget::Psnr(70.0));
    }

    #[test]
    fn bad_targets_are_typed_errors_not_panics() {
        for bad in [
            vec!["--target-ratio", "0.5"],
            vec!["--target-ratio", "8", "--ratio-tol", "1.5"],
            vec!["--target-psnr", "-10"],
            vec!["--rel-bound", "0"],
            vec!["--abs-bound", "-1e-3"],
            vec!["--abs-bound", "NaN"],
            vec!["--target-ratio", "8", "--target-psnr", "60"],
            vec!["--ratio-tol", "0.1"],
            vec!["--target-ratio"],
        ] {
            let e = target_from_args(&s(&bad)).unwrap_err();
            assert!(!e.0.is_empty(), "{bad:?}");
        }
        let e = run(&s(&[
            "compress", "a", "b", "--dims", "4x4", "--eb", "-1", "--codec", "sz",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--eb"), "{}", e.0);
    }

    #[test]
    fn tans_backend_round_trips_through_the_cli() {
        let dir = std::env::temp_dir().join("dpz_cli_tans");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("t.f32").to_string_lossy().into_owned();
        let packed = dir.join("t.dpz").to_string_lossy().into_owned();
        let restored = dir.join("t_out.f32").to_string_lossy().into_owned();

        run(&s(&[
            "gen", "FLDSC", &raw, "--scale", "tiny", "--seed", "3",
        ]))
        .unwrap();
        run(&s(&[
            "compress",
            &raw,
            &packed,
            "--dims",
            "45x90",
            "--lossless",
            "tans",
        ]))
        .unwrap();
        let bytes = std::fs::read(&packed).unwrap();
        assert_eq!(bytes[4], 3, "tANS output must be a v3 container");
        let msg = run(&s(&["decompress", &packed, &restored])).unwrap();
        assert!(msg.contains("4050 values"), "{msg}");
        assert!(msg.contains("tans-sections="), "{msg}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&s(&["--help"])).unwrap().contains("USAGE"));
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn end_to_end_gen_compress_decompress_eval() {
        let dir = std::env::temp_dir().join("dpz_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("f.f32").to_string_lossy().into_owned();
        let packed = dir.join("f.dpz").to_string_lossy().into_owned();
        let restored = dir.join("f_out.f32").to_string_lossy().into_owned();

        let msg = run(&s(&[
            "gen", "FLDSC", &raw, "--scale", "tiny", "--seed", "7",
        ]))
        .unwrap();
        assert!(msg.contains("45x90"), "{msg}");

        let msg = run(&s(&[
            "compress", &raw, &packed, "--dims", "45x90", "--scheme", "strict", "--tve", "6",
        ]))
        .unwrap();
        assert!(msg.contains("compressed"), "{msg}");

        let msg = run(&s(&["info", &packed])).unwrap();
        assert!(msg.contains("dims 45x90"), "{msg}");

        let msg = run(&s(&["decompress", &packed, &restored])).unwrap();
        assert!(msg.contains("4050 values"), "{msg}");

        let msg = run(&s(&["eval", &raw, &restored, "--compressed", &packed])).unwrap();
        assert!(msg.contains("PSNR"), "{msg}");
        assert!(msg.contains("CR"), "{msg}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_out_writes_prometheus_and_json() {
        let dir = std::env::temp_dir().join("dpz_cli_metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("m.f32").to_string_lossy().into_owned();
        let packed = dir.join("m.dpz").to_string_lossy().into_owned();
        let restored = dir.join("m_out.f32").to_string_lossy().into_owned();
        let prom_path = dir.join("metrics.prom").to_string_lossy().into_owned();
        let json_path = dir.join("metrics.json").to_string_lossy().into_owned();
        run(&s(&["gen", "PHIS", &raw, "--scale", "tiny"])).unwrap();

        let msg = run(&s(&[
            "compress",
            &raw,
            &packed,
            "--dims",
            "45x90",
            "--metrics-out",
            &prom_path,
        ]))
        .unwrap();
        // The summary is one registry-derived line: ratio, k/TVE, throughput.
        assert!(!msg.contains('\n'), "expected one line: {msg}");
        assert!(
            msg.contains("compressed") && msg.contains("k=") && msg.contains("MB/s"),
            "{msg}"
        );

        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(
            prom.contains("# TYPE dpz_stage_seconds histogram"),
            "{prom}"
        );
        assert!(
            prom.contains("dpz_bytes_in_total{codec=\"dpz\",op=\"compress\"}"),
            "{prom}"
        );
        assert!(
            prom.contains("dpz_bytes_out_total{codec=\"dpz\",op=\"compress\"}"),
            "{prom}"
        );
        assert!(prom.contains("dpz_k_selected"), "{prom}");
        assert!(prom.contains("dpz_tve_achieved"), "{prom}");
        assert!(prom.contains("dpz_span_seconds_bucket"), "{prom}");

        run(&s(&[
            "decompress",
            &packed,
            &restored,
            "--metrics-out",
            &json_path,
        ]))
        .unwrap();
        let snap = dpz_telemetry::from_json(&std::fs::read_to_string(&json_path).unwrap())
            .expect("metrics JSON parses back");
        assert!(snap.counter("dpz_decompressions_total", &[]).unwrap() >= 1);
        assert!(
            snap.counter(
                "dpz_bytes_in_total",
                &[("codec", "dpz"), ("op", "decompress")]
            )
            .unwrap()
                > 0
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_out_writes_chrome_trace_json() {
        use dpz_telemetry::json::JsonValue;
        let dir = std::env::temp_dir().join("dpz_cli_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("t.f32").to_string_lossy().into_owned();
        let packed = dir.join("t.dpzc").to_string_lossy().into_owned();
        let trace_path = dir.join("trace.json").to_string_lossy().into_owned();
        run(&s(&["gen", "PHIS", &raw, "--scale", "tiny"])).unwrap();

        // Chunked DPZ exercises every producer at once: per-stage spans,
        // per-chunk spans, and the worker pool.
        run(&s(&[
            "compress",
            &raw,
            &packed,
            "--dims",
            "45x90",
            "--codec",
            "dpzc",
            "--chunks",
            "2",
            "--trace-out",
            &trace_path,
        ]))
        .unwrap();
        // The journal is scoped to the traced run.
        assert!(!dpz_telemetry::trace::journal_enabled());

        let text = std::fs::read_to_string(&trace_path).unwrap();
        let doc = dpz_telemetry::json::parse(&text).expect("trace file is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        let str_field = |ev: &JsonValue, key: &str| {
            ev.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .unwrap_or_default()
        };

        // Every record carries the Chrome trace-event essentials, and every
        // complete event a microsecond timestamp/duration pair.
        assert!(!events.is_empty());
        for ev in events {
            assert!(
                ev.get("pid").is_some() && ev.get("name").is_some(),
                "{text}"
            );
            if str_field(ev, "ph") == "X" {
                assert!(ev.get("ts").and_then(JsonValue::as_f64).is_some());
                assert!(ev.get("dur").and_then(JsonValue::as_f64).is_some());
                assert!(ev.get("tid").and_then(JsonValue::as_f64).is_some());
            }
        }

        // All five pipeline stages show up as spans (paths are dotted, e.g.
        // "chunk.compress.stage2.pca", so match by suffix).
        let spans: Vec<String> = events
            .iter()
            .filter(|ev| str_field(ev, "ph") == "X")
            .map(|ev| str_field(ev, "name"))
            .collect();
        for stage in [
            "stage1.decompose_dct",
            "sampling",
            "stage2.pca",
            "stage3.quantize",
            "lossless",
        ] {
            assert!(
                spans.iter().any(|n| n.ends_with(stage)),
                "missing stage span '{stage}' in {spans:?}"
            );
        }

        // Per-chunk spans are tagged with their chunk index and byte count.
        assert!(
            events.iter().any(|ev| {
                str_field(ev, "name").ends_with("chunk")
                    && ev
                        .get("args")
                        .and_then(|a| a.get("chunk"))
                        .and_then(JsonValue::as_f64)
                        .is_some()
            }),
            "no annotated chunk span in {spans:?}"
        );

        // thread_name metadata gives Perfetto one lane per thread.
        assert!(
            events
                .iter()
                .any(|ev| str_field(ev, "ph") == "M" && str_field(ev, "name") == "thread_name"),
            "{text}"
        );

        // The embedded self-describing summary rides along.
        assert!(
            doc.get("dpzSummary").and_then(|s| s.get("spans")).is_some(),
            "{text}"
        );

        let e = run(&s(&[
            "compress",
            &raw,
            &packed,
            "--dims",
            "45x90",
            "--trace-out",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--trace-out"), "{}", e.0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_is_applied_and_echoed() {
        let dir = std::env::temp_dir().join("dpz_cli_threads");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("t.f32").to_string_lossy().into_owned();
        let packed = dir.join("t.dpz").to_string_lossy().into_owned();
        let restored = dir.join("t_out.f32").to_string_lossy().into_owned();
        run(&s(&["gen", "PHIS", &raw, "--scale", "tiny"])).unwrap();

        // Tests in this binary share one global pool; request whatever size
        // it already has (forcing initialization first) so the flag path is
        // exercised deterministically regardless of test order.
        let n = rayon::current_num_threads().to_string();
        let msg = run(&s(&[
            "compress",
            &raw,
            &packed,
            "--dims",
            "45x90",
            "--threads",
            &n,
        ]))
        .unwrap();
        assert!(msg.contains(&format!("threads={n}")), "{msg}");

        let msg = run(&s(&["decompress", &packed, &restored, "--threads", &n])).unwrap();
        assert!(msg.contains(&format!("threads={n}")), "{msg}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verbose_summary_reports_kernel_backend() {
        let dir = std::env::temp_dir().join("dpz_cli_kernel");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("k.f32").to_string_lossy().into_owned();
        let packed = dir.join("k.dpz").to_string_lossy().into_owned();
        run(&s(&["gen", "PHIS", &raw, "--scale", "tiny"])).unwrap();

        let msg = run(&s(&[
            "compress",
            &raw,
            &packed,
            "--dims",
            "45x90",
            "--verbose",
        ]))
        .unwrap();
        // --verbose holds a TraceGuard for the run's duration, so span
        // tracing is restored (no hand-reset) before the next command.
        assert!(
            msg.contains(&format!("kernel={}", dpz_kernels::backend_name())),
            "{msg}"
        );

        // Without --verbose the summary stays as terse as before.
        let msg = run(&s(&["compress", &raw, &packed, "--dims", "45x90"])).unwrap();
        assert!(!msg.contains("kernel="), "{msg}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_rejects_bad_values() {
        for bad in ["0", "-3", "many"] {
            let e = run(&s(&[
                "compress",
                "a",
                "b",
                "--dims",
                "4x4",
                "--threads",
                bad,
            ]))
            .unwrap_err();
            assert!(e.0.contains("--threads"), "{bad}: {}", e.0);
        }
        let e = run(&s(&["compress", "a", "b", "--dims", "4x4", "--threads"])).unwrap_err();
        assert!(e.0.contains("--threads"), "{}", e.0);
    }

    #[test]
    fn compress_requires_dims() {
        let e = run(&s(&["compress", "a", "b"])).unwrap_err();
        assert!(e.0.contains("--dims"));
    }

    #[test]
    fn baseline_codecs_round_trip_via_cli() {
        let dir = std::env::temp_dir().join("dpz_cli_codecs");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("c.f32").to_string_lossy().into_owned();
        run(&s(&["gen", "PHIS", &raw, "--scale", "tiny"])).unwrap();
        for (codec, extra) in [
            ("sz", vec!["--eb", "1e-2"]),
            ("zfp", vec!["--precision", "18"]),
        ] {
            let packed = dir
                .join(format!("c.{codec}"))
                .to_string_lossy()
                .into_owned();
            let restored = dir
                .join(format!("c_{codec}.f32"))
                .to_string_lossy()
                .into_owned();
            let mut argv = s(&[
                "compress", &raw, &packed, "--dims", "45x90", "--codec", codec,
            ]);
            argv.extend(s(&extra));
            let msg = run(&argv).unwrap();
            assert!(msg.contains("compressed"), "{msg}");
            let msg = run(&s(&["decompress", &packed, &restored])).unwrap();
            assert!(msg.contains("4050 values"), "{msg}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunked_and_auto_codecs_round_trip_via_cli() {
        let dir = std::env::temp_dir().join("dpz_cli_trait_codecs");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("a.f32").to_string_lossy().into_owned();
        run(&s(&["gen", "PHIS", &raw, "--scale", "tiny"])).unwrap();

        // Chunked DPZ through the generic path, with the chunk count echoed.
        let packed = dir.join("a.dpzc").to_string_lossy().into_owned();
        let restored = dir.join("a_dpzc.f32").to_string_lossy().into_owned();
        let msg = run(&s(&[
            "compress", &raw, &packed, "--dims", "45x90", "--codec", "dpzc", "--chunks", "3",
        ]))
        .unwrap();
        assert!(
            msg.contains("[dpzc]") && msg.contains("(chunks=3)"),
            "{msg}"
        );
        let msg = run(&s(&["decompress", &packed, &restored])).unwrap();
        assert!(msg.contains("4050 values"), "{msg}");

        // Auto selection: the summary names the backend that actually ran,
        // and --verbose echoes it as codec= next to kernel=.
        let packed = dir.join("a.auto").to_string_lossy().into_owned();
        let restored = dir.join("a_auto.f32").to_string_lossy().into_owned();
        let msg = run(&s(&[
            "compress",
            &raw,
            &packed,
            "--dims",
            "45x90",
            "--codec",
            "auto",
            "--verbose",
        ]))
        .unwrap();
        assert!(msg.contains("[auto:"), "{msg}");
        assert!(
            msg.contains(", codec=") && msg.contains(", kernel="),
            "{msg}"
        );
        let msg = run(&s(&["decompress", &packed, &restored])).unwrap();
        assert!(msg.contains("4050 values"), "{msg}");

        let e = run(&s(&[
            "compress", &raw, &packed, "--dims", "45x90", "--codec", "dpzc", "--chunks", "0",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--chunks"), "{}", e.0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seekable_retrieval_flags_work_via_cli() {
        let dir = std::env::temp_dir().join("dpz_cli_seekable");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("a.f32").to_string_lossy().into_owned();
        run(&s(&["gen", "PHIS", &raw, "--scale", "tiny"])).unwrap();

        let packed = dir.join("a.dpzc").to_string_lossy().into_owned();
        run(&s(&[
            "compress", &raw, &packed, "--dims", "45x90", "--codec", "dpzc", "--chunks", "3",
        ]))
        .unwrap();

        // Single chunk: 45 rows over 3 chunks -> 15x90 per chunk.
        let out = dir.join("chunk.f32").to_string_lossy().into_owned();
        let msg = run(&s(&["decompress", &packed, &out, "--chunk", "1"])).unwrap();
        assert!(
            msg.contains("chunk 1 of") && msg.contains("1350 values") && msg.contains("dims 15x90"),
            "{msg}"
        );

        // Region crossing a chunk boundary.
        let out = dir.join("region.f32").to_string_lossy().into_owned();
        let msg = run(&s(&[
            "decompress",
            &packed,
            &out,
            "--region",
            "10..20,30..60",
        ]))
        .unwrap();
        assert!(
            msg.contains("region 10..20,30..60") && msg.contains("300 values"),
            "{msg}"
        );
        assert!(msg.contains("dims 10x30"), "{msg}");

        // Retrieval flags are mutually exclusive and validated.
        let e = run(&s(&[
            "decompress",
            &packed,
            &out,
            "--chunk",
            "0",
            "--region",
            "0..1,0..1",
        ]))
        .unwrap_err();
        assert!(e.0.contains("mutually exclusive"), "{}", e.0);
        let e = run(&s(&["decompress", &packed, &out, "--region", "10-20"])).unwrap_err();
        assert!(e.0.contains("--region"), "{}", e.0);

        // Single-stream containers have no seekable view.
        let plain = dir.join("a.dpz").to_string_lossy().into_owned();
        run(&s(&["compress", &raw, &plain, "--dims", "45x90"])).unwrap();
        let e = run(&s(&["decompress", &plain, &out, "--chunk", "0"])).unwrap_err();
        assert!(e.0.contains("seekable"), "{}", e.0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progressive_compress_and_budget_decode_via_cli() {
        let dir = std::env::temp_dir().join("dpz_cli_progressive");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("a.f32").to_string_lossy().into_owned();
        run(&s(&["gen", "PHIS", &raw, "--scale", "tiny"])).unwrap();

        let packed = dir.join("a.dpzp").to_string_lossy().into_owned();
        let msg = run(&s(&[
            "compress",
            &raw,
            &packed,
            "--dims",
            "45x90",
            "--codec",
            "dpzc",
            "--chunks",
            "3",
            "--progressive",
        ]))
        .unwrap();
        assert!(msg.contains("progressive"), "{msg}");

        // Ordinary decompress reads the whole stream back.
        let out = dir.join("full.f32").to_string_lossy().into_owned();
        let msg = run(&s(&["decompress", &packed, &out])).unwrap();
        assert!(msg.contains("4050 values"), "{msg}");

        // Budgeted decode reports how much it used and the quality reached.
        let out = dir.join("half.f32").to_string_lossy().into_owned();
        let size = std::fs::metadata(&packed).unwrap().len() as usize;
        let msg = run(&s(&[
            "decompress",
            &packed,
            &out,
            "--budget",
            &(size / 2).to_string(),
        ]))
        .unwrap();
        assert!(
            msg.contains("progressive (") && msg.contains("TVE") && msg.contains("4050 values"),
            "{msg}"
        );

        // --progressive outside dpzc is rejected.
        let e = run(&s(&[
            "compress",
            &raw,
            &packed,
            "--dims",
            "45x90",
            "--progressive",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--progressive"), "{}", e.0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_codec_rejected() {
        let e = run(&s(&[
            "compress", "a", "b", "--dims", "4x4", "--codec", "lz4",
        ]))
        .unwrap_err();
        assert!(e.0.contains("read a") || e.0.contains("unknown --codec"));
    }
}
