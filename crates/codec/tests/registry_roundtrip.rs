//! Satellite tests: every format round-trips through `dyn Codec` via the
//! registry, and hostile streams are rejected (never panic) at the trait
//! boundary.

use dpz_codec::{AutoCodec, Codec, DpzError, Format, Registry, Selection};

fn smooth_field(len: usize) -> Vec<f32> {
    (0..len).map(|i| (i as f32 * 0.013).sin() * 4.0).collect()
}

fn max_abs_err(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

#[test]
fn every_builtin_format_round_trips_through_trait_objects() {
    let registry = Registry::builtin();
    let data = smooth_field(4096);
    let dims = [64usize, 64];
    let range = 8.0f32; // data spans roughly [-4, 4]

    let mut seen = Vec::new();
    for codec in registry.iter() {
        let mut bytes = Vec::new();
        let stats = codec
            .compress_into(&data, &dims, &mut bytes)
            .unwrap_or_else(|e| panic!("{} compress failed: {e}", codec.name()));
        assert_eq!(stats.codec, codec.name());
        assert_eq!(stats.bytes_in, (data.len() * 4) as u64);
        assert_eq!(stats.bytes_out, bytes.len() as u64);
        assert!(stats.ratio() > 1.0, "{} did not compress", codec.name());

        // The stream must sniff back to the codec that wrote it.
        let (owner, format) = registry.sniff(&bytes).expect("probe");
        assert_eq!(owner.name(), codec.name());
        assert_eq!(format.name(), codec.name());

        let decoded = registry.decompress(&bytes).expect("decompress");
        assert_eq!(decoded.dims, dims);
        assert_eq!(decoded.format, format);
        let err = max_abs_err(&data, &decoded.values);
        assert!(
            err <= range * 0.02,
            "{}: reconstruction error {err} too large",
            codec.name()
        );
        seen.push(format);
    }
    assert_eq!(seen, Format::ALL, "registry must cover every format");
}

#[test]
fn registry_lookup_by_name_and_unknown_magic() {
    let registry = Registry::builtin();
    for format in Format::ALL {
        assert!(registry.get(format.name()).is_some(), "{format} missing");
    }
    assert!(registry.get("nope").is_none());
    assert!(registry.sniff(b"XXXX rest of stream").is_none());
    assert!(
        registry.sniff(b"DP").is_none(),
        "short header must not match"
    );
    match registry.decompress(b"XXXXjunk") {
        Err(DpzError::Corrupt(_)) => {}
        other => panic!("expected Corrupt for unknown magic, got {other:?}"),
    }
}

#[test]
fn hostile_fixtures_are_rejected_without_panicking() {
    let registry = Registry::builtin();
    let fixtures: [(&str, Vec<u8>); 3] = [
        ("overflow_dims_header", dpz_fuzz::overflow_dims_header()),
        ("overflow_chunk_lens", dpz_fuzz::overflow_chunk_lens()),
        ("deflate_bomb", dpz_fuzz::deflate_bomb_container(1)),
    ];
    for (name, bytes) in fixtures {
        // The magic is legitimate, so probe succeeds — rejection must come
        // from the decoder, as an error, not a panic.
        assert!(registry.sniff(&bytes).is_some(), "{name}: probe");
        match registry.decompress(&bytes) {
            Err(DpzError::Corrupt(_)) | Err(DpzError::Deflate(_)) => {}
            other => panic!("{name}: expected Corrupt/Deflate, got {other:?}"),
        }
    }
}

#[test]
fn baseline_codecs_reject_bad_geometry_instead_of_panicking() {
    let registry = Registry::builtin();
    let data = smooth_field(16);
    for name in ["sz", "zfp"] {
        let codec = registry.get(name).unwrap();
        let mut sink = Vec::new();
        // 4-D and zero-sized dims would trip asserts in the backend cores.
        for dims in [vec![2usize, 2, 2, 2], vec![16, 0], vec![4, 5]] {
            match codec.compress_into(&data, &dims, &mut sink) {
                Err(DpzError::BadInput(_)) => {}
                other => panic!("{name} {dims:?}: expected BadInput, got {other:?}"),
            }
        }
    }
}

#[test]
fn registry_exposes_seekable_view_for_chunked_streams_only() {
    let registry = Registry::builtin();
    let data = smooth_field(4096);
    let dims = [64usize, 64];

    let chunked = registry.get("dpzc").unwrap();
    let mut bytes = Vec::new();
    chunked.compress_into(&data, &dims, &mut bytes).unwrap();

    // Only the chunked codec advertises random access; the seekable view is
    // reached through the stream's own magic.
    let seek = registry.seekable_for(&bytes).expect("dpzc is seekable");
    let n = seek.chunk_count(&bytes).expect("chunk count");
    assert_eq!(n, 4, "default codec writes 4 slabs");

    let chunk = seek.decompress_chunk(&bytes, 1).expect("chunk 1");
    assert_eq!(chunk.dims, [16, 64]);
    assert_eq!(chunk.format, Format::DpzChunked);
    assert_eq!(chunk.info.as_ref().map(|i| i.version), Some(4));
    assert!(max_abs_err(&data[16 * 64..32 * 64], &chunk.values) <= 0.16);

    let region = seek
        .decompress_region(&bytes, &[8..40, 10..30])
        .expect("region");
    assert_eq!(region.dims, [32, 20]);
    let mut expect = Vec::new();
    for r in 8..40 {
        expect.extend_from_slice(&data[r * 64 + 10..r * 64 + 30]);
    }
    assert!(max_abs_err(&expect, &region.values) <= 0.16);

    // Out-of-range chunk indices surface as errors, not panics.
    assert!(seek.decompress_chunk(&bytes, n).is_err());

    // Single-stream DPZ and the baselines have no seekable view.
    for name in ["dpz", "sz", "zfp"] {
        let codec = registry.get(name).unwrap();
        let mut other = Vec::new();
        codec.compress_into(&data, &dims, &mut other).unwrap();
        assert!(
            registry.seekable_for(&other).is_none(),
            "{name} must not advertise random access"
        );
    }
}

#[test]
fn progressive_codec_round_trips_and_supports_budgets() {
    let registry = Registry::builtin();
    let data = smooth_field(4096);
    let dims = [64usize, 64];

    let codec = dpz_codec::DpzChunkedCodec::progressive(dpz_core::DpzConfig::loose(), 4);
    let mut bytes = Vec::new();
    let stats = codec
        .compress_into(&data, &dims, &mut bytes)
        .expect("compress");
    assert_eq!(stats.codec, "dpzc");
    assert!(stats.dpz.is_none(), "progressive has no stage stats");

    // The registry decodes it like any other chunked stream.
    let decoded = registry.decompress(&bytes).expect("full decode");
    assert_eq!(decoded.dims, dims);
    assert!(max_abs_err(&data, &decoded.values) <= 0.16);

    // Half the stream still reconstructs the full extent, coarser. The
    // mandatory floor (container framing + one component per chunk) may
    // exceed the nominal budget, so only the floor bounds `bytes_used`.
    let half = dpz_core::decompress_progressive(&bytes, bytes.len() / 2).expect("budget");
    assert_eq!(half.dims, dims);
    assert!(half.bytes_used <= bytes.len());
    assert!(half.tve_achieved > 0.0 && half.tve_achieved <= 1.0);
    let full = dpz_core::decompress_progressive(&bytes, bytes.len()).expect("full budget");
    assert!(half.bytes_used <= full.bytes_used);
    assert!(half.tve_achieved <= full.tve_achieved);
}

#[test]
fn auto_codec_selects_compresses_and_counts() {
    let auto = AutoCodec::new();
    let data = smooth_field(8192);
    let dims = [8192usize];

    let selection = auto.select(&data, &dims).expect("select");
    let reg = dpz_telemetry::global();
    let before = reg
        .counter_with(
            "dpz_codec_selected_total",
            &[("codec", selection.codec_name())],
        )
        .get();

    let mut bytes = Vec::new();
    let stats = auto.compress_into(&data, &dims, &mut bytes).expect("auto");
    assert_eq!(stats.codec, selection.codec_name());

    let after = reg
        .counter_with(
            "dpz_codec_selected_total",
            &[("codec", selection.codec_name())],
        )
        .get();
    assert_eq!(after, before + 1, "selection counter must increment");

    // AutoCodec decodes anything the registry does — including its own
    // output, whatever backend it chose.
    let decoded = auto.decompress_from(&mut &bytes[..]).expect("decode");
    assert_eq!(decoded.dims, dims);
    assert!(max_abs_err(&data, &decoded.values) <= 0.16);
}

#[test]
fn auto_codec_tiny_inputs_fall_back_to_sz() {
    let auto = AutoCodec::new();
    let data = smooth_field(32);
    assert_eq!(auto.select(&data, &[32]).unwrap(), Selection::Sz);
}

#[test]
fn auto_codec_prefers_dpz_on_highly_redundant_fields() {
    // Strongly correlated blocks: exactly the regime the paper's predictor
    // flags as high-CR for DPZ.
    let auto = AutoCodec::new();
    let data: Vec<f32> = (0..16384)
        .map(|i| ((i % 128) as f32 * 0.05).sin())
        .collect();
    match auto.select(&data, &[128, 128]).unwrap() {
        Selection::Dpz { cr_predicted, .. } => {
            assert!(cr_predicted > 1.0, "predictor should see redundancy")
        }
        other => panic!("expected DPZ selection, got {other:?}"),
    }
}
