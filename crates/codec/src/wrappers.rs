//! [`Codec`] implementations for the four concrete backends.

use crate::{
    check_dims, io_err, read_all, Codec, CodecProbe, CodecStats, Decoded, Format, Seekable,
};
use dpz_core::{ContainerInfo, DpzConfig, DpzError, QualityTarget, RatioOracle};
use dpz_sz::{SzConfig, SzError};
use dpz_zfp::{ZfpError, ZfpMode};
use std::io::{Read, Write};
use std::ops::Range;

fn write_stream(dst: &mut dyn Write, bytes: &[u8]) -> Result<(), DpzError> {
    dst.write_all(bytes).map_err(io_err)
}

fn sniff(header: &[u8], format: Format) -> Option<Format> {
    (header.len() >= 4 && &header[..4] == format.magic()).then_some(format)
}

/// Value range of the input — the denominator of the relative-bound and
/// PSNR target mappings for the baselines (which, unlike DPZ, do not
/// normalize internally).
fn value_range(data: &[f32]) -> f64 {
    let (lo, hi) = data
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(f64::from(v)), hi.max(f64::from(v)))
        });
    if hi - lo > 0.0 {
        hi - lo
    } else {
        1.0
    }
}

/// Closed-form value-domain bound for a PSNR target: uniform quantization
/// noise `eb²/3` against range-referenced PSNR, with the same 3 dB headroom
/// the DPZ control loop reserves for secondary error sources.
fn baseline_bound_for_psnr(db: f64, range: f64) -> f64 {
    3f64.sqrt() * range * 10f64.powf(-(db + 3.0) / 20.0)
}

/// DPZ quality prediction shared by the single-stream and chunked wrappers:
/// resolve the target to a quantizer bound (closed form or oracle search)
/// and read CR off the sampling oracle, PSNR off the bound.
fn dpz_probe(
    codec: &'static str,
    cfg: &DpzConfig,
    src: &[f32],
    dims: &[usize],
    target: &QualityTarget,
) -> Result<CodecProbe, DpzError> {
    check_dims(src, dims)?;
    target.validate()?;
    let cfg = cfg.with_target(*target);
    let oracle = RatioOracle::build(src, &cfg)?;
    let (p, cr) = match *target {
        QualityTarget::Ratio { target: t, tol } => {
            let outcome = dpz_core::search_bound_for_ratio(
                |p| oracle.predict_cr(p, cfg.wide_for(p)),
                dpz_core::P_SEARCH_MIN,
                dpz_core::P_SEARCH_MAX,
                t,
                tol,
            )?;
            (outcome.p, outcome.predicted_cr)
        }
        QualityTarget::Psnr(db) => {
            let p = dpz_core::bound_for_psnr(db);
            (p, oracle.predict_cr(p, cfg.wide_for(p)))
        }
        _ => {
            let scheme = cfg.resolved_scheme()?;
            (
                scheme.p(),
                oracle.predict_cr(scheme.p(), scheme.wide_index()),
            )
        }
    };
    Ok(CodecProbe {
        codec,
        predicted_cr: cr,
        predicted_psnr: dpz_core::psnr_for_bound(p),
        prefix_values: src.len().min(dpz_core::PROBE_CAP),
    })
}

fn sz_err(e: SzError) -> DpzError {
    match e {
        SzError::Corrupt(w) => DpzError::Corrupt(w),
        SzError::Deflate(d) => DpzError::Deflate(d),
    }
}

fn zfp_err(e: ZfpError) -> DpzError {
    match e {
        ZfpError::Corrupt(w) => DpzError::Corrupt(w),
    }
}

/// The SZ/ZFP baseline cores `assert!` on unsupported geometry; turn those
/// preconditions into [`DpzError::BadInput`] at the trait boundary.
fn check_baseline_geometry(dims: &[usize]) -> Result<(), DpzError> {
    if !(1..=3).contains(&dims.len()) {
        return Err(DpzError::BadInput("baseline codecs support 1-3 dimensions"));
    }
    if dims.contains(&0) {
        return Err(DpzError::BadInput("zero-sized dimension"));
    }
    Ok(())
}

/// Single-stream DPZ (`DPZ1`): the paper's Stage 1–3 pipeline.
#[derive(Debug, Clone, Copy)]
pub struct DpzCodec {
    /// Pipeline configuration used by [`Codec::compress_into`].
    pub cfg: DpzConfig,
}

impl DpzCodec {
    /// DPZ with the given pipeline configuration.
    pub fn new(cfg: DpzConfig) -> Self {
        DpzCodec { cfg }
    }
}

impl Default for DpzCodec {
    /// DPZ-l (`loose`) — the paper's high-ratio operating point.
    fn default() -> Self {
        DpzCodec::new(DpzConfig::loose())
    }
}

impl Codec for DpzCodec {
    fn name(&self) -> &'static str {
        "dpz"
    }

    fn compress_into(
        &self,
        src: &[f32],
        dims: &[usize],
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        let out = dpz_core::compress(src, dims, &self.cfg)?;
        write_stream(dst, &out.bytes)?;
        Ok(CodecStats {
            codec: "dpz",
            bytes_in: (src.len() * 4) as u64,
            bytes_out: out.bytes.len() as u64,
            dpz: Some(out.stats),
        })
    }

    fn compress_with_target(
        &self,
        src: &[f32],
        dims: &[usize],
        target: &QualityTarget,
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        DpzCodec::new(self.cfg.with_target(*target)).compress_into(src, dims, dst)
    }

    fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError> {
        let bytes = read_all(src)?;
        let (values, dims, info) = dpz_core::decompress_with_info(&bytes)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::Dpz,
            info: Some(info),
        })
    }

    fn probe(
        &self,
        src: &[f32],
        dims: &[usize],
        target: &QualityTarget,
    ) -> Result<CodecProbe, DpzError> {
        dpz_probe("dpz", &self.cfg, src, dims, target)
    }

    fn sniff(&self, header: &[u8]) -> Option<Format> {
        sniff(header, Format::Dpz)
    }
}

/// Chunked DPZ (`DPZC`): the same stage graph executed once per slab, with
/// slab-granular random access.
#[derive(Debug, Clone, Copy)]
pub struct DpzChunkedCodec {
    /// Pipeline configuration for every slab.
    pub cfg: DpzConfig,
    /// Number of slabs along the slowest axis.
    pub chunks: usize,
    /// Emit progressive chunk streams (energy-ordered PCA components with
    /// per-component byte ranges in the footer) instead of plain `DPZ1`
    /// inner streams. Enables budgeted retrieval at a small ratio cost.
    pub progressive: bool,
}

impl DpzChunkedCodec {
    /// Chunked DPZ with the given configuration and slab count.
    pub fn new(cfg: DpzConfig, chunks: usize) -> Self {
        DpzChunkedCodec {
            cfg,
            chunks,
            progressive: false,
        }
    }

    /// Same, but writing progressive chunk streams.
    pub fn progressive(cfg: DpzConfig, chunks: usize) -> Self {
        DpzChunkedCodec {
            cfg,
            chunks,
            progressive: true,
        }
    }
}

impl Default for DpzChunkedCodec {
    /// DPZ-l with 4 slabs (the sweet spot of the ratio/parallelism
    /// trade-off at default scales; see `dpz_core::chunked`).
    fn default() -> Self {
        DpzChunkedCodec::new(DpzConfig::loose(), 4)
    }
}

impl Codec for DpzChunkedCodec {
    fn name(&self) -> &'static str {
        "dpzc"
    }

    fn compress_into(
        &self,
        src: &[f32],
        dims: &[usize],
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        let out = if self.progressive {
            dpz_core::compress_progressive(src, dims, &self.cfg, self.chunks)?
        } else {
            dpz_core::compress_chunked(src, dims, &self.cfg, self.chunks)?
        };
        write_stream(dst, &out.bytes)?;
        // Report the first slab's stage breakdown as representative; the
        // aggregate ratio is exact. Progressive containers carry no stage
        // stats, so `dpz` is simply absent for them.
        let dpz = out.chunk_stats.into_iter().next();
        Ok(CodecStats {
            codec: "dpzc",
            bytes_in: (src.len() * 4) as u64,
            bytes_out: out.bytes.len() as u64,
            dpz,
        })
    }

    fn compress_with_target(
        &self,
        src: &[f32],
        dims: &[usize],
        target: &QualityTarget,
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        let mut resolved = *self;
        resolved.cfg = self.cfg.with_target(*target);
        resolved.compress_into(src, dims, dst)
    }

    fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError> {
        let bytes = read_all(src)?;
        let (values, dims, info) = dpz_core::decompress_chunked_with_info(&bytes)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::DpzChunked,
            info: Some(info),
        })
    }

    fn probe(
        &self,
        src: &[f32],
        dims: &[usize],
        target: &QualityTarget,
    ) -> Result<CodecProbe, DpzError> {
        // The oracle models the shared pipeline; per-slab framing overhead
        // is inside the noise the confirmation pass absorbs.
        dpz_probe("dpzc", &self.cfg, src, dims, target)
    }

    fn sniff(&self, header: &[u8]) -> Option<Format> {
        sniff(header, Format::DpzChunked)
    }

    fn as_seekable(&self) -> Option<&dyn Seekable> {
        Some(self)
    }
}

/// Random access rides on the v4 index footer; the chunk info reported in
/// [`Decoded::info`] mirrors what a full decode would have said about the
/// container (v4, checksummed).
impl Seekable for DpzChunkedCodec {
    fn chunk_count(&self, bytes: &[u8]) -> Result<usize, DpzError> {
        dpz_core::chunked::chunk_count(bytes)
    }

    fn decompress_chunk(&self, bytes: &[u8], index: usize) -> Result<Decoded, DpzError> {
        let (values, dims) = dpz_core::decompress_chunk(bytes, index)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::DpzChunked,
            info: Some(seekable_info()),
        })
    }

    fn decompress_region(
        &self,
        bytes: &[u8],
        region: &[Range<usize>],
    ) -> Result<Decoded, DpzError> {
        let (values, dims) = dpz_core::decompress_region(bytes, region)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::DpzChunked,
            info: Some(seekable_info()),
        })
    }
}

/// Container info for partial v4 retrievals: the index footer is only
/// present (and only parses) on checksummed v4 streams.
fn seekable_info() -> ContainerInfo {
    ContainerInfo {
        version: 4,
        checksummed: true,
        tans_sections: 0,
    }
}

/// SZ-style baseline (`SZR1`): Lorenzo prediction + linear-scaling
/// quantization + Huffman.
#[derive(Debug, Clone, Copy)]
pub struct SzCodec {
    /// Error-bound configuration.
    pub cfg: SzConfig,
}

impl SzCodec {
    /// SZ with the given configuration.
    pub fn new(cfg: SzConfig) -> Self {
        SzCodec { cfg }
    }
}

impl Default for SzCodec {
    /// Absolute error bound 1e-3 with Lorenzo prediction.
    fn default() -> Self {
        SzCodec::new(SzConfig::with_error_bound(1e-3))
    }
}

impl SzCodec {
    /// Map a [`QualityTarget`] to an absolute error bound for this input.
    /// Bounds and PSNR have closed forms; a ratio target searches the
    /// bound space by micro-compressing a bounded prefix (the measurement
    /// *is* the oracle — SZ is cheap enough that measuring beats
    /// modelling).
    fn resolve_bound(&self, src: &[f32], target: &QualityTarget) -> Result<f64, DpzError> {
        target.validate()?;
        let range = value_range(src);
        match *target {
            QualityTarget::ErrorBound(b) => Ok(b),
            QualityTarget::RelBound(r) => Ok(r * range),
            QualityTarget::Psnr(db) => Ok(baseline_bound_for_psnr(db, range)),
            QualityTarget::Ratio { target: t, tol } => {
                let n = src.len().min(dpz_core::PROBE_CAP);
                let sample = &src[..n];
                let predict = |eb: f64| {
                    let cfg = SzConfig {
                        error_bound: eb,
                        ..self.cfg
                    };
                    let bytes = dpz_sz::compress(sample, &[n], &cfg);
                    (n * 4) as f64 / bytes.len().max(1) as f64
                };
                let outcome =
                    dpz_core::search_bound_for_ratio(predict, 1e-7 * range, 0.3 * range, t, tol)?;
                Ok(outcome.p)
            }
        }
    }
}

impl Codec for SzCodec {
    fn name(&self) -> &'static str {
        "sz"
    }

    fn compress_into(
        &self,
        src: &[f32],
        dims: &[usize],
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        check_dims(src, dims)?;
        check_baseline_geometry(dims)?;
        let bytes = dpz_sz::compress(src, dims, &self.cfg);
        write_stream(dst, &bytes)?;
        Ok(CodecStats {
            codec: "sz",
            bytes_in: (src.len() * 4) as u64,
            bytes_out: bytes.len() as u64,
            dpz: None,
        })
    }

    fn compress_with_target(
        &self,
        src: &[f32],
        dims: &[usize],
        target: &QualityTarget,
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        check_dims(src, dims)?;
        check_baseline_geometry(dims)?;
        let eb = self.resolve_bound(src, target)?;
        let cfg = SzConfig {
            error_bound: eb,
            ..self.cfg
        };
        SzCodec::new(cfg).compress_into(src, dims, dst)
    }

    fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError> {
        let bytes = read_all(src)?;
        let (values, dims) = dpz_sz::decompress(&bytes).map_err(sz_err)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::Sz,
            info: None,
        })
    }

    fn sniff(&self, header: &[u8]) -> Option<Format> {
        sniff(header, Format::Sz)
    }
}

/// ZFP-style baseline (`ZFR1`): block transform + embedded bit-plane
/// coding.
#[derive(Debug, Clone, Copy)]
pub struct ZfpCodec {
    /// Compression mode (precision / accuracy / rate).
    pub mode: ZfpMode,
}

impl ZfpCodec {
    /// ZFP in the given mode.
    pub fn new(mode: ZfpMode) -> Self {
        ZfpCodec { mode }
    }
}

impl Default for ZfpCodec {
    /// Fixed accuracy 1e-3 — comparable to the default SZ bound.
    fn default() -> Self {
        ZfpCodec::new(ZfpMode::FixedAccuracy(1e-3))
    }
}

impl Codec for ZfpCodec {
    fn name(&self) -> &'static str {
        "zfp"
    }

    fn compress_into(
        &self,
        src: &[f32],
        dims: &[usize],
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        check_dims(src, dims)?;
        check_baseline_geometry(dims)?;
        let bytes = dpz_zfp::compress(src, dims, self.mode);
        write_stream(dst, &bytes)?;
        Ok(CodecStats {
            codec: "zfp",
            bytes_in: (src.len() * 4) as u64,
            bytes_out: bytes.len() as u64,
            dpz: None,
        })
    }

    fn compress_with_target(
        &self,
        src: &[f32],
        dims: &[usize],
        target: &QualityTarget,
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        check_dims(src, dims)?;
        check_baseline_geometry(dims)?;
        target.validate()?;
        let range = value_range(src);
        // Every target maps to a native ZFP mode: bounds and PSNR to fixed
        // accuracy, ratio to fixed rate (which hits the ratio *exactly* —
        // 32 uncompressed bits per value over `32/target` coded bits).
        let mode = match *target {
            QualityTarget::ErrorBound(b) => ZfpMode::FixedAccuracy(b),
            QualityTarget::RelBound(r) => ZfpMode::FixedAccuracy(r * range),
            QualityTarget::Psnr(db) => ZfpMode::FixedAccuracy(baseline_bound_for_psnr(db, range)),
            QualityTarget::Ratio { target: t, .. } => ZfpMode::FixedRate(32.0 / t),
        };
        ZfpCodec::new(mode).compress_into(src, dims, dst)
    }

    fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError> {
        let bytes = read_all(src)?;
        let (values, dims) = dpz_zfp::decompress(&bytes).map_err(zfp_err)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::Zfp,
            info: None,
        })
    }

    fn sniff(&self, header: &[u8]) -> Option<Format> {
        sniff(header, Format::Zfp)
    }
}
