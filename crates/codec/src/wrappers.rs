//! [`Codec`] implementations for the four concrete backends.

use crate::{check_dims, io_err, read_all, Codec, CodecStats, Decoded, Format, Seekable};
use dpz_core::{ContainerInfo, DpzConfig, DpzError};
use dpz_sz::{SzConfig, SzError};
use dpz_zfp::{ZfpError, ZfpMode};
use std::io::{Read, Write};
use std::ops::Range;

fn write_stream(dst: &mut dyn Write, bytes: &[u8]) -> Result<(), DpzError> {
    dst.write_all(bytes).map_err(io_err)
}

fn sniff(header: &[u8], format: Format) -> Option<Format> {
    (header.len() >= 4 && &header[..4] == format.magic()).then_some(format)
}

fn sz_err(e: SzError) -> DpzError {
    match e {
        SzError::Corrupt(w) => DpzError::Corrupt(w),
        SzError::Deflate(d) => DpzError::Deflate(d),
    }
}

fn zfp_err(e: ZfpError) -> DpzError {
    match e {
        ZfpError::Corrupt(w) => DpzError::Corrupt(w),
    }
}

/// The SZ/ZFP baseline cores `assert!` on unsupported geometry; turn those
/// preconditions into [`DpzError::BadInput`] at the trait boundary.
fn check_baseline_geometry(dims: &[usize]) -> Result<(), DpzError> {
    if !(1..=3).contains(&dims.len()) {
        return Err(DpzError::BadInput("baseline codecs support 1-3 dimensions"));
    }
    if dims.contains(&0) {
        return Err(DpzError::BadInput("zero-sized dimension"));
    }
    Ok(())
}

/// Single-stream DPZ (`DPZ1`): the paper's Stage 1–3 pipeline.
#[derive(Debug, Clone, Copy)]
pub struct DpzCodec {
    /// Pipeline configuration used by [`Codec::compress_into`].
    pub cfg: DpzConfig,
}

impl DpzCodec {
    /// DPZ with the given pipeline configuration.
    pub fn new(cfg: DpzConfig) -> Self {
        DpzCodec { cfg }
    }
}

impl Default for DpzCodec {
    /// DPZ-l (`loose`) — the paper's high-ratio operating point.
    fn default() -> Self {
        DpzCodec::new(DpzConfig::loose())
    }
}

impl Codec for DpzCodec {
    fn name(&self) -> &'static str {
        "dpz"
    }

    fn compress_into(
        &self,
        src: &[f32],
        dims: &[usize],
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        let out = dpz_core::compress(src, dims, &self.cfg)?;
        write_stream(dst, &out.bytes)?;
        Ok(CodecStats {
            codec: "dpz",
            bytes_in: (src.len() * 4) as u64,
            bytes_out: out.bytes.len() as u64,
            dpz: Some(out.stats),
        })
    }

    fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError> {
        let bytes = read_all(src)?;
        let (values, dims, info) = dpz_core::decompress_with_info(&bytes)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::Dpz,
            info: Some(info),
        })
    }

    fn probe(&self, header: &[u8]) -> Option<Format> {
        sniff(header, Format::Dpz)
    }
}

/// Chunked DPZ (`DPZC`): the same stage graph executed once per slab, with
/// slab-granular random access.
#[derive(Debug, Clone, Copy)]
pub struct DpzChunkedCodec {
    /// Pipeline configuration for every slab.
    pub cfg: DpzConfig,
    /// Number of slabs along the slowest axis.
    pub chunks: usize,
    /// Emit progressive chunk streams (energy-ordered PCA components with
    /// per-component byte ranges in the footer) instead of plain `DPZ1`
    /// inner streams. Enables budgeted retrieval at a small ratio cost.
    pub progressive: bool,
}

impl DpzChunkedCodec {
    /// Chunked DPZ with the given configuration and slab count.
    pub fn new(cfg: DpzConfig, chunks: usize) -> Self {
        DpzChunkedCodec {
            cfg,
            chunks,
            progressive: false,
        }
    }

    /// Same, but writing progressive chunk streams.
    pub fn progressive(cfg: DpzConfig, chunks: usize) -> Self {
        DpzChunkedCodec {
            cfg,
            chunks,
            progressive: true,
        }
    }
}

impl Default for DpzChunkedCodec {
    /// DPZ-l with 4 slabs (the sweet spot of the ratio/parallelism
    /// trade-off at default scales; see `dpz_core::chunked`).
    fn default() -> Self {
        DpzChunkedCodec::new(DpzConfig::loose(), 4)
    }
}

impl Codec for DpzChunkedCodec {
    fn name(&self) -> &'static str {
        "dpzc"
    }

    fn compress_into(
        &self,
        src: &[f32],
        dims: &[usize],
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        let out = if self.progressive {
            dpz_core::compress_progressive(src, dims, &self.cfg, self.chunks)?
        } else {
            dpz_core::compress_chunked(src, dims, &self.cfg, self.chunks)?
        };
        write_stream(dst, &out.bytes)?;
        // Report the first slab's stage breakdown as representative; the
        // aggregate ratio is exact. Progressive containers carry no stage
        // stats, so `dpz` is simply absent for them.
        let dpz = out.chunk_stats.into_iter().next();
        Ok(CodecStats {
            codec: "dpzc",
            bytes_in: (src.len() * 4) as u64,
            bytes_out: out.bytes.len() as u64,
            dpz,
        })
    }

    fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError> {
        let bytes = read_all(src)?;
        let (values, dims, info) = dpz_core::decompress_chunked_with_info(&bytes)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::DpzChunked,
            info: Some(info),
        })
    }

    fn probe(&self, header: &[u8]) -> Option<Format> {
        sniff(header, Format::DpzChunked)
    }

    fn as_seekable(&self) -> Option<&dyn Seekable> {
        Some(self)
    }
}

/// Random access rides on the v4 index footer; the chunk info reported in
/// [`Decoded::info`] mirrors what a full decode would have said about the
/// container (v4, checksummed).
impl Seekable for DpzChunkedCodec {
    fn chunk_count(&self, bytes: &[u8]) -> Result<usize, DpzError> {
        dpz_core::chunked::chunk_count(bytes)
    }

    fn decompress_chunk(&self, bytes: &[u8], index: usize) -> Result<Decoded, DpzError> {
        let (values, dims) = dpz_core::decompress_chunk(bytes, index)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::DpzChunked,
            info: Some(seekable_info()),
        })
    }

    fn decompress_region(
        &self,
        bytes: &[u8],
        region: &[Range<usize>],
    ) -> Result<Decoded, DpzError> {
        let (values, dims) = dpz_core::decompress_region(bytes, region)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::DpzChunked,
            info: Some(seekable_info()),
        })
    }
}

/// Container info for partial v4 retrievals: the index footer is only
/// present (and only parses) on checksummed v4 streams.
fn seekable_info() -> ContainerInfo {
    ContainerInfo {
        version: 4,
        checksummed: true,
        tans_sections: 0,
    }
}

/// SZ-style baseline (`SZR1`): Lorenzo prediction + linear-scaling
/// quantization + Huffman.
#[derive(Debug, Clone, Copy)]
pub struct SzCodec {
    /// Error-bound configuration.
    pub cfg: SzConfig,
}

impl SzCodec {
    /// SZ with the given configuration.
    pub fn new(cfg: SzConfig) -> Self {
        SzCodec { cfg }
    }
}

impl Default for SzCodec {
    /// Absolute error bound 1e-3 with Lorenzo prediction.
    fn default() -> Self {
        SzCodec::new(SzConfig::with_error_bound(1e-3))
    }
}

impl Codec for SzCodec {
    fn name(&self) -> &'static str {
        "sz"
    }

    fn compress_into(
        &self,
        src: &[f32],
        dims: &[usize],
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        check_dims(src, dims)?;
        check_baseline_geometry(dims)?;
        let bytes = dpz_sz::compress(src, dims, &self.cfg);
        write_stream(dst, &bytes)?;
        Ok(CodecStats {
            codec: "sz",
            bytes_in: (src.len() * 4) as u64,
            bytes_out: bytes.len() as u64,
            dpz: None,
        })
    }

    fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError> {
        let bytes = read_all(src)?;
        let (values, dims) = dpz_sz::decompress(&bytes).map_err(sz_err)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::Sz,
            info: None,
        })
    }

    fn probe(&self, header: &[u8]) -> Option<Format> {
        sniff(header, Format::Sz)
    }
}

/// ZFP-style baseline (`ZFR1`): block transform + embedded bit-plane
/// coding.
#[derive(Debug, Clone, Copy)]
pub struct ZfpCodec {
    /// Compression mode (precision / accuracy / rate).
    pub mode: ZfpMode,
}

impl ZfpCodec {
    /// ZFP in the given mode.
    pub fn new(mode: ZfpMode) -> Self {
        ZfpCodec { mode }
    }
}

impl Default for ZfpCodec {
    /// Fixed accuracy 1e-3 — comparable to the default SZ bound.
    fn default() -> Self {
        ZfpCodec::new(ZfpMode::FixedAccuracy(1e-3))
    }
}

impl Codec for ZfpCodec {
    fn name(&self) -> &'static str {
        "zfp"
    }

    fn compress_into(
        &self,
        src: &[f32],
        dims: &[usize],
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        check_dims(src, dims)?;
        check_baseline_geometry(dims)?;
        let bytes = dpz_zfp::compress(src, dims, self.mode);
        write_stream(dst, &bytes)?;
        Ok(CodecStats {
            codec: "zfp",
            bytes_in: (src.len() * 4) as u64,
            bytes_out: bytes.len() as u64,
            dpz: None,
        })
    }

    fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError> {
        let bytes = read_all(src)?;
        let (values, dims) = dpz_zfp::decompress(&bytes).map_err(zfp_err)?;
        Ok(Decoded {
            values,
            dims,
            format: Format::Zfp,
            info: None,
        })
    }

    fn probe(&self, header: &[u8]) -> Option<Format> {
        sniff(header, Format::Zfp)
    }
}
