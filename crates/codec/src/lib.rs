//! # dpz-codec
//!
//! The codec engine: one contract every compressor in the workspace
//! implements, so selection, serving, and tooling layers are thin clients
//! of a single interface (the payoff Tao et al.'s online SZ/ZFP selection
//! and FRaZ's codec-agnostic search loop demonstrate).
//!
//! Three pieces:
//!
//! * [`Codec`] — the streaming trait: `compress_into` a [`std::io::Write`]
//!   with the configured knobs, `compress_with_target` toward a
//!   [`QualityTarget`] resolved per input, `decompress_from` a
//!   [`std::io::Read`], `probe` a quality prediction (CR *and* PSNR) from a
//!   bounded prefix, and `sniff` a header for format identification.
//!   Implemented here for DPZ single-stream ([`DpzCodec`]), DPZ chunked
//!   ([`DpzChunkedCodec`]), SZ ([`SzCodec`]) and ZFP ([`ZfpCodec`]).
//! * [`Registry`] — sniffs `DPZ1`/`DPZC`/`SZR1`/`ZFR1` magic and dispatches
//!   to the owning codec; [`Registry::builtin`] registers all four.
//! * [`AutoCodec`] — per-input backend selection using the paper's §V
//!   sampling predictor (`CR_p = (M/k_e) × CR'_stage3 × CR'_zlib`) for DPZ
//!   against micro-probes of SZ and ZFP on a sample; under a quality
//!   target the selection is rate-distortion-optimal (Tao et al.'s online
//!   SZ-vs-ZFP style): best predicted PSNR at a fixed ratio, best
//!   predicted ratio at a fixed quality.
//!
//! The DPZ pipeline's *internal* composition substrate — the [`Stage`]
//! trait, [`StageGraph`] engine, and [`BufferPool`] — lives in
//! `dpz_core::stage` (stages need core internals) and is re-exported here
//! so this crate presents the complete codec-engine contract.

#![warn(missing_docs)]

mod auto;
mod registry;
mod wrappers;

pub use auto::{AutoCodec, Selection};
pub use dpz_core::stage::{BufferPool, Stage, StageGraph, StageTrace};
pub use dpz_core::ProgressiveDecoded;
pub use dpz_core::{CompressionStats, ContainerInfo, DpzError, PipelinePlan};
pub use dpz_core::{QualityTarget, PROBE_CAP};
pub use registry::{Format, Registry};
pub use wrappers::{DpzChunkedCodec, DpzCodec, SzCodec, ZfpCodec};

use std::io::{Read, Write};
use std::ops::Range;

/// What one compression produced, uniformly across backends.
#[derive(Debug, Clone)]
pub struct CodecStats {
    /// Name of the backend that actually encoded the stream (for
    /// [`AutoCodec`] this is the *selected* backend, not `"auto"`).
    pub codec: &'static str,
    /// Input size in bytes (`4 × values`).
    pub bytes_in: u64,
    /// Compressed size in bytes.
    pub bytes_out: u64,
    /// Rich per-stage statistics when the DPZ pipeline ran (absent for
    /// SZ/ZFP, which have no stage structure to report).
    pub dpz: Option<CompressionStats>,
}

impl CodecStats {
    /// End-to-end compression ratio.
    pub fn ratio(&self) -> f64 {
        self.bytes_in as f64 / (self.bytes_out as f64).max(1.0)
    }
}

/// One decompressed stream, uniformly across backends.
#[derive(Debug, Clone)]
pub struct Decoded {
    /// Reconstructed values.
    pub values: Vec<f32>,
    /// Array dimensions.
    pub dims: Vec<usize>,
    /// Container format the stream was in.
    pub format: Format,
    /// Container version/checksum details (DPZ formats only).
    pub info: Option<ContainerInfo>,
}

/// What a quality probe predicts for one backend on one input, from a
/// prefix of at most [`PROBE_CAP`] values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecProbe {
    /// Backend the prediction is for.
    pub codec: &'static str,
    /// Predicted end-to-end compression ratio at the probed target.
    pub predicted_cr: f64,
    /// Predicted reconstruction quality (dB) at the probed target.
    pub predicted_psnr: f64,
    /// How many leading values the probe actually examined (its prefix
    /// size — `min(len, PROBE_CAP)`).
    pub prefix_values: usize,
}

/// The contract every compressor implements: streaming compress into any
/// [`Write`] (with configured knobs or toward a resolved [`QualityTarget`]),
/// streaming decompress from any [`Read`], quality probing, and header
/// sniffing.
///
/// Implementations must be `Send + Sync` so a registry can be shared across
/// worker threads; all state is per-call.
pub trait Codec: Send + Sync {
    /// Stable codec name (`"dpz"`, `"dpzc"`, `"sz"`, `"zfp"`, `"auto"`).
    fn name(&self) -> &'static str;

    /// Compress `src` (shape `dims`) into `dst` with the codec's configured
    /// knobs.
    fn compress_into(
        &self,
        src: &[f32],
        dims: &[usize],
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError>;

    /// Compress `src` toward `target`, resolving it against this input
    /// (closed form, search, or knob mapping — backend-specific) before
    /// encoding. The codec's other configured knobs still apply.
    fn compress_with_target(
        &self,
        src: &[f32],
        dims: &[usize],
        target: &QualityTarget,
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError>;

    /// Decompress a complete stream read from `src`.
    fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError>;

    /// Predict what compressing `src` toward `target` would yield — ratio
    /// *and* PSNR — from a prefix of at most [`PROBE_CAP`] values.
    ///
    /// The default implementation micro-compresses the prefix for real and
    /// measures both numbers (cheap for the baseline codecs); backends with
    /// an analytic model override it.
    fn probe(
        &self,
        src: &[f32],
        dims: &[usize],
        target: &QualityTarget,
    ) -> Result<CodecProbe, DpzError> {
        check_dims(src, dims)?;
        target.validate()?;
        let n = src.len().min(PROBE_CAP);
        let sample = &src[..n];
        let mut sink = Vec::new();
        let stats = self.compress_with_target(sample, &[n], target, &mut sink)?;
        let decoded = self.decompress_from(&mut &sink[..])?;
        Ok(CodecProbe {
            codec: self.name(),
            predicted_cr: stats.ratio(),
            predicted_psnr: probe_psnr(sample, &decoded.values),
            prefix_values: n,
        })
    }

    /// Whether `header` (the stream's first bytes — at least 4 are needed
    /// for any positive answer) begins a stream this codec decodes, and if
    /// so which format.
    fn sniff(&self, header: &[u8]) -> Option<Format>;

    /// The random-access view of this codec, when its container format
    /// supports retrieving parts of a stream without a full decode.
    /// Defaults to `None`; seekable formats override it.
    fn as_seekable(&self) -> Option<&dyn Seekable> {
        None
    }
}

/// Measured PSNR of a probe roundtrip (range-normalized, matching the
/// pipeline's own metric).
pub(crate) fn probe_psnr(original: &[f32], reconstructed: &[f32]) -> f64 {
    let (lo, hi) = original
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(f64::from(v)), hi.max(f64::from(v)))
        });
    let range = if hi - lo > 0.0 { hi - lo } else { 1.0 };
    let mse = original
        .iter()
        .zip(reconstructed)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum::<f64>()
        / original.len().max(1) as f64;
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        20.0 * range.log10() - 10.0 * mse.log10()
    }
}

/// Random access into a compressed stream: decode one chunk or an
/// axis-aligned region, touching (and CRC-verifying) only the bytes those
/// parts need. Obtained through [`Codec::as_seekable`] or
/// [`Registry::seekable_for`]; a `Some` answer still depends on the stream
/// itself carrying an index (for DPZC, a v4 footer — legacy v1/v2 streams
/// return [`DpzError::BadInput`]).
pub trait Seekable: Send + Sync {
    /// Number of independently retrievable chunks in `bytes`.
    fn chunk_count(&self, bytes: &[u8]) -> Result<usize, DpzError>;

    /// Decode chunk `index` alone. `dims` in the result are chunk-local.
    fn decompress_chunk(&self, bytes: &[u8], index: usize) -> Result<Decoded, DpzError>;

    /// Decode an axis-aligned region (half-open per-axis ranges, one per
    /// dimension). Only chunks overlapping the region are read.
    fn decompress_region(&self, bytes: &[u8], region: &[Range<usize>])
        -> Result<Decoded, DpzError>;
}

/// Map an I/O error into the shared error type.
pub(crate) fn io_err(e: std::io::Error) -> DpzError {
    DpzError::Io(e.to_string())
}

/// Drain a reader to a byte buffer (all current container formats need the
/// full stream before decoding can start).
pub(crate) fn read_all(src: &mut dyn Read) -> Result<Vec<u8>, DpzError> {
    let mut buf = Vec::new();
    src.read_to_end(&mut buf).map_err(io_err)?;
    Ok(buf)
}

/// Validate dims against the value count before handing to backends whose
/// free functions `assert!` on mismatch.
pub(crate) fn check_dims(src: &[f32], dims: &[usize]) -> Result<(), DpzError> {
    let product = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(DpzError::BadInput("dims overflow"))?;
    if dims.is_empty() || product != src.len() {
        return Err(DpzError::BadInput("dims do not match data length"));
    }
    Ok(())
}
