//! # dpz-codec
//!
//! The codec engine: one contract every compressor in the workspace
//! implements, so selection, serving, and tooling layers are thin clients
//! of a single interface (the payoff Tao et al.'s online SZ/ZFP selection
//! and FRaZ's codec-agnostic search loop demonstrate).
//!
//! Three pieces:
//!
//! * [`Codec`] — the streaming trait: `compress_into` a [`std::io::Write`],
//!   `decompress_from` a [`std::io::Read`], and `probe` a header for format
//!   sniffing. Implemented here for DPZ single-stream ([`DpzCodec`]),
//!   DPZ chunked ([`DpzChunkedCodec`]), SZ ([`SzCodec`]) and ZFP
//!   ([`ZfpCodec`]).
//! * [`Registry`] — sniffs `DPZ1`/`DPZC`/`SZR1`/`ZFR1` magic and dispatches
//!   to the owning codec; [`Registry::builtin`] registers all four.
//! * [`AutoCodec`] — per-input backend selection using the paper's §V
//!   sampling predictor (`CR_p = (M/k_e) × CR'_stage3 × CR'_zlib`) for DPZ
//!   against micro-probes of SZ and ZFP on a sample.
//!
//! The DPZ pipeline's *internal* composition substrate — the [`Stage`]
//! trait, [`StageGraph`] engine, and [`BufferPool`] — lives in
//! `dpz_core::stage` (stages need core internals) and is re-exported here
//! so this crate presents the complete codec-engine contract.

#![warn(missing_docs)]

mod auto;
mod registry;
mod wrappers;

pub use auto::{AutoCodec, Selection};
pub use dpz_core::stage::{BufferPool, Stage, StageGraph, StageTrace};
pub use dpz_core::ProgressiveDecoded;
pub use dpz_core::{CompressionStats, ContainerInfo, DpzError, PipelinePlan};
pub use registry::{Format, Registry};
pub use wrappers::{DpzChunkedCodec, DpzCodec, SzCodec, ZfpCodec};

use std::io::{Read, Write};
use std::ops::Range;

/// What one compression produced, uniformly across backends.
#[derive(Debug, Clone)]
pub struct CodecStats {
    /// Name of the backend that actually encoded the stream (for
    /// [`AutoCodec`] this is the *selected* backend, not `"auto"`).
    pub codec: &'static str,
    /// Input size in bytes (`4 × values`).
    pub bytes_in: u64,
    /// Compressed size in bytes.
    pub bytes_out: u64,
    /// Rich per-stage statistics when the DPZ pipeline ran (absent for
    /// SZ/ZFP, which have no stage structure to report).
    pub dpz: Option<CompressionStats>,
}

impl CodecStats {
    /// End-to-end compression ratio.
    pub fn ratio(&self) -> f64 {
        self.bytes_in as f64 / (self.bytes_out as f64).max(1.0)
    }
}

/// One decompressed stream, uniformly across backends.
#[derive(Debug, Clone)]
pub struct Decoded {
    /// Reconstructed values.
    pub values: Vec<f32>,
    /// Array dimensions.
    pub dims: Vec<usize>,
    /// Container format the stream was in.
    pub format: Format,
    /// Container version/checksum details (DPZ formats only).
    pub info: Option<ContainerInfo>,
}

/// The contract every compressor implements: streaming compress into any
/// [`Write`], streaming decompress from any [`Read`], and header sniffing.
///
/// Implementations must be `Send + Sync` so a registry can be shared across
/// worker threads; all state is per-call.
pub trait Codec: Send + Sync {
    /// Stable codec name (`"dpz"`, `"dpzc"`, `"sz"`, `"zfp"`, `"auto"`).
    fn name(&self) -> &'static str;

    /// Compress `src` (shape `dims`) into `dst`.
    fn compress_into(
        &self,
        src: &[f32],
        dims: &[usize],
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError>;

    /// Decompress a complete stream read from `src`.
    fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError>;

    /// Whether `header` (the stream's first bytes — at least 4 are needed
    /// for any positive answer) begins a stream this codec decodes, and if
    /// so which format.
    fn probe(&self, header: &[u8]) -> Option<Format>;

    /// The random-access view of this codec, when its container format
    /// supports retrieving parts of a stream without a full decode.
    /// Defaults to `None`; seekable formats override it.
    fn as_seekable(&self) -> Option<&dyn Seekable> {
        None
    }
}

/// Random access into a compressed stream: decode one chunk or an
/// axis-aligned region, touching (and CRC-verifying) only the bytes those
/// parts need. Obtained through [`Codec::as_seekable`] or
/// [`Registry::seekable_for`]; a `Some` answer still depends on the stream
/// itself carrying an index (for DPZC, a v4 footer — legacy v1/v2 streams
/// return [`DpzError::BadInput`]).
pub trait Seekable: Send + Sync {
    /// Number of independently retrievable chunks in `bytes`.
    fn chunk_count(&self, bytes: &[u8]) -> Result<usize, DpzError>;

    /// Decode chunk `index` alone. `dims` in the result are chunk-local.
    fn decompress_chunk(&self, bytes: &[u8], index: usize) -> Result<Decoded, DpzError>;

    /// Decode an axis-aligned region (half-open per-axis ranges, one per
    /// dimension). Only chunks overlapping the region are read.
    fn decompress_region(&self, bytes: &[u8], region: &[Range<usize>])
        -> Result<Decoded, DpzError>;
}

/// Map an I/O error into the shared error type.
pub(crate) fn io_err(e: std::io::Error) -> DpzError {
    DpzError::Io(e.to_string())
}

/// Drain a reader to a byte buffer (all current container formats need the
/// full stream before decoding can start).
pub(crate) fn read_all(src: &mut dyn Read) -> Result<Vec<u8>, DpzError> {
    let mut buf = Vec::new();
    src.read_to_end(&mut buf).map_err(io_err)?;
    Ok(buf)
}

/// Validate dims against the value count before handing to backends whose
/// free functions `assert!` on mismatch.
pub(crate) fn check_dims(src: &[f32], dims: &[usize]) -> Result<(), DpzError> {
    let product = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(DpzError::BadInput("dims overflow"))?;
    if dims.is_empty() || product != src.len() {
        return Err(DpzError::BadInput("dims do not match data length"));
    }
    Ok(())
}
