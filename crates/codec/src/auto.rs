//! Per-input backend selection (the paper's §V predictor, used the way
//! Tao et al. use online sampling to pick between SZ and ZFP).

use crate::wrappers::{DpzCodec, SzCodec, ZfpCodec};
use crate::{check_dims, read_all, Codec, CodecProbe, CodecStats, Decoded, Format};
use dpz_core::decompose::{choose_shape, dct_blocks, to_blocks};
use dpz_core::{DpzConfig, DpzError, QualityTarget, SamplingStrategy, PROBE_CAP};
use std::io::{Read, Write};

/// Below this many values the DPZ block matrix is too small for the VIF
/// probe to mean anything; hand tiny inputs straight to SZ.
const TINY_INPUT: usize = 256;

/// Pessimistic predicted DPZ ratio at/above which the loose scheme (1-byte
/// indices) is safe; below it the strict scheme preserves more signal for
/// barely-compressible data.
const LOOSE_CR_THRESHOLD: f64 = 4.0;

/// Chooses a backend per input, then compresses with it.
///
/// Selection runs on a prefix sample (at most 64Ki values):
///
/// * **DPZ** is scored with the paper's sampling predictor — stage-1 DCT on
///   the sample, then Algorithm 2's `CR_p` — taking the *pessimistic* end
///   of the predicted range so DPZ only wins when it is confidently ahead.
/// * **SZ** and **ZFP** are scored by actually micro-compressing the sample
///   (they are cheap enough that measuring beats modelling).
///
/// The winner by predicted/measured ratio encodes the full input; when DPZ
/// wins, the scheme is DPZ-l if the pessimistic prediction clears 4x,
/// DPZ-s otherwise. Every selection increments the
/// `dpz_codec_selected_total{codec}` counter, and the returned
/// [`CodecStats::codec`] names the backend that actually ran.
pub struct AutoCodec {
    /// SZ candidate (also the fallback for tiny inputs).
    pub sz: SzCodec,
    /// ZFP candidate.
    pub zfp: ZfpCodec,
    /// Sampling strategy driving the DPZ prediction.
    pub strategy: SamplingStrategy,
}

impl AutoCodec {
    /// Selector over the default-configured backends.
    pub fn new() -> Self {
        AutoCodec {
            sz: SzCodec::default(),
            zfp: ZfpCodec::default(),
            strategy: SamplingStrategy::default(),
        }
    }

    /// Which backend would compress `src`, without compressing it.
    ///
    /// Returns the codec name (`"dpz"`, `"sz"`, or `"zfp"`) and, for DPZ,
    /// the pessimistic predicted ratio that drove the choice.
    pub fn select(&self, src: &[f32], dims: &[usize]) -> Result<Selection, DpzError> {
        check_dims(src, dims)?;
        let baseline_ok = (1..=3).contains(&dims.len()) && dims.iter().all(|&d| d > 0);
        if src.len() < TINY_INPUT {
            // DPZ's sampling probe needs a real block matrix; SZ degrades
            // most gracefully at this scale. Fall back to DPZ only when the
            // geometry rules the baselines out entirely.
            return Ok(if baseline_ok {
                Selection::Sz
            } else {
                Selection::Dpz {
                    cr_predicted: 0.0,
                    loose: false,
                }
            });
        }

        let _probe_span = dpz_telemetry::span!("auto.select");
        let sample = &src[..src.len().min(PROBE_CAP)];
        let dpz_cr = {
            let _s = dpz_telemetry::span!("auto.predict_dpz");
            self.predict_dpz(sample).unwrap_or(0.0)
        };

        let (sz_cr, zfp_cr) = if baseline_ok {
            let sz_cr = {
                let _s = dpz_telemetry::span!("auto.probe_sz");
                probe_ratio(&self.sz, sample)
            };
            let zfp_cr = {
                let _s = dpz_telemetry::span!("auto.probe_zfp");
                probe_ratio(&self.zfp, sample)
            };
            (sz_cr, zfp_cr)
        } else {
            (0.0, 0.0)
        };

        let best = [dpz_cr, sz_cr, zfp_cr]
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        Ok(if dpz_cr >= best {
            Selection::Dpz {
                cr_predicted: dpz_cr,
                loose: dpz_cr >= LOOSE_CR_THRESHOLD,
            }
        } else if sz_cr >= zfp_cr {
            Selection::Sz
        } else {
            Selection::Zfp
        })
    }

    /// Quality predictions for every eligible backend at `target`, in
    /// registry order. Backends whose probe fails (bad geometry, target
    /// out of range) are simply absent — the caller picks among the rest.
    pub fn probe_all(
        &self,
        src: &[f32],
        dims: &[usize],
        target: &QualityTarget,
    ) -> Result<Vec<CodecProbe>, DpzError> {
        check_dims(src, dims)?;
        target.validate()?;
        let baseline_ok = (1..=3).contains(&dims.len()) && dims.iter().all(|&d| d > 0);
        let mut probes = Vec::new();
        if src.len() >= TINY_INPUT {
            if let Ok(p) = DpzCodec::default().probe(src, dims, target) {
                probes.push(p);
            }
        }
        if baseline_ok {
            if let Ok(p) = self.sz.probe(src, dims, target) {
                probes.push(p);
            }
            if let Ok(p) = self.zfp.probe(src, dims, target) {
                probes.push(p);
            }
        }
        if probes.is_empty() {
            return Err(DpzError::BadInput(
                "no backend can probe this input/target combination",
            ));
        }
        Ok(probes)
    }

    /// Rate-distortion-optimal choice among `probes` for `target` (Tao et
    /// al.'s online selection, generalized): at a fixed ratio take the best
    /// predicted quality among backends predicted to reach the ratio; at a
    /// fixed quality take the best predicted ratio among backends predicted
    /// to reach the quality; for plain bounds take the best predicted
    /// ratio. When no backend is predicted to reach the target, the least
    /// bad one is returned — the real compression then lands or fails
    /// typed.
    pub fn select_probe(probes: &[CodecProbe], target: &QualityTarget) -> Option<CodecProbe> {
        let max_by = |probes: &[CodecProbe], key: fn(&CodecProbe) -> f64| {
            probes
                .iter()
                .copied()
                .max_by(|a, b| key(a).total_cmp(&key(b)))
        };
        match *target {
            QualityTarget::Ratio { target: t, tol } => {
                let eligible: Vec<CodecProbe> = probes
                    .iter()
                    .copied()
                    .filter(|p| p.predicted_cr >= t * (1.0 - tol))
                    .collect();
                if eligible.is_empty() {
                    max_by(probes, |p| p.predicted_cr)
                } else {
                    max_by(&eligible, |p| p.predicted_psnr)
                }
            }
            QualityTarget::Psnr(db) => {
                let eligible: Vec<CodecProbe> = probes
                    .iter()
                    .copied()
                    .filter(|p| p.predicted_psnr >= db - dpz_core::PSNR_SLACK_DB)
                    .collect();
                if eligible.is_empty() {
                    max_by(probes, |p| p.predicted_psnr)
                } else {
                    max_by(&eligible, |p| p.predicted_cr)
                }
            }
            _ => max_by(probes, |p| p.predicted_cr),
        }
    }

    /// Pessimistic end of the paper's predicted CR range for the sample.
    fn predict_dpz(&self, sample: &[f32]) -> Option<f64> {
        let shape = choose_shape(sample.len());
        let mut blocks = to_blocks(sample, shape);
        let (lo, hi) = sample
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(f64::from(v)), hi.max(f64::from(v)))
            });
        let range = if hi - lo > 0.0 { hi - lo } else { 1.0 };
        for v in blocks.as_mut_slice() {
            *v = (*v - lo) / range - 0.5;
        }
        let coeffs = dct_blocks(&blocks);
        let est = self.strategy.estimate(&coeffs).ok()?;
        Some(est.cr_predicted.0)
    }
}

impl Default for AutoCodec {
    fn default() -> Self {
        AutoCodec::new()
    }
}

/// The outcome of [`AutoCodec::select`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selection {
    /// DPZ pipeline, with the pessimistic predicted ratio and scheme choice.
    Dpz {
        /// Pessimistic end of the Algorithm 2 `CR_p` range on the sample.
        cr_predicted: f64,
        /// `true` → DPZ-l (1-byte indices); `false` → DPZ-s.
        loose: bool,
    },
    /// SZ baseline.
    Sz,
    /// ZFP baseline.
    Zfp,
}

impl Selection {
    /// Name of the selected backend.
    pub fn codec_name(self) -> &'static str {
        match self {
            Selection::Dpz { .. } => "dpz",
            Selection::Sz => "sz",
            Selection::Zfp => "zfp",
        }
    }
}

/// Measured compression ratio of a codec over a 1-D view of the sample
/// (0.0 when the probe fails — the candidate then never wins).
fn probe_ratio(codec: &dyn Codec, sample: &[f32]) -> f64 {
    let mut sink = Vec::new();
    match codec.compress_into(sample, &[sample.len()], &mut sink) {
        Ok(stats) => stats.ratio(),
        Err(_) => 0.0,
    }
}

impl Codec for AutoCodec {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn compress_into(
        &self,
        src: &[f32],
        dims: &[usize],
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        let selection = self.select(src, dims)?;
        dpz_telemetry::global()
            .counter_with(
                "dpz_codec_selected_total",
                &[("codec", selection.codec_name())],
            )
            .inc();
        // Tag the journal with the backend that won, so a trace file is
        // self-describing about which codec produced its pipeline spans.
        if dpz_telemetry::trace::journal_enabled() {
            dpz_telemetry::trace::instant(&format!("codec_selected.{}", selection.codec_name()));
        }
        match selection {
            Selection::Dpz { loose, .. } => {
                let cfg = if loose {
                    DpzConfig::loose()
                } else {
                    DpzConfig::strict()
                };
                DpzCodec::new(cfg).compress_into(src, dims, dst)
            }
            Selection::Sz => self.sz.compress_into(src, dims, dst),
            Selection::Zfp => self.zfp.compress_into(src, dims, dst),
        }
    }

    fn compress_with_target(
        &self,
        src: &[f32],
        dims: &[usize],
        target: &QualityTarget,
        dst: &mut dyn Write,
    ) -> Result<CodecStats, DpzError> {
        let probes = self.probe_all(src, dims, target)?;
        let winner =
            AutoCodec::select_probe(&probes, target).expect("probe_all guarantees non-empty");
        dpz_telemetry::global()
            .counter_with("dpz_codec_selected_total", &[("codec", winner.codec)])
            .inc();
        if dpz_telemetry::trace::journal_enabled() {
            dpz_telemetry::trace::instant(&format!("codec_selected.{}", winner.codec));
        }
        match winner.codec {
            "sz" => self.sz.compress_with_target(src, dims, target, dst),
            "zfp" => self.zfp.compress_with_target(src, dims, target, dst),
            _ => DpzCodec::default().compress_with_target(src, dims, target, dst),
        }
    }

    fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError> {
        let bytes = read_all(src)?;
        crate::Registry::builtin().decompress(&bytes)
    }

    fn probe(
        &self,
        src: &[f32],
        dims: &[usize],
        target: &QualityTarget,
    ) -> Result<CodecProbe, DpzError> {
        let probes = self.probe_all(src, dims, target)?;
        Ok(AutoCodec::select_probe(&probes, target).expect("probe_all guarantees non-empty"))
    }

    fn sniff(&self, header: &[u8]) -> Option<Format> {
        Format::ALL
            .into_iter()
            .find(|f| header.len() >= 4 && &header[..4] == f.magic())
    }
}
