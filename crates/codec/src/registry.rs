//! Format sniffing and codec dispatch.

use crate::wrappers::{DpzChunkedCodec, DpzCodec, SzCodec, ZfpCodec};
use crate::{Codec, Decoded, DpzError, Seekable};
use std::io::Read;

/// The container formats the workspace understands, keyed by their 4-byte
/// magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Single-stream DPZ container (`DPZ1`).
    Dpz,
    /// Chunked DPZ container (`DPZC`).
    DpzChunked,
    /// SZ-style baseline container (`SZR1`).
    Sz,
    /// ZFP-style baseline container (`ZFR1`).
    Zfp,
}

impl Format {
    /// All formats, in registry order.
    pub const ALL: [Format; 4] = [Format::Dpz, Format::DpzChunked, Format::Sz, Format::Zfp];

    /// The format's 4-byte magic.
    pub fn magic(self) -> &'static [u8; 4] {
        match self {
            Format::Dpz => b"DPZ1",
            Format::DpzChunked => b"DPZC",
            Format::Sz => b"SZR1",
            Format::Zfp => b"ZFR1",
        }
    }

    /// Human-readable name matching the owning codec's [`Codec::name`].
    pub fn name(self) -> &'static str {
        match self {
            Format::Dpz => "dpz",
            Format::DpzChunked => "dpzc",
            Format::Sz => "sz",
            Format::Zfp => "zfp",
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered set of codecs with magic-based dispatch.
///
/// Decompression never needs the caller to know the format: the registry
/// probes the first bytes and routes to the owning codec. New codecs (or
/// test doubles) can be [`Registry::register`]ed at runtime.
pub struct Registry {
    codecs: Vec<Box<dyn Codec>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry { codecs: Vec::new() }
    }

    /// The built-in codec set: DPZ (default config), DPZ chunked, SZ, and
    /// ZFP — every format this workspace can emit.
    pub fn builtin() -> Self {
        let mut r = Registry::new();
        r.register(Box::new(DpzCodec::default()));
        r.register(Box::new(DpzChunkedCodec::default()));
        r.register(Box::new(SzCodec::default()));
        r.register(Box::new(ZfpCodec::default()));
        r
    }

    /// Add a codec. Sniffing asks codecs in registration order.
    pub fn register(&mut self, codec: Box<dyn Codec>) {
        self.codecs.push(codec);
    }

    /// The registered codecs, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Codec> {
        self.codecs.iter().map(|c| c.as_ref())
    }

    /// Look a codec up by [`Codec::name`].
    pub fn get(&self, name: &str) -> Option<&dyn Codec> {
        self.codecs
            .iter()
            .find(|c| c.name() == name)
            .map(|c| c.as_ref())
    }

    /// Identify the codec owning a stream that begins with `header`.
    pub fn sniff(&self, header: &[u8]) -> Option<(&dyn Codec, Format)> {
        self.codecs
            .iter()
            .find_map(|c| c.sniff(header).map(|f| (c.as_ref(), f)))
    }

    /// Sniff and decompress a complete in-memory stream.
    pub fn decompress(&self, bytes: &[u8]) -> Result<Decoded, DpzError> {
        let (codec, _) = self
            .sniff(bytes)
            .ok_or(DpzError::Corrupt("unknown container magic"))?;
        codec.decompress_from(&mut &bytes[..])
    }

    /// Sniff and decompress from a reader.
    pub fn decompress_from(&self, src: &mut dyn Read) -> Result<Decoded, DpzError> {
        let bytes = crate::read_all(src)?;
        self.decompress(&bytes)
    }

    /// The random-access view of the codec owning a stream that begins with
    /// `header`, when that codec has one. `None` means either no codec
    /// claims the magic or the owning codec is not seekable; a `Some`
    /// answer can still fail per-stream (legacy containers without an
    /// index footer).
    pub fn seekable_for(&self, header: &[u8]) -> Option<&dyn Seekable> {
        self.sniff(header)
            .and_then(|(codec, _)| codec.as_seekable())
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::builtin()
    }
}
