//! Microbenchmark: the stage-3 uniform symmetric quantizer, both index
//! widths, with realistic score distributions (dense near zero, sparse
//! heavy tail → a few outliers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpz_core::quantize::{dequantize_scores, quantize_scores};
use dpz_core::Scheme;
use std::hint::black_box;

fn scores(n: usize) -> Vec<f64> {
    let mut s = 5u64;
    (0..n)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let u = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            if i % 997 == 0 {
                u * 100.0 // occasional out-of-range score
            } else {
                u * 0.1
            }
        })
        .collect()
}

fn bench_quantizer(c: &mut Criterion) {
    let n = 1 << 20;
    let data = scores(n);

    let mut group = c.benchmark_group("quantize");
    group.throughput(Throughput::Elements(n as u64));
    for scheme in [Scheme::Loose, Scheme::Strict] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scheme:?}")),
            &data,
            |b, d| b.iter(|| quantize_scores(black_box(d), scheme)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("dequantize");
    group.throughput(Throughput::Elements(n as u64));
    for scheme in [Scheme::Loose, Scheme::Strict] {
        let q = quantize_scores(&data, scheme);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scheme:?}")),
            &q,
            |b, q| b.iter(|| dequantize_scores(black_box(q))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quantizer);
criterion_main!(benches);
