//! Random-access retrieval bench: the latency case for the v4 seekable
//! container. Full decode pays for every chunk; `decompress_chunk` /
//! `decompress_region` locate and CRC-verify only the touched chunks via
//! the index footer, and budgeted progressive decode trades fidelity for
//! bytes read. Throughput is measured against the *retrieved* output size,
//! so the groups are comparable per value delivered.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpz_core::{DpzConfig, TveLevel};
use dpz_data::{Dataset, DatasetKind, Scale};
use std::hint::black_box;

fn bench_seek(c: &mut Criterion) {
    let ds = Dataset::generate(DatasetKind::Cldhgh, Scale::Small, 2021);
    let cfg = DpzConfig::loose().with_tve(TveLevel::FiveNines);
    let chunks = 8;
    let bytes = dpz_core::compress_chunked(&ds.data, &ds.dims, &cfg, chunks)
        .unwrap()
        .bytes;
    let rows = ds.dims[0];
    let cols: usize = ds.dims[1..].iter().product();
    // A band one chunk-row tall near the middle, half the columns wide.
    let region = vec![rows / 2..rows / 2 + rows / chunks, cols / 4..3 * cols / 4];
    let region_values: usize = region.iter().map(|r| r.len()).product();

    let mut group = c.benchmark_group("seek_cldhgh_small");
    group.sample_size(10);

    group.throughput(Throughput::Bytes(ds.nbytes() as u64));
    group.bench_function("full_decode", |b| {
        b.iter(|| dpz_core::decompress_chunked(black_box(&bytes)).unwrap());
    });

    group.throughput(Throughput::Bytes((ds.len() / chunks * 4) as u64));
    group.bench_function("single_chunk", |b| {
        b.iter(|| dpz_core::decompress_chunk(black_box(&bytes), chunks / 2).unwrap());
    });

    group.throughput(Throughput::Bytes((region_values * 4) as u64));
    group.bench_function("region_one_band", |b| {
        b.iter(|| dpz_core::decompress_region(black_box(&bytes), black_box(&region)).unwrap());
    });
    group.finish();

    // Progressive: full-budget vs half-budget reconstruction of the whole
    // extent. The same output size is produced either way; the half-budget
    // run reads fewer component spans.
    let prog = dpz_core::compress_progressive(&ds.data, &ds.dims, &cfg, chunks)
        .unwrap()
        .bytes;
    let mut group = c.benchmark_group("progressive_cldhgh_small");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(ds.nbytes() as u64));
    group.bench_function("budget_full", |b| {
        b.iter(|| dpz_core::decompress_progressive(black_box(&prog), prog.len()).unwrap());
    });
    group.bench_function("budget_half", |b| {
        b.iter(|| dpz_core::decompress_progressive(black_box(&prog), prog.len() / 2).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_seek);
criterion_main!(benches);
