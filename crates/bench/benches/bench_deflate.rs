//! Microbenchmark: the from-scratch DEFLATE/zlib lossless stage on the
//! kinds of payloads DPZ feeds it (quantizer index planes, f32 model
//! sections, incompressible noise).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpz_deflate::{compress_parallel, compress_with_level, decompress, CompressionLevel};
use std::hint::black_box;

fn index_plane(n: usize) -> Vec<u8> {
    // Quantizer indices: concentrated around a center code with runs.
    let mut s = 99u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let g = ((s >> 40) as u8 as i32 - 128) / 24;
            (128 + g) as u8
        })
        .collect()
}

fn noise(n: usize) -> Vec<u8> {
    let mut s = 7u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 17) as u8
        })
        .collect()
}

fn bench_deflate(c: &mut Criterion) {
    let n = 256 * 1024;
    let payloads = [("indices", index_plane(n)), ("noise", noise(n))];

    let mut group = c.benchmark_group("deflate_compress");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(n as u64));
    for (name, data) in &payloads {
        for level in [
            CompressionLevel::Fast,
            CompressionLevel::Default,
            CompressionLevel::Best,
        ] {
            group.bench_with_input(
                BenchmarkId::new(*name, format!("{level:?}")),
                data,
                |b, d| b.iter(|| compress_with_level(black_box(d), level)),
            );
        }
    }
    group.finish();

    // Multi-member zlib: one independently-deflated member per worker strip
    // (single-stream output below the 64 KiB split threshold or on one
    // worker), so this group shows the pool-scaling headroom of stage 3.
    let big = 1024 * 1024;
    let big_indices = index_plane(big);
    let mut group = c.benchmark_group("zlib_parallel_compress_1mib");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(big as u64));
    group.bench_function("single_stream", |b| {
        b.iter(|| compress_with_level(black_box(&big_indices), CompressionLevel::Default));
    });
    group.bench_function("multi_member", |b| {
        b.iter(|| compress_parallel(black_box(&big_indices), CompressionLevel::Default));
    });
    group.finish();

    let mut group = c.benchmark_group("deflate_decompress");
    group.throughput(Throughput::Bytes(n as u64));
    for (name, data) in &payloads {
        let packed = compress_with_level(data, CompressionLevel::Default);
        group.bench_with_input(BenchmarkId::from_parameter(name), &packed, |b, p| {
            b.iter(|| decompress(black_box(p)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_deflate);
criterion_main!(benches);
