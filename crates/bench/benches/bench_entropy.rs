//! Microbenchmark: the entropy stage primitives behind the lossless
//! backends — Huffman decode (bit-by-bit tree walk vs the multi-symbol
//! LUT), the tANS coder, and the LZ77 match-length kernel (portable scalar
//! vs the runtime-dispatched SIMD arm).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpz_deflate::bitio::{BitReader, BitWriter};
use dpz_deflate::huffman::{build_code_lengths, Decoder, Encoder, LutDecoder};
use dpz_deflate::tans;
use std::hint::black_box;

/// Quantizer-index-like bytes: concentrated histogram, the payload shape
/// both entropy coders see in practice.
fn index_plane(n: usize) -> Vec<u8> {
    let mut s = 99u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let g = ((s >> 40) as u8 as i32 - 128) / 24;
            (128 + g) as u8
        })
        .collect()
}

/// A literal-only Huffman stream over `data`'s byte alphabet, plus the code
/// lengths needed to rebuild either decoder.
fn huffman_stream(data: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut freqs = [0u64; 256];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let lengths = build_code_lengths(&freqs, 15);
    let enc = Encoder::from_lengths(&lengths);
    let mut w = BitWriter::new();
    for &b in data {
        enc.write(&mut w, b as usize);
    }
    (w.finish(), lengths)
}

fn bench_huffman_decode(c: &mut Criterion) {
    let n = 256 * 1024;
    let data = index_plane(n);
    let (bits, lengths) = huffman_stream(&data);

    let mut group = c.benchmark_group("huffman_decode");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(n as u64));
    group.bench_function("single_symbol", |b| {
        let dec = Decoder::from_lengths(&lengths).unwrap();
        b.iter(|| {
            let mut r = BitReader::new(black_box(&bits));
            let mut sum = 0u64;
            for _ in 0..n {
                sum += u64::from(dec.read(&mut r).unwrap());
            }
            sum
        });
    });
    group.bench_function("multi_symbol_lut", |b| {
        let lut = LutDecoder::from_lengths(&lengths, true).unwrap();
        b.iter(|| {
            let mut r = BitReader::new(black_box(&bits));
            let mut sum = 0u64;
            let mut decoded = 0usize;
            while decoded < n {
                let e = lut.read_entry(&mut r).unwrap();
                sum += u64::from(e.symbol());
                decoded += 1;
                if decoded < n {
                    if let Some(second) = e.second_literal() {
                        sum += u64::from(second);
                        decoded += 1;
                    }
                }
            }
            sum
        });
    });
    group.finish();
}

fn bench_tans(c: &mut Criterion) {
    let n = 256 * 1024;
    let data = index_plane(n);
    let packed = tans::compress(&data);

    let mut group = c.benchmark_group("tans");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(n as u64));
    group.bench_function("encode", |b| {
        b.iter(|| tans::compress(black_box(&data)));
    });
    group.bench_function("decode", |b| {
        b.iter(|| tans::decompress_bounded(black_box(&packed), n).unwrap());
    });
    group.finish();
}

fn bench_match_len(c: &mut Criterion) {
    // Buffer pairs that diverge after a spread of prefix lengths, visited
    // round-robin so the branch predictor can't memorize one exit point.
    let limit = 258usize;
    let base: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    let cases: Vec<(Vec<u8>, Vec<u8>)> = [3usize, 9, 31, 64, 130, 258]
        .iter()
        .map(|&k| {
            let mut b = base.clone();
            b[k] ^= 0x5A;
            (base.clone(), b)
        })
        .collect();
    let total: usize = [3usize, 9, 31, 64, 130, 258].iter().sum();

    let mut group = c.benchmark_group("lz77_match_len");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total as u64));
    for (name, f) in [
        (
            "scalar",
            dpz_kernels::matchlen::match_len_scalar as fn(&[u8], &[u8], usize) -> usize,
        ),
        (
            "simd_dispatch",
            dpz_kernels::matchlen::match_len as fn(&[u8], &[u8], usize) -> usize,
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cases, |b, cases| {
            b.iter(|| {
                let mut sum = 0usize;
                for (x, y) in cases {
                    sum += f(black_box(x), black_box(y), limit);
                }
                sum
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_huffman_decode, bench_tans, bench_match_len);
criterion_main!(benches);
