//! End-to-end comparison bench: DPZ (both schemes, plus the sampling fast
//! path) vs the SZ and ZFP baselines on a CESM-like field — the
//! wall-clock counterpart to Figure 8.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpz_core::{DpzConfig, TveLevel};
use dpz_data::metrics::value_range;
use dpz_data::{Dataset, DatasetKind, Scale};
use dpz_sz::SzConfig;
use dpz_zfp::ZfpMode;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let ds = Dataset::generate(DatasetKind::Cldhgh, Scale::Small, 2021);
    let nbytes = ds.nbytes() as u64;

    let mut group = c.benchmark_group("compress_cldhgh_small");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(nbytes));
    group.bench_function("dpz_loose", |b| {
        let cfg = DpzConfig::loose().with_tve(TveLevel::FiveNines);
        b.iter(|| dpz_core::compress(black_box(&ds.data), &ds.dims, &cfg).unwrap());
    });
    group.bench_function("dpz_strict", |b| {
        let cfg = DpzConfig::strict().with_tve(TveLevel::FiveNines);
        b.iter(|| dpz_core::compress(black_box(&ds.data), &ds.dims, &cfg).unwrap());
    });
    group.bench_function("dpz_loose_sampling", |b| {
        let cfg = DpzConfig::loose()
            .with_tve(TveLevel::FiveNines)
            .with_sampling(true);
        b.iter(|| dpz_core::compress(black_box(&ds.data), &ds.dims, &cfg).unwrap());
    });
    group.bench_function("sz_rel1e-4", |b| {
        let eb = 1e-4 * value_range(&ds.data);
        let cfg = SzConfig::with_error_bound(eb);
        b.iter(|| dpz_sz::compress(black_box(&ds.data), &ds.dims, &cfg));
    });
    group.bench_function("zfp_prec16", |b| {
        b.iter(|| dpz_zfp::compress(black_box(&ds.data), &ds.dims, ZfpMode::FixedPrecision(16)));
    });
    group.finish();

    let mut group = c.benchmark_group("decompress_cldhgh_small");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(nbytes));
    let dpz_bytes = dpz_core::compress(
        &ds.data,
        &ds.dims,
        &DpzConfig::strict().with_tve(TveLevel::FiveNines),
    )
    .unwrap()
    .bytes;
    group.bench_function("dpz_strict", |b| {
        b.iter(|| dpz_core::decompress(black_box(&dpz_bytes)).unwrap());
    });
    let sz_bytes = dpz_sz::compress(
        &ds.data,
        &ds.dims,
        &SzConfig::with_error_bound(1e-4 * value_range(&ds.data)),
    );
    group.bench_function("sz", |b| {
        b.iter(|| dpz_sz::decompress(black_box(&sz_bytes)).unwrap());
    });
    let zfp_bytes = dpz_zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedPrecision(16));
    group.bench_function("zfp", |b| {
        b.iter(|| dpz_zfp::decompress(black_box(&zfp_bytes)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
