//! Microbenchmark: the stage-1 DCT engine — planned power-of-two vs
//! Bluestein (arbitrary-length) transforms, forward and inverse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpz_linalg::Dct1d;
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.037).sin() + 0.01 * i as f64)
        .collect()
}

fn bench_dct(c: &mut Criterion) {
    let mut group = c.benchmark_group("dct_forward");
    for &n in &[512usize, 2048, 900, 3600] {
        group.throughput(Throughput::Elements(n as u64));
        let plan = Dct1d::new(n);
        let data = signal(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(black_box(&mut buf));
                buf
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dct_inverse");
    for &n in &[2048usize, 3600] {
        group.throughput(Throughput::Elements(n as u64));
        let plan = Dct1d::new(n);
        let mut data = signal(n);
        plan.forward(&mut data);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.inverse(black_box(&mut buf));
                buf
            });
        });
    }
    group.finish();

    // Plan reuse vs per-call planning: the reason Dct1d exists.
    let mut group = c.benchmark_group("dct_planning");
    let data = signal(1024);
    group.bench_function("plan_once_apply", |b| {
        let plan = Dct1d::new(1024);
        b.iter(|| {
            let mut buf = data.clone();
            plan.forward(&mut buf);
            buf
        });
    });
    group.bench_function("plan_every_call", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            dpz_linalg::dct2_inplace(&mut buf);
            buf
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dct);
criterion_main!(benches);
