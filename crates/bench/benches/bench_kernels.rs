//! Microbenchmarks for the runtime-dispatched SIMD kernel layer: each group
//! pits the portable scalar arm against whatever `dpz_kernels::backend()`
//! dispatched on this host (AVX2+FMA, NEON, or scalar again), so the report
//! directly shows the per-kernel speedup. On a scalar-only host the two
//! series coincide — that is the expected result, not a regression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpz_kernels::gemm::{gemm_strip, gemm_strip_scalar, PackedB};
use dpz_kernels::{checksum, quant};
use std::hint::black_box;

fn xorshift_f64(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// 256×1024 · 1024×256 through the packed-panel GEMM microkernel.
fn bench_matmul(c: &mut Criterion) {
    let (m, k, n) = (256usize, 1024usize, 256usize);
    let a = xorshift_f64(m * k, 0xA5A5);
    let b = xorshift_f64(k * n, 0x5A5A);
    let packed = PackedB::new(&b, k, n);
    let mut out = vec![0.0f64; m * n];

    let mut group = c.benchmark_group("kernels/matmul_256x1024");
    // 2·m·k·n flops per multiply; report element throughput of C.
    group.throughput(Throughput::Elements((m * n) as u64));
    group.bench_function(BenchmarkId::from_parameter("scalar"), |bench| {
        bench.iter(|| {
            out.fill(0.0);
            gemm_strip_scalar(black_box(&mut out), black_box(&a), m, &packed);
        })
    });
    group.bench_function(
        BenchmarkId::from_parameter(dpz_kernels::backend_name()),
        |bench| {
            bench.iter(|| {
                out.fill(0.0);
                gemm_strip(black_box(&mut out), black_box(&a), m, &packed);
            })
        },
    );
    group.finish();
}

/// Fused quantize/dequantize over 1 MiB of f64 scores (128 Ki elements).
fn bench_quantize(c: &mut Criterion) {
    let n = (1 << 20) / std::mem::size_of::<f64>();
    let scores = xorshift_f64(n, 0xBEEF);
    let p = 0.5 / 255.0;
    let half_range = p * 255.0;
    let mut codes = vec![0u16; n];
    let mut out = vec![0.0f64; n];

    let mut group = c.benchmark_group("kernels/quantize_1mib");
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.bench_function(BenchmarkId::from_parameter("scalar"), |bench| {
        bench.iter(|| {
            quant::quantize_scalar(black_box(&scores), half_range, p, 255, 255, &mut codes)
        })
    });
    group.bench_function(
        BenchmarkId::from_parameter(dpz_kernels::backend_name()),
        |bench| {
            bench.iter(|| {
                quant::quantize_codes(black_box(&scores), half_range, p, 255, 255, &mut codes)
            })
        },
    );
    group.finish();

    quant::quantize_codes(&scores, half_range, p, 255, 255, &mut codes);
    let mut group = c.benchmark_group("kernels/dequantize_1mib");
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.bench_function(BenchmarkId::from_parameter("scalar"), |bench| {
        bench.iter(|| quant::dequantize_scalar(black_box(&codes), half_range, p, &mut out))
    });
    group.bench_function(
        BenchmarkId::from_parameter(dpz_kernels::backend_name()),
        |bench| bench.iter(|| quant::dequantize_codes(black_box(&codes), half_range, p, &mut out)),
    );
    group.finish();
}

/// CRC-32 over a 16 MiB buffer: slice-by-8 tables vs the PCLMUL fold.
fn bench_crc32(c: &mut Criterion) {
    let n = 16 << 20;
    let mut s = 0x0123_4567_89AB_CDEFu64;
    let data: Vec<u8> = (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 32) as u8
        })
        .collect();

    let mut group = c.benchmark_group("kernels/crc32_16mib");
    group.throughput(Throughput::Bytes(n as u64));
    group.bench_function(BenchmarkId::from_parameter("scalar"), |bench| {
        bench.iter(|| checksum::crc32_update_scalar(0xFFFF_FFFF, black_box(&data)))
    });
    group.bench_function(
        BenchmarkId::from_parameter(dpz_kernels::backend_name()),
        |bench| bench.iter(|| checksum::crc32_update(0xFFFF_FFFF, black_box(&data))),
    );
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_quantize, bench_crc32);
criterion_main!(benches);
