//! Microbenchmark: the stage-2 eigensolvers — the full Householder+QL path,
//! the truncated subspace iteration (`O(M²k)` on an explicit Gram), and the
//! randomized range-finder (`O(n·M·s)` on the data matrix, no Gram at all)
//! — over an `m x k` grid, plus the cross-chunk warm-start variant on
//! consecutive-chunk data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpz_linalg::{sym_eigen, sym_eigen_topk, Matrix, Pca, PcaOptions, RangeFinderOptions};
use std::hint::black_box;

/// Data matrix (`2m x m`) with strong low-rank structure + noise, like
/// DCT-domain blocks. `phase` shifts the smooth modes slightly, producing
/// the "consecutive chunk" variants for the warm-start benchmark.
fn data_matrix(m: usize, phase: f64) -> Matrix {
    let mut x = Matrix::zeros(2 * m, m);
    let mut s = 0xDEADBEEFu64;
    for r in 0..2 * m {
        for c in 0..m {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let smooth = ((r as f64 * 0.01 + phase).sin() * (c as f64 * 0.05).cos()) * 10.0;
            x.set(r, c, smooth + 0.01 * noise);
        }
    }
    x
}

const GRID_M: [usize; 3] = [64, 256, 1024];
const GRID_K: [usize; 3] = [4, 16, 64];

fn bench_eigen(c: &mut Criterion) {
    // Full decomposition: depends on m only. The 1024 point is the
    // O(M³) wall the truncated/randomized paths exist to avoid — keep it,
    // but with the minimum sample count so the grid stays runnable.
    let mut group = c.benchmark_group("eigen_full");
    group.sample_size(10);
    for &m in &GRID_M {
        let cov = data_matrix(m, 0.0).gram();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| sym_eigen(black_box(&cov)).unwrap());
        });
    }
    group.finish();

    // Truncated subspace iteration on an explicit Gram.
    let mut group = c.benchmark_group("eigen_topk");
    group.sample_size(10);
    for &m in &GRID_M {
        let cov = data_matrix(m, 0.0).gram();
        for &k in &GRID_K {
            if k >= m {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("m{m}"), k),
                &(m, k),
                |b, &(_, k)| {
                    b.iter(|| sym_eigen_topk(black_box(&cov), k, 100).unwrap());
                },
            );
        }
    }
    group.finish();

    // Randomized range-finder straight on the data matrix (via the public
    // PCA entry point, so the numbers include centering — what the
    // pipeline actually pays).
    let mut group = c.benchmark_group("eigen_randomized");
    group.sample_size(10);
    let rf = RangeFinderOptions::default();
    for &m in &GRID_M {
        let x = data_matrix(m, 0.0);
        for &k in &GRID_K {
            if k >= m {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("m{m}"), k),
                &(m, k),
                |b, &(_, k)| {
                    b.iter(|| {
                        Pca::fit_randomized(black_box(&x), PcaOptions::default(), k, &rf).unwrap()
                    });
                },
            );
        }
    }
    group.finish();

    // Warm start on consecutive-chunk data: fit chunk A cold once, then
    // repeatedly fit the statistically similar chunk B seeded with A's
    // converged basis. Compare against eigen_randomized at the same (m, k)
    // for the handoff's saving.
    let mut group = c.benchmark_group("eigen_randomized_warm");
    group.sample_size(10);
    for &m in &GRID_M {
        let a = data_matrix(m, 0.0);
        let b_chunk = data_matrix(m, 0.05);
        for &k in &GRID_K {
            if k >= m {
                continue;
            }
            let seed = Pca::fit_randomized_warm(&a, PcaOptions::default(), k, &rf, None, None)
                .unwrap()
                .basis;
            group.bench_with_input(
                BenchmarkId::new(format!("m{m}"), k),
                &(m, k),
                |bch, &(_, k)| {
                    bch.iter(|| {
                        Pca::fit_randomized_warm(
                            black_box(&b_chunk),
                            PcaOptions::default(),
                            k,
                            &rf,
                            Some(&seed),
                            None,
                        )
                        .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_eigen);
criterion_main!(benches);
