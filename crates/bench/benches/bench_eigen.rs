//! Microbenchmark: the stage-2 eigensolvers — the full Householder+QL path
//! vs the truncated subspace iteration that powers the sampling fast path
//! (the claimed `O(M³)` → `O(M²k)` reduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpz_linalg::{sym_eigen, sym_eigen_topk, Matrix};
use std::hint::black_box;

/// A covariance-like PSD matrix with rapidly decaying spectrum.
fn covariance(m: usize) -> Matrix {
    let mut x = Matrix::zeros(2 * m, m);
    let mut s = 0xDEADBEEFu64;
    for r in 0..2 * m {
        for c in 0..m {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            // Strong low-rank structure + noise, like DCT-domain blocks.
            let smooth = ((r as f64 * 0.01).sin() * (c as f64 * 0.05).cos()) * 10.0;
            x.set(r, c, smooth + 0.01 * noise);
        }
    }
    x.gram()
}

fn bench_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigen_full");
    group.sample_size(10);
    for &m in &[64usize, 128, 256] {
        let cov = covariance(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| sym_eigen(black_box(&cov)).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("eigen_topk8");
    group.sample_size(10);
    for &m in &[64usize, 128, 256] {
        let cov = covariance(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| sym_eigen_topk(black_box(&cov), 8, 100).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eigen);
criterion_main!(benches);
