//! One-call compression runners for the three evaluated compressors,
//! returning the metrics every figure/table needs.

use dpz_codec::{Codec, SzCodec, ZfpCodec};
use dpz_core::{compress, decompress, DpzConfig, DpzError};
use dpz_data::metrics::{value_range, QualityReport};
use dpz_data::Dataset;
use dpz_sz::SzConfig;
use dpz_telemetry::Snapshot;
use dpz_zfp::ZfpMode;
use std::time::{Duration, Instant};

/// Result of one compression run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Compressor label ("DPZ-l", "SZ", …).
    pub label: String,
    /// Parameter description ("tve=99.999%", "eb=1e-3", …).
    pub setting: String,
    /// Quality + rate metrics.
    pub report: QualityReport,
    /// Wall-clock compression time.
    pub compress_time: Duration,
    /// Wall-clock decompression time.
    pub decompress_time: Duration,
    /// The reconstruction (for visualization experiments).
    pub reconstructed: Vec<f32>,
    /// Global-registry delta captured around this run (counters, gauges,
    /// span/stage histograms). Only activity from this run when runs execute
    /// sequentially — concurrent runs share the process-wide registry.
    pub metrics: Snapshot,
}

impl RunResult {
    /// MB/s throughput for compression.
    pub fn compress_mbps(&self, nbytes: usize) -> f64 {
        nbytes as f64 / 1e6 / self.compress_time.as_secs_f64().max(1e-12)
    }

    /// MB/s throughput for decompression.
    pub fn decompress_mbps(&self, nbytes: usize) -> f64 {
        nbytes as f64 / 1e6 / self.decompress_time.as_secs_f64().max(1e-12)
    }
}

/// Run DPZ end to end. Returns the run result plus the compressor stats.
pub fn run_dpz(
    ds: &Dataset,
    cfg: &DpzConfig,
    label: &str,
    setting: &str,
) -> Result<(RunResult, dpz_core::pipeline::CompressionStats), dpz_core::DpzError> {
    let before = dpz_telemetry::global().snapshot();
    let t = Instant::now();
    let out = compress(&ds.data, &ds.dims, cfg)?;
    let compress_time = t.elapsed();
    let t = Instant::now();
    let (recon, _) = decompress(&out.bytes)?;
    let decompress_time = t.elapsed();
    let metrics = dpz_telemetry::global().snapshot().since(&before);
    let report = QualityReport::evaluate(&ds.data, &recon, out.bytes.len());
    Ok((
        RunResult {
            label: label.to_string(),
            setting: setting.to_string(),
            report,
            compress_time,
            decompress_time,
            reconstructed: recon,
            metrics,
        },
        out.stats,
    ))
}

/// Run any [`Codec`] end to end with the standard timing/metrics capture.
/// The baseline runners below are thin settings-wrappers over this.
pub fn run_codec(
    codec: &dyn Codec,
    ds: &Dataset,
    label: &str,
    setting: &str,
) -> Result<RunResult, DpzError> {
    let before = dpz_telemetry::global().snapshot();
    let t = Instant::now();
    let mut bytes = Vec::new();
    codec.compress_into(&ds.data, &ds.dims, &mut bytes)?;
    let compress_time = t.elapsed();
    let t = Instant::now();
    let decoded = codec.decompress_from(&mut &bytes[..])?;
    let decompress_time = t.elapsed();
    let metrics = dpz_telemetry::global().snapshot().since(&before);
    let report = QualityReport::evaluate(&ds.data, &decoded.values, bytes.len());
    Ok(RunResult {
        label: label.to_string(),
        setting: setting.to_string(),
        report,
        compress_time,
        decompress_time,
        reconstructed: decoded.values,
        metrics,
    })
}

/// Run the SZ baseline at an absolute error bound.
pub fn run_sz(ds: &Dataset, error_bound: f64) -> Result<RunResult, DpzError> {
    let cfg = SzConfig::with_error_bound(error_bound);
    run_codec(
        &SzCodec::new(cfg),
        ds,
        "SZ",
        &format!("eb={error_bound:.1e}"),
    )
}

/// Run SZ at a *range-relative* bound (`rel × value range`), the way the
/// paper sweeps its rate-distortion curves.
pub fn run_sz_relative(ds: &Dataset, rel: f64) -> Result<RunResult, DpzError> {
    let range = value_range(&ds.data).max(f64::MIN_POSITIVE);
    let mut r = run_sz(ds, rel * range)?;
    r.setting = format!("rel={rel:.0e}");
    Ok(r)
}

/// Run SZ with the hybrid (SZ 2.0) predictor at a range-relative bound.
pub fn run_sz_auto_relative(ds: &Dataset, rel: f64) -> Result<RunResult, DpzError> {
    let range = value_range(&ds.data).max(f64::MIN_POSITIVE);
    let cfg = SzConfig::with_error_bound(rel * range).with_predictor(dpz_sz::Predictor::Auto);
    run_codec(&SzCodec::new(cfg), ds, "SZ-auto", &format!("rel={rel:.0e}"))
}

/// Run the ZFP baseline.
pub fn run_zfp(ds: &Dataset, mode: ZfpMode) -> Result<RunResult, DpzError> {
    let setting = match mode {
        ZfpMode::FixedPrecision(p) => format!("prec={p}"),
        ZfpMode::FixedAccuracy(tol) => format!("tol={tol:.1e}"),
        ZfpMode::FixedRate(rate) => format!("rate={rate:.2}"),
    };
    run_codec(&ZfpCodec::new(mode), ds, "ZFP", &setting)
}

/// The relative error bounds swept for SZ in rate-distortion figures.
pub const SZ_REL_BOUNDS: [f64; 6] = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6];
/// The precisions swept for ZFP in rate-distortion figures.
pub const ZFP_PRECISIONS: [u32; 6] = [6, 10, 14, 18, 22, 26];

#[cfg(test)]
mod tests {
    use super::*;
    use dpz_core::TveLevel;
    use dpz_data::{DatasetKind, Scale};

    fn tiny(kind: DatasetKind) -> Dataset {
        Dataset::generate(kind, Scale::Tiny, 11)
    }

    #[test]
    fn dpz_runner_produces_consistent_report() {
        let ds = tiny(DatasetKind::Fldsc);
        let cfg = DpzConfig::loose().with_tve(TveLevel::FiveNines);
        let (run, stats) = run_dpz(&ds, &cfg, "DPZ-l", "tve=5").unwrap();
        assert_eq!(run.reconstructed.len(), ds.len());
        assert!(run.report.compression_ratio > 1.0);
        assert!((run.report.compression_ratio - stats.cr_total).abs() < 1e-9);
        assert!(run.report.psnr > 20.0);
    }

    #[test]
    fn sz_runner_respects_relative_bound() {
        let ds = tiny(DatasetKind::Cldhgh);
        let run = run_sz_relative(&ds, 1e-3).unwrap();
        let range = value_range(&ds.data);
        assert!(run.report.max_abs_error <= 1e-3 * range * 1.001);
    }

    #[test]
    fn zfp_runner_works_on_3d() {
        let ds = tiny(DatasetKind::Isotropic);
        let run = run_zfp(&ds, ZfpMode::FixedPrecision(20)).unwrap();
        assert!(run.report.psnr > 30.0, "psnr {}", run.report.psnr);
        assert!(run.report.compression_ratio > 1.0);
    }

    #[test]
    fn generic_codec_runner_accepts_any_backend() {
        let ds = tiny(DatasetKind::Fldsc);
        let run = run_codec(&dpz_codec::AutoCodec::new(), &ds, "AUTO", "default").unwrap();
        assert_eq!(run.reconstructed.len(), ds.len());
        assert!(run.report.compression_ratio > 1.0);
    }

    #[test]
    fn throughput_helpers_positive() {
        let ds = tiny(DatasetKind::HaccX);
        let run = run_sz(&ds, 1e-2).unwrap();
        assert!(run.compress_mbps(ds.nbytes()) > 0.0);
        assert!(run.decompress_mbps(ds.nbytes()) > 0.0);
    }

    #[test]
    fn runners_capture_registry_delta() {
        let ds = tiny(DatasetKind::Fldsc);
        let cfg = DpzConfig::loose().with_tve(TveLevel::FiveNines);
        let (run, _) = run_dpz(&ds, &cfg, "DPZ-l", "tve=5").unwrap();
        assert!(!run.metrics.is_empty());
        assert!(
            run.metrics
                .counter(
                    "dpz_bytes_in_total",
                    &[("codec", "dpz"), ("op", "compress")]
                )
                .unwrap_or(0)
                >= ds.nbytes() as u64
        );
        let pca = run
            .metrics
            .histogram("dpz_stage_seconds", &[("stage", "pca")])
            .expect("stage histogram in delta");
        assert!(pca.count >= 1);

        let sz = run_sz(&ds, 1e-3).unwrap();
        assert!(
            sz.metrics
                .counter("dpz_bytes_in_total", &[("codec", "sz"), ("op", "compress")])
                .unwrap_or(0)
                >= ds.nbytes() as u64
        );

        let zfp = run_zfp(&ds, ZfpMode::FixedPrecision(20)).unwrap();
        assert!(
            zfp.metrics
                .counter(
                    "dpz_bytes_in_total",
                    &[("codec", "zfp"), ("op", "compress")]
                )
                .unwrap_or(0)
                >= ds.nbytes() as u64
        );
    }
}
