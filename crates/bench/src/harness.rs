//! Shared experiment plumbing: argument parsing, CSV output, table printing
//! and simple summary statistics.

use dpz_data::dataset::DEFAULT_SEED;
use dpz_data::Scale;
use dpz_telemetry::Snapshot;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Common command-line arguments of every experiment binary.
#[derive(Debug, Clone)]
pub struct Args {
    /// Dataset scale.
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
    /// Directory for CSV output.
    pub out_dir: PathBuf,
}

impl Args {
    /// Parse from `std::env::args`, exiting with a message on bad input.
    pub fn parse() -> Args {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Args::parse_from(&argv).unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        })
    }

    /// Parse from a slice (testable).
    pub fn parse_from(argv: &[String]) -> Result<Args, String> {
        let mut args = Args {
            scale: Scale::Default,
            seed: DEFAULT_SEED,
            out_dir: PathBuf::from("results"),
        };
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    args.scale =
                        Scale::from_name(v).ok_or_else(|| format!("unknown scale '{v}'"))?;
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    args.seed = v.parse().map_err(|_| "--seed expects an integer")?;
                }
                "--out" => {
                    let v = it.next().ok_or("--out needs a value")?;
                    args.out_dir = PathBuf::from(v);
                }
                other => {
                    return Err(format!(
                        "unknown flag '{other}' (expected --scale/--seed/--out)"
                    ))
                }
            }
        }
        Ok(args)
    }
}

/// Write rows as CSV into `<out_dir>/<name>.csv`, creating the directory.
pub fn write_csv(
    out_dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{name}.csv"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()?;
    Ok(path)
}

/// Render rows as an aligned text table for stdout.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Five-number summary (min, q1, median, q3, max) for boxplot-style output.
pub fn five_number_summary(values: &[f64]) -> [f64; 5] {
    assert!(!values.is_empty(), "summary of empty data");
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = |p: f64| -> f64 {
        let pos = p * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let t = pos - lo as f64;
        v[lo] * (1.0 - t) + v[hi] * t
    };
    [v[0], q(0.25), q(0.5), q(0.75), v[v.len() - 1]]
}

/// Equal-width histogram over `[min, max]`; returns `(bin_centers, counts)`.
pub fn histogram(values: &[f32], bins: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(bins > 0 && !values.is_empty());
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(f64::from(v)), hi.max(f64::from(v)))
        });
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let idx = (((f64::from(v) - lo) / span) * bins as f64) as usize;
        counts[idx.min(bins - 1)] += 1;
    }
    let centers = (0..bins)
        .map(|b| lo + span * (b as f64 + 0.5) / bins as f64)
        .collect();
    (centers, counts)
}

/// The DPZ pipeline stages as labelled in the `dpz_stage_seconds` histogram,
/// in execution order.
pub const STAGES: [&str; 5] = ["decompose_dct", "sampling", "pca", "quantize", "lossless"];

/// Per-stage wall-clock seconds from a registry snapshot (or delta), indexed
/// like [`STAGES`]. Stages absent from the snapshot report 0.
pub fn stage_seconds(metrics: &Snapshot) -> [f64; 5] {
    let mut out = [0.0; 5];
    for (i, stage) in STAGES.iter().enumerate() {
        if let Some(h) = metrics.histogram("dpz_stage_seconds", &[("stage", stage)]) {
            out[i] = h.sum;
        }
    }
    out
}

/// Write a snapshot as a Prometheus exposition sidecar next to the CSVs:
/// `<out_dir>/<name>.prom`.
pub fn write_metrics_sidecar(
    out_dir: &Path,
    name: &str,
    metrics: &Snapshot,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{name}.prom"));
    std::fs::write(&path, dpz_telemetry::to_prometheus(metrics))?;
    Ok(path)
}

/// Write a drained event journal as a Chrome trace-event sidecar next to
/// the CSVs: `<out_dir>/<name>.trace.json` (open in Perfetto or
/// chrome://tracing).
pub fn write_trace_sidecar(
    out_dir: &Path,
    name: &str,
    trace: &dpz_telemetry::trace::Trace,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{name}.trace.json"));
    std::fs::write(&path, dpz_telemetry::trace::to_chrome_json(trace))?;
    Ok(path)
}

/// Format a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a != 0.0 && !(1e-2..1e5).contains(&a) {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_defaults_and_flags() {
        let a = Args::parse_from(&[]).unwrap();
        assert_eq!(a.scale, Scale::Default);
        assert_eq!(a.seed, DEFAULT_SEED);
        let a =
            Args::parse_from(&sv(&["--scale", "tiny", "--seed", "7", "--out", "/tmp/x"])).unwrap();
        assert_eq!(a.scale, Scale::Tiny);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
        assert!(Args::parse_from(&sv(&["--scale"])).is_err());
        assert!(Args::parse_from(&sv(&["--bogus"])).is_err());
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("dpz_bench_csv");
        let path = write_csv(&dir, "t", &["a", "b"], &[sv(&["1", "2"]), sv(&["3", "4"])]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_is_aligned() {
        let t = format_table(&["name", "v"], &[sv(&["x", "10"]), sv(&["longer", "2"])]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn five_numbers() {
        let s = five_number_summary(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s, [1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = five_number_summary(&[7.0]);
        assert_eq!(s, [7.0; 5]);
    }

    #[test]
    fn histogram_counts_everything() {
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let (centers, counts) = histogram(&data, 10);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert_eq!(centers.len(), 10);
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn stage_seconds_reads_histogram_sums() {
        let r = dpz_telemetry::Registry::new();
        r.histogram_with(
            "dpz_stage_seconds",
            &[("stage", "pca")],
            &dpz_telemetry::LATENCY_BUCKETS_S,
        )
        .observe(0.25);
        r.histogram_with(
            "dpz_stage_seconds",
            &[("stage", "lossless")],
            &dpz_telemetry::LATENCY_BUCKETS_S,
        )
        .observe(0.5);
        let s = stage_seconds(&r.snapshot());
        assert_eq!(s, [0.0, 0.0, 0.25, 0.0, 0.5]);
    }

    #[test]
    fn metrics_sidecar_is_valid_prometheus() {
        let r = dpz_telemetry::Registry::new();
        r.counter_with(
            "dpz_bytes_in_total",
            &[("codec", "dpz"), ("op", "compress")],
        )
        .add(1024);
        let dir = std::env::temp_dir().join("dpz_bench_sidecar");
        let path = write_metrics_sidecar(&dir, "t", &r.snapshot()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("# TYPE dpz_bytes_in_total counter"));
        assert!(content.contains("dpz_bytes_in_total{codec=\"dpz\",op=\"compress\"} 1024"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_sidecar_is_valid_chrome_json() {
        use dpz_telemetry::trace;
        trace::start();
        {
            let _s = dpz_telemetry::span!("sidecar_probe");
        }
        trace::stop();
        let drained = trace::drain();
        let dir = std::env::temp_dir().join("dpz_bench_trace_sidecar");
        let path = write_trace_sidecar(&dir, "t", &drained).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let doc = dpz_telemetry::json::parse(&content).expect("chrome trace parses");
        assert!(doc.get("traceEvents").is_some());
        assert!(path.to_string_lossy().ends_with("t.trace.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fmt_picks_notation() {
        assert_eq!(fmt(1.5), "1.500");
        assert_eq!(fmt(0.0001), "1.000e-4");
        assert_eq!(fmt(1234567.0), "1.235e6");
    }
}
