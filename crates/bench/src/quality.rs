//! Z-checker-style quality assessment: one structured report per
//! (dataset, codec, target) combination — PSNR, pointwise error extremes,
//! the paper's range-relative θ, and the per-stage compression-ratio
//! breakdown — serialized as JSON so CI can archive it and `perf_gate`
//! can diff it against a checked-in baseline.

use dpz_core::CompressionStats;
use dpz_data::metrics;

/// One quality assessment of a compress→decompress roundtrip.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// What was compressed (dataset name or file).
    pub dataset: String,
    /// Backend / operating point label (e.g. `dpz-loose`, `dpz-ratio8`).
    pub codec: String,
    /// Number of values.
    pub n_values: usize,
    /// Input value range (max − min).
    pub value_range: f64,
    /// Range-referenced PSNR in dB.
    pub psnr_db: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Largest pointwise absolute error.
    pub max_abs_error: f64,
    /// θ — the paper's quality metric: max pointwise error over the value
    /// range.
    pub theta: f64,
    /// End-to-end compression ratio.
    pub cr_total: f64,
    /// Bit rate of the compressed stream (bits per value).
    pub bit_rate: f64,
    /// Stage-1&2 ratio (original over f32 core), when the DPZ pipeline ran.
    pub cr_stage12: Option<f64>,
    /// Stage-3 quantizer ratio, when the DPZ pipeline ran.
    pub cr_stage3: Option<f64>,
    /// Lossless add-on ratio, when the DPZ pipeline ran.
    pub cr_lossless: Option<f64>,
}

impl QualityReport {
    /// Assess one roundtrip: `original` vs `reconstructed`, with the
    /// compressed size and (for DPZ) the pipeline's own stage stats.
    pub fn assess(
        dataset: &str,
        codec: &str,
        original: &[f32],
        reconstructed: &[f32],
        compressed_bytes: usize,
        stats: Option<&CompressionStats>,
    ) -> QualityReport {
        assert_eq!(
            original.len(),
            reconstructed.len(),
            "quality assessment needs matching lengths"
        );
        let range = metrics::value_range(original);
        let max_err = metrics::max_abs_error(original, reconstructed);
        QualityReport {
            dataset: dataset.to_string(),
            codec: codec.to_string(),
            n_values: original.len(),
            value_range: range,
            psnr_db: metrics::psnr(original, reconstructed),
            mse: metrics::mse(original, reconstructed),
            max_abs_error: max_err,
            theta: if range > 0.0 { max_err / range } else { 0.0 },
            cr_total: metrics::compression_ratio(original.len() * 4, compressed_bytes),
            bit_rate: metrics::bit_rate(original.len(), compressed_bytes),
            cr_stage12: stats.map(|s| s.cr_stage12),
            cr_stage3: stats.map(|s| s.cr_stage3),
            cr_lossless: stats.map(|s| s.cr_zlib),
        }
    }

    /// The report as one JSON object (hand-rolled like the rest of the
    /// workspace's JSON emitters — no serde dependency).
    pub fn to_json(&self) -> String {
        let stage = |v: Option<f64>| match v {
            Some(x) => format!("{x:.4}"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{ \"dataset\": \"{}\", \"codec\": \"{}\", \"n_values\": {}, ",
                "\"value_range\": {:.6e}, \"psnr_db\": {:.3}, \"mse\": {:.6e}, ",
                "\"max_abs_error\": {:.6e}, \"theta\": {:.6e}, ",
                "\"cr_total\": {:.4}, \"bit_rate\": {:.4}, ",
                "\"cr_stage12\": {}, \"cr_stage3\": {}, \"cr_lossless\": {} }}"
            ),
            self.dataset,
            self.codec,
            self.n_values,
            self.value_range,
            self.psnr_db,
            self.mse,
            self.max_abs_error,
            self.theta,
            self.cr_total,
            self.bit_rate,
            stage(self.cr_stage12),
            stage(self.cr_stage3),
            stage(self.cr_lossless),
        )
    }
}

/// Serialize reports as a JSON document keyed by `"<dataset>/<codec>"`.
pub fn reports_to_json(reports: &[QualityReport]) -> String {
    let mut s = String::from("{\n  \"quality\": {\n");
    for (i, r) in reports.iter().enumerate() {
        let sep = if i + 1 == reports.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{}/{}\": {}{sep}\n",
            r.dataset,
            r.codec,
            r.to_json()
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpz_core::DpzConfig;

    #[test]
    fn report_round_trips_through_the_workspace_json_parser() {
        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
        let out = dpz_core::compress(&data, &[64, 64], &DpzConfig::loose()).unwrap();
        let (recon, _) = dpz_core::decompress(&out.bytes).unwrap();
        let report = QualityReport::assess(
            "synthetic",
            "dpz-loose",
            &data,
            &recon,
            out.bytes.len(),
            Some(&out.stats),
        );
        assert!(report.psnr_db > 40.0, "{report:?}");
        assert!(report.theta > 0.0 && report.theta < 0.01, "{report:?}");
        assert!(report.cr_total > 1.0);
        assert!(report.cr_stage3.unwrap() > 1.0);

        let doc = dpz_telemetry::json::parse(&reports_to_json(std::slice::from_ref(&report)))
            .expect("valid JSON");
        let entry = doc
            .get("quality")
            .and_then(|q| q.get("synthetic/dpz-loose"))
            .expect("keyed entry");
        let f = |k: &str| entry.get(k).and_then(|v| v.as_f64()).unwrap();
        assert!((f("psnr_db") - report.psnr_db).abs() < 1e-2);
        assert!((f("cr_total") - report.cr_total).abs() < 1e-3);
        assert!(f("theta") > 0.0);
    }

    #[test]
    fn baseline_reports_omit_stage_ratios() {
        let a = vec![1.0f32, 2.0, 3.0, 4.0];
        let report = QualityReport::assess("x", "sz", &a, &a, 8, None);
        assert_eq!(report.cr_stage3, None);
        assert!(report.psnr_db.is_infinite(), "identical data → ∞ dB");
        assert!(report.to_json().contains("\"cr_stage3\": null"));
    }
}
