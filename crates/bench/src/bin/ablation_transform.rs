//! Ablation: stage-1 transform choice — the paper's DCT versus the
//! wavelet-domain variant it hypothesizes ("PCA in other transform domains
//! (e.g., wavelet transforms) should also work", Section III-B2). Runs
//! DPZ-s with DCT and Db4-DWT stage 1 across the whole suite.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_bench::runners::run_dpz;
use dpz_core::{DpzConfig, Stage1Transform, TveLevel};
use dpz_data::standard_suite;

fn main() {
    let args = Args::parse();
    let header = ["dataset", "transform", "k", "cr", "psnr_db"];
    let mut rows = Vec::new();
    for ds in standard_suite(args.scale) {
        for (label, transform) in [
            ("DCT", Stage1Transform::Dct),
            ("DWT-db4", Stage1Transform::Dwt { levels: 5 }),
        ] {
            let cfg = DpzConfig::strict()
                .with_tve(TveLevel::FiveNines)
                .with_transform(transform);
            match run_dpz(&ds, &cfg, "DPZ-s", label) {
                Ok((run, stats)) => rows.push(vec![
                    ds.name.clone(),
                    label.to_string(),
                    stats.k.to_string(),
                    fmt(run.report.compression_ratio),
                    fmt(run.report.psnr),
                ]),
                Err(e) => eprintln!("{} {label}: {e}", ds.name),
            }
        }
    }
    println!("Ablation — stage-1 transform: DCT vs Daubechies-4 DWT (DPZ-s, five-nine TVE)\n");
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "ablation_transform", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
