//! Figure 10: VIF distribution of sampled data on HACC-vx, Isotropic and
//! PHIS at sampling rates 2.5 % and 1 %. Reproduces the paper's
//! compressibility separation: HACC-vx sits below the VIF cutoff of 5 while
//! Isotropic and PHIS sit (far) above it.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_core::decompose;
use dpz_core::sampling::{vif_profile, VIF_CUTOFF};
use dpz_data::{Dataset, DatasetKind};

const FIELDS: [DatasetKind; 3] = [
    DatasetKind::HaccVx,
    DatasetKind::Isotropic,
    DatasetKind::Phis,
];
const RATES: [f64; 2] = [0.025, 0.01];
/// Targets probed per dataset (box-plot sample size).
const TARGETS: usize = 16;

fn main() {
    let args = Args::parse();
    let header = ["dataset", "SR", "min", "q1", "median", "q3", "max", "mean"];
    let mut rows = Vec::new();
    for kind in FIELDS {
        let ds = Dataset::generate(kind, args.scale, args.seed);
        let shape = decompose::choose_shape(ds.len());
        let coeffs = decompose::dct_blocks(&decompose::to_blocks(&ds.data, shape));
        for rate in RATES {
            let profile = vif_profile(&coeffs, rate, TARGETS).expect("vif profile");
            let s = dpz_bench::harness::five_number_summary(&profile);
            let mean = profile.iter().sum::<f64>() / profile.len() as f64;
            rows.push(vec![
                ds.name.clone(),
                format!("{:.1}%", rate * 100.0),
                fmt(s[0]),
                fmt(s[1]),
                fmt(s[2]),
                fmt(s[3]),
                fmt(s[4]),
                fmt(mean),
            ]);
        }
    }
    println!("Figure 10 — VIF of sampled datasets (cutoff = {VIF_CUTOFF})\n");
    println!("{}", format_table(&header, &rows));

    // The separation claim.
    let median_of = |name: &str, sr: &str| {
        rows.iter()
            .find(|r| r[0] == name && r[1] == sr)
            .map(|r| r[4].parse::<f64>().unwrap_or(f64::NAN))
            .unwrap_or(f64::NAN)
    };
    let vx = median_of("HACC-vx", "1.0%");
    let iso = median_of("Isotropic", "1.0%");
    let phis = median_of("PHIS", "1.0%");
    println!(
        "medians @1%: HACC-vx {} | Isotropic {} | PHIS {} -> {}",
        fmt(vx),
        fmt(iso),
        fmt(phis),
        if vx < iso && vx < phis {
            "separation matches the paper"
        } else {
            "SEPARATION MISMATCH"
        }
    );
    let path = write_csv(&args.out_dir, "fig10_vif", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
