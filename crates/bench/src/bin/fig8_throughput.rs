//! Figure 8: compression / decompression time versus achieved CR on the
//! Isotropic dataset, for DPZ-l, DPZ-s, SZ and ZFP — plus the paper's
//! sampling-speedup claim (sampling vs non-sampling DPZ, ~1.23× on average).

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_bench::runners::{
    run_dpz, run_sz_relative, run_zfp, RunResult, SZ_REL_BOUNDS, ZFP_PRECISIONS,
};
use dpz_core::{DpzConfig, TveLevel};
use dpz_data::{standard_suite, Dataset, DatasetKind};
use dpz_zfp::ZfpMode;

fn push(rows: &mut Vec<Vec<String>>, ds: &Dataset, run: &RunResult) {
    rows.push(vec![
        run.label.clone(),
        run.setting.clone(),
        fmt(run.report.compression_ratio),
        fmt(run.compress_time.as_secs_f64()),
        fmt(run.decompress_time.as_secs_f64()),
        fmt(run.compress_mbps(ds.nbytes())),
        fmt(run.decompress_mbps(ds.nbytes())),
    ]);
}

fn main() {
    let args = Args::parse();
    let ds = Dataset::generate(DatasetKind::Isotropic, args.scale, args.seed);
    let header = [
        "method",
        "setting",
        "cr",
        "comp_s",
        "decomp_s",
        "comp_MB/s",
        "decomp_MB/s",
    ];
    let mut rows = Vec::new();
    for level in TveLevel::SWEEP {
        for (label, base) in [
            ("DPZ-l", DpzConfig::loose()),
            ("DPZ-s", DpzConfig::strict()),
        ] {
            if let Ok((run, _)) = run_dpz(
                &ds,
                &base.with_tve(level),
                label,
                &format!("tve={}nines", level.nines()),
            ) {
                push(&mut rows, &ds, &run);
            }
        }
    }
    for rel in SZ_REL_BOUNDS {
        if let Ok(run) = run_sz_relative(&ds, rel) {
            push(&mut rows, &ds, &run);
        }
    }
    for prec in ZFP_PRECISIONS {
        if let Ok(run) = run_zfp(&ds, ZfpMode::FixedPrecision(prec)) {
            push(&mut rows, &ds, &run);
        }
    }
    println!("Figure 8 — (de)compression time vs CR on Isotropic\n");
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "fig8_throughput", &header, &rows).expect("csv");
    println!("csv: {}", path.display());

    // Sampling speedup across the whole suite (paper: 1.23x average).
    println!("\nSampling-strategy speedup (DPZ-l, five-nine TVE):");
    let header2 = ["dataset", "plain_s", "sampling_s", "speedup"];
    let mut rows2 = Vec::new();
    let mut ratios = Vec::new();
    for ds in standard_suite(args.scale) {
        let plain = run_dpz(
            &ds,
            &DpzConfig::loose().with_tve(TveLevel::FiveNines),
            "DPZ-l",
            "plain",
        );
        let sampled = run_dpz(
            &ds,
            &DpzConfig::loose()
                .with_tve(TveLevel::FiveNines)
                .with_sampling(true),
            "DPZ-l",
            "sampling",
        );
        if let (Ok((p, _)), Ok((s, _))) = (plain, sampled) {
            let speedup = p.compress_time.as_secs_f64() / s.compress_time.as_secs_f64();
            ratios.push(speedup);
            rows2.push(vec![
                ds.name.clone(),
                fmt(p.compress_time.as_secs_f64()),
                fmt(s.compress_time.as_secs_f64()),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    println!("{}", format_table(&header2, &rows2));
    if !ratios.is_empty() {
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("average speedup: {avg:.2}x (paper reports 1.23x)");
    }
    let path = write_csv(&args.out_dir, "fig8_sampling_speedup", &header2, &rows2).expect("csv");
    println!("csv: {}", path.display());
}
