//! Table IV: accuracy loss between stage 1&2 and stage 3 (+ lossless) in
//! Δ PSNR (dB). As in the paper, the loss grows as TVE tightens — once the
//! subspace is nearly exact, the quantizer becomes the error floor — and
//! DPZ-l (coarser bins) loses more than DPZ-s.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_core::{compress_with_breakdown, DpzConfig, TveLevel};
use dpz_data::{Dataset, DatasetKind};

const SELECTED: [DatasetKind; 6] = [
    DatasetKind::Isotropic,
    DatasetKind::Channel,
    DatasetKind::Cldhgh,
    DatasetKind::Phis,
    DatasetKind::HaccX,
    DatasetKind::HaccVx,
];

const LEVELS: [TveLevel; 3] = [
    TveLevel::ThreeNines,
    TveLevel::FiveNines,
    TveLevel::SevenNines,
];

fn main() {
    let args = Args::parse();
    let header = [
        "dataset",
        "tve",
        "scheme",
        "psnr_stage12_db",
        "psnr_final_db",
        "delta_psnr_db",
    ];
    let mut rows = Vec::new();
    for kind in SELECTED {
        let ds = Dataset::generate(kind, args.scale, args.seed);
        eprintln!("== {} ==", ds.name);
        for level in LEVELS {
            for (label, base) in [
                ("DPZ-l", DpzConfig::loose()),
                ("DPZ-s", DpzConfig::strict()),
            ] {
                let cfg = base.with_tve(level);
                match compress_with_breakdown(&ds.data, &ds.dims, &cfg) {
                    Ok(b) => rows.push(vec![
                        ds.name.clone(),
                        format!("{}nines", level.nines()),
                        label.to_string(),
                        fmt(b.psnr_stage12),
                        fmt(b.psnr_final),
                        fmt(b.delta_psnr()),
                    ]),
                    Err(e) => eprintln!("{} {label} {}: {e}", ds.name, level.nines()),
                }
            }
        }
    }
    println!("Table IV — accuracy loss between stages (Δ PSNR, dB)\n");
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "table4_psnr_loss", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
