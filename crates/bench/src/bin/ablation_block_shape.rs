//! Ablation: block-count sweep. Section IV-A claims that, under the
//! constraint `M < N`, larger `M` (more blocks = more PCA features) yields
//! higher compression ratios — which is why DPZ picks the smallest ratio
//! `N/M > 1`. This harness forces several block shapes for the same data
//! and reports the resulting CR and PSNR.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_core::container::{serialize, ContainerData};
use dpz_core::decompose::{dct_blocks, from_blocks, idct_blocks, to_blocks, BlockShape};
use dpz_core::quantize::{dequantize_scores, quantize_scores};
use dpz_core::{Scheme, TveLevel};
use dpz_data::metrics::psnr;
use dpz_data::{Dataset, DatasetKind};
use dpz_linalg::{Matrix, Pca, PcaOptions};

/// Compress with a forced block shape; returns (CR, PSNR, k).
fn run_with_shape(data: &[f32], dims: &[usize], shape: BlockShape) -> (f64, f64, usize) {
    // Range-normalize like the real pipeline so the quantizer sees the same
    // score scale regardless of the field's physical units.
    let (lo, hi) = data
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(f64::from(v)), hi.max(f64::from(v)))
        });
    let range = if hi > lo { hi - lo } else { 1.0 };
    let mut blocks = to_blocks(data, shape);
    for v in blocks.as_mut_slice() {
        *v = (*v - lo) / range - 0.5;
    }
    let coeffs = dct_blocks(&blocks);
    let pca = Pca::fit(&coeffs, PcaOptions::default()).expect("pca");
    let k = pca.k_for_tve(TveLevel::FiveNines.fraction());
    let scores = pca.transform(&coeffs, k).expect("transform");
    let quantized = quantize_scores(scores.as_slice(), Scheme::Strict);
    let payload = ContainerData {
        dims: dims.to_vec(),
        orig_len: data.len(),
        m: shape.m,
        n: shape.n,
        pad: shape.pad,
        norm_min: lo,
        norm_range: range,
        k,
        transform_tag: 0,
        dwt_levels: 0,
        p: Scheme::Strict.p(),
        standardized: false,
        basis: pca
            .projection(k)
            .as_slice()
            .iter()
            .map(|&v| v as f32)
            .collect(),
        mean: pca.mean().iter().map(|&v| v as f32).collect(),
        scale: vec![],
        scores: quantized,
    };
    let (bytes, _) = serialize(&payload);

    // Reconstruct for PSNR.
    let score_mat =
        Matrix::from_vec(shape.n, k, dequantize_scores(&payload.scores)).expect("scores");
    let recon_coeffs = pca.inverse_transform(&score_mat).expect("inverse");
    let mut recon_blocks = idct_blocks(&recon_coeffs);
    for v in recon_blocks.as_mut_slice() {
        *v = (*v + 0.5) * range + lo;
    }
    let recon = from_blocks(&recon_blocks, shape, data.len());
    let cr = (data.len() * 4) as f64 / bytes.len() as f64;
    (cr, psnr(data, &recon), k)
}

fn main() {
    let args = Args::parse();
    let ds = Dataset::generate(DatasetKind::Fldsc, args.scale, args.seed);
    let len = ds.len();

    // Candidate shapes: exact divisors of the length only, so every block
    // stays aligned to the field's rows — padding-induced misalignment
    // destroys inter-block correlation and would confound the sweep.
    let mut shapes = Vec::new();
    let mut m = 2usize;
    while m * m * 2 <= len {
        if len.is_multiple_of(m) {
            let n = len / m;
            shapes.push(BlockShape { m, n, pad: 0 });
        }
        m += 1;
    }
    // Keep a handful spread across the ratio range, ending at the
    // pipeline's own choice (largest M).
    if shapes.len() > 7 {
        let step = shapes.len() / 7;
        let mut kept: Vec<BlockShape> = shapes.iter().copied().step_by(step.max(1)).collect();
        let last = *shapes.last().unwrap();
        if kept.last() != Some(&last) {
            kept.push(last);
        }
        shapes = kept;
    }

    let header = ["M", "N", "ratio_N/M", "k", "cr", "psnr_db"];
    let mut rows = Vec::new();
    for shape in shapes {
        let (cr, quality, k) = run_with_shape(&ds.data, &ds.dims, shape);
        rows.push(vec![
            shape.m.to_string(),
            shape.n.to_string(),
            format!("{:.1}", shape.n as f64 / shape.m as f64),
            k.to_string(),
            fmt(cr),
            fmt(quality),
        ]);
    }
    println!(
        "Ablation — block-count sweep on FLDSC (DPZ-s core, five-nine TVE; paper: larger M ⇒ higher CR)\n"
    );
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "ablation_block_shape", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
