//! Figure 2: (a) overlay statistics of selected FLDSC blocks and (b)-(d)
//! the distribution of PCA component scores 1, 2 and 30. The paper's
//! observation: the 1st component captures the overall trend of the block
//! overlay while later components carry vanishing variance.

use dpz_bench::harness::{fmt, format_table, histogram, write_csv, Args};
use dpz_core::decompose;
use dpz_data::{Dataset, DatasetKind};
use dpz_linalg::{Pca, PcaOptions};

const BINS: usize = 30;

fn main() {
    let args = Args::parse();
    let ds = Dataset::generate(DatasetKind::Fldsc, args.scale, args.seed);
    let shape = decompose::choose_shape(ds.len());
    let blocks = decompose::to_blocks(&ds.data, shape);

    // (a) Seven evenly spaced blocks, as in the paper's overlay.
    println!(
        "Figure 2a — seven selected blocks of FLDSC (M={} blocks, N={} points each)",
        shape.m, shape.n
    );
    let header_a = ["block", "min", "mean", "max", "std"];
    let mut rows_a = Vec::new();
    for i in 0..7 {
        let j = i * (shape.m - 1) / 6;
        let col = blocks.col(j);
        let mean = col.iter().sum::<f64>() / col.len() as f64;
        let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
        let (lo, hi) = col
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        rows_a.push(vec![
            format!("bk{}", j + 1),
            fmt(lo),
            fmt(mean),
            fmt(hi),
            fmt(var.sqrt()),
        ]);
    }
    println!("{}", format_table(&header_a, &rows_a));

    // (b)-(d) PCA score distributions for components 1, 2 and 30.
    let pca = Pca::fit(&blocks, PcaOptions::default()).expect("pca fit");
    let k_probe = [0usize, 1, 29.min(shape.m - 1)];
    let scores = pca.transform(&blocks, shape.m).expect("transform");
    let header = [
        "bin",
        "pc1_center",
        "pc1_count",
        "pc2_center",
        "pc2_count",
        "pc30_center",
        "pc30_count",
    ];
    let mut columns = Vec::new();
    for &c in &k_probe {
        let vals: Vec<f32> = scores.col(c).iter().map(|&v| v as f32).collect();
        columns.push(histogram(&vals, BINS));
    }
    let rows: Vec<Vec<String>> = (0..BINS)
        .map(|b| {
            let mut row = vec![b.to_string()];
            for (centers, counts) in &columns {
                row.push(format!("{:.4}", centers[b]));
                row.push(counts[b].to_string());
            }
            row
        })
        .collect();
    println!("Figure 2b-d — PCA component score distributions");
    println!("{}", format_table(&header, &rows));

    // Variance ordering check (the paper's point).
    let ev = pca.eigenvalues();
    println!(
        "component variances: pc1 {} | pc2 {} | pc30 {}  (pc1 ≫ pc30 confirms the trend capture)",
        fmt(ev[0]),
        fmt(ev[1]),
        fmt(ev[29.min(ev.len() - 1)])
    );

    let path = write_csv(&args.out_dir, "fig2_pca_components", &header, &rows).expect("write csv");
    println!("csv: {}", path.display());
}
