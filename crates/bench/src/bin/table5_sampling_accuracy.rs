//! Section V-C6: accuracy of the sampling strategy's compression-ratio
//! prediction. For S ∈ {5, 10} subsets and TVE from "five-nine" to
//! "seven-nine", run the estimator, then the real compressor, and count how
//! often the achieved CR falls inside the predicted `CR_p` range (the paper
//! reports 76.6 % for S = 10 vs 63.3 % for S = 5).

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_core::{compress, DpzConfig, TveLevel};
use dpz_data::standard_suite;

const LEVELS: [TveLevel; 3] = [
    TveLevel::FiveNines,
    TveLevel::SixNines,
    TveLevel::SevenNines,
];

fn main() {
    let args = Args::parse();
    let header = [
        "dataset",
        "S",
        "tve",
        "k_e",
        "cr_pred_low",
        "cr_pred_high",
        "cr_actual",
        "hit",
    ];
    let mut rows = Vec::new();
    let mut hits: std::collections::HashMap<usize, (usize, usize)> = Default::default();
    for s in [5usize, 10] {
        for ds in standard_suite(args.scale) {
            for level in LEVELS {
                let mut cfg = DpzConfig::loose().with_tve(level).with_sampling(true);
                cfg.sampling_subsets = s;
                match compress(&ds.data, &ds.dims, &cfg) {
                    Ok(out) => {
                        let est = out.stats.sampling.clone().expect("sampling ran");
                        let (lo, hi) = est.cr_predicted;
                        let actual = out.stats.cr_total;
                        let hit = actual >= lo && actual <= hi;
                        let e = hits.entry(s).or_insert((0, 0));
                        e.0 += usize::from(hit);
                        e.1 += 1;
                        rows.push(vec![
                            ds.name.clone(),
                            s.to_string(),
                            format!("{}nines", level.nines()),
                            est.k_estimate.to_string(),
                            fmt(lo),
                            fmt(hi),
                            fmt(actual),
                            hit.to_string(),
                        ]);
                    }
                    Err(e) => eprintln!("{} S={s} {}: {e}", ds.name, level.nines()),
                }
            }
        }
    }
    println!("Sampling-strategy CR prediction accuracy (Section V-C6)\n");
    println!("{}", format_table(&header, &rows));
    for s in [5usize, 10] {
        if let Some((hit, total)) = hits.get(&s) {
            println!(
                "S={s}: {hit}/{total} predictions in range ({:.1}%)  [paper: {}]",
                100.0 * *hit as f64 / *total as f64,
                if s == 10 { "76.6%" } else { "63.3%" }
            );
        }
    }
    let path = write_csv(&args.out_dir, "table5_sampling_accuracy", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
