//! Table III: breakdown of the compression ratio per stage (stage 1&2 /
//! stage 3 / zlib) for both schemes at TVE ∈ {99.9 %, 99.999 %, 99.99999 %}
//! on the paper's six selected datasets.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_core::{compress, DpzConfig, TveLevel};
use dpz_data::{Dataset, DatasetKind};

const SELECTED: [DatasetKind; 6] = [
    DatasetKind::Isotropic,
    DatasetKind::Channel,
    DatasetKind::Cldhgh,
    DatasetKind::Phis,
    DatasetKind::HaccX,
    DatasetKind::HaccVx,
];

const LEVELS: [TveLevel; 3] = [
    TveLevel::ThreeNines,
    TveLevel::FiveNines,
    TveLevel::SevenNines,
];

fn main() {
    let args = Args::parse();
    let header = [
        "dataset",
        "tve",
        "scheme",
        "k",
        "cr_stage12",
        "cr_stage3",
        "cr_zlib",
        "cr_total",
    ];
    let mut rows = Vec::new();
    for kind in SELECTED {
        let ds = Dataset::generate(kind, args.scale, args.seed);
        eprintln!("== {} ==", ds.name);
        for level in LEVELS {
            for (label, base) in [
                ("DPZ-l", DpzConfig::loose()),
                ("DPZ-s", DpzConfig::strict()),
            ] {
                let cfg = base.with_tve(level);
                match compress(&ds.data, &ds.dims, &cfg) {
                    Ok(out) => {
                        let s = out.stats;
                        rows.push(vec![
                            ds.name.clone(),
                            format!("{}nines", level.nines()),
                            label.to_string(),
                            s.k.to_string(),
                            fmt(s.cr_stage12),
                            fmt(s.cr_stage3),
                            fmt(s.cr_zlib),
                            fmt(s.cr_total),
                        ]);
                    }
                    Err(e) => eprintln!("{} {label} {}: {e}", ds.name, level.nines()),
                }
            }
        }
    }
    println!("Table III — per-stage compression ratio breakdown\n");
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "table3_cr_breakdown", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
