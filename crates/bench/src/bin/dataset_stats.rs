//! Analogue-fidelity report: statistical character of every synthetic
//! dataset (entropy, autocorrelation, roughness, spectral slope) — the
//! quantitative backing for DESIGN.md §2's substitution argument. The
//! ordering must match the compressibility ordering the paper observes:
//! CESM fields smooth and ordered, turbulence mid, HACC-x ordered,
//! HACC-vx nearly white.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_data::standard_suite;
use dpz_data::stats::{autocorrelation, histogram_entropy, roughness, spectral_slope};

fn main() {
    let args = Args::parse();
    let header = [
        "dataset",
        "entropy_bits",
        "autocorr_lag1",
        "autocorr_lag16",
        "roughness",
        "spectral_slope",
    ];
    let mut rows = Vec::new();
    for ds in standard_suite(args.scale) {
        rows.push(vec![
            ds.name.clone(),
            fmt(histogram_entropy(&ds.data, 256)),
            fmt(autocorrelation(&ds.data, 1)),
            fmt(autocorrelation(&ds.data, 16)),
            fmt(roughness(&ds.data)),
            fmt(spectral_slope(&ds.data)),
        ]);
    }
    println!(
        "Dataset characterization (synthetic analogues, seed {})\n",
        args.seed
    );
    println!("{}", format_table(&header, &rows));
    println!(
        "\nexpected ordering: HACC-vx roughest (autocorr ~0), CESM fields smoothest,\n\
         turbulence in between with a negative spectral slope."
    );
    let path = write_csv(&args.out_dir, "dataset_stats", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
