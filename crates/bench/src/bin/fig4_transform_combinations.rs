//! Figure 4: absolute error of the four transform pipelines (DCT, PCA,
//! DCT∘PCA, PCA∘DCT) on FLDSC at a fixed ~5× setting (keep 20 % of
//! features). Doubles as the ablation for DPZ's ordering choice: PCA on DCT
//! must introduce the least error, DCT on PCA the most.
//!
//! Also writes per-pipeline absolute-error maps as PGM images so the
//! spatial error structure of the original figure can be inspected.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_core::combos::{lossy_roundtrip, TransformCombo};
use dpz_data::metrics::{max_abs_error, mse, psnr};
use dpz_data::pgm::write_pgm;
use dpz_data::{Dataset, DatasetKind};

const KEEP_FRACTION: f64 = 0.2; // the paper's 5x setting

fn main() {
    let args = Args::parse();
    let ds = Dataset::generate(DatasetKind::Fldsc, args.scale, args.seed);

    let header = ["pipeline", "mse", "max_abs_err", "psnr_db"];
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for combo in TransformCombo::ALL {
        let recon = lossy_roundtrip(&ds.data, combo, KEEP_FRACTION).expect("roundtrip");
        rows.push(vec![
            combo.label().to_string(),
            fmt(mse(&ds.data, &recon)),
            fmt(max_abs_error(&ds.data, &recon)),
            fmt(psnr(&ds.data, &recon)),
        ]);
        results.push((combo, recon));
    }
    println!(
        "Figure 4 — error of transform combinations on FLDSC at keep fraction {KEEP_FRACTION} (~5x)\n"
    );
    println!("{}", format_table(&header, &rows));

    // Ordering check (the paper's conclusion).
    let mse_of = |combo: TransformCombo| {
        results
            .iter()
            .find(|(c, _)| *c == combo)
            .map(|(_, r)| mse(&ds.data, r))
            .unwrap()
    };
    let best = mse_of(TransformCombo::PcaOnDct);
    let worst = mse_of(TransformCombo::DctOnPca);
    println!(
        "\nPCA on DCT mse {} vs DCT on PCA mse {} -> {}",
        fmt(best),
        fmt(worst),
        if best <= worst {
            "ordering matches the paper"
        } else {
            "ORDERING MISMATCH"
        }
    );

    // Error maps (2-D field).
    std::fs::create_dir_all(&args.out_dir).expect("out dir");
    if ds.dims.len() == 2 {
        for (combo, recon) in &results {
            let err: Vec<f32> = ds
                .data
                .iter()
                .zip(recon)
                .map(|(a, b)| (a - b).abs())
                .collect();
            let name = combo.label().replace(' ', "_").to_lowercase();
            let path = args.out_dir.join(format!("fig4_error_{name}.pgm"));
            write_pgm(&path, &err, ds.dims[0], ds.dims[1]).expect("pgm");
            println!("error map: {}", path.display());
        }
    }
    let path =
        write_csv(&args.out_dir, "fig4_transform_combinations", &header, &rows).expect("write csv");
    println!("csv: {}", path.display());
}
