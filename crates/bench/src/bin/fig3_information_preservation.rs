//! Figure 3: number of selected features vs (i) information preserved
//! (cumulative ECR for DCT, cumulative TVE for PCA) and (ii) PSNR, on the
//! FLDSC dataset. Reproduces the paper's observation that ~1 % of features
//! carry > 90 % of the information in both methods.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_core::combos::{lossy_roundtrip, TransformCombo};
use dpz_core::decompose;
use dpz_data::metrics::psnr;
use dpz_data::{Dataset, DatasetKind};
use dpz_linalg::{Pca, PcaOptions};

/// Feature fractions probed for the PSNR series.
const FRACTIONS: [f64; 8] = [0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 1.00];

fn main() {
    let args = Args::parse();
    let ds = Dataset::generate(DatasetKind::Fldsc, args.scale, args.seed);
    let shape = decompose::choose_shape(ds.len());
    let blocks = decompose::to_blocks(&ds.data, shape);
    let coeffs = decompose::dct_blocks(&blocks);

    // Cumulative ECR: energy of the largest-magnitude DCT coefficients.
    let mut energies: Vec<f64> = coeffs.as_slice().iter().map(|&v| v * v).collect();
    energies.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let total_energy: f64 = energies.iter().sum();
    let ecr_at = |fraction: f64| -> f64 {
        let k = ((energies.len() as f64 * fraction).round() as usize).max(1);
        energies[..k.min(energies.len())].iter().sum::<f64>() / total_energy
    };

    // Cumulative TVE from a full PCA in the DCT domain's *spatial* sibling
    // (the paper's figure applies PCA directly to the block data).
    let pca = Pca::fit(&blocks, PcaOptions::default()).expect("pca");
    let tve = pca.cumulative_tve();
    let tve_at = |fraction: f64| -> f64 {
        let k = ((shape.m as f64 * fraction).round() as usize).clamp(1, shape.m);
        tve[k - 1]
    };

    let header = [
        "fraction",
        "dct_ecr",
        "pca_tve",
        "dct_psnr_db",
        "pca_psnr_db",
    ];
    let mut rows = Vec::new();
    for &f in &FRACTIONS {
        let dct_recon = lossy_roundtrip(&ds.data, TransformCombo::DctOnly, f).unwrap();
        let pca_recon = lossy_roundtrip(&ds.data, TransformCombo::PcaOnly, f).unwrap();
        rows.push(vec![
            format!("{:.2}", f),
            format!("{:.6}", ecr_at(f)),
            format!("{:.6}", tve_at(f)),
            fmt(psnr(&ds.data, &dct_recon)),
            fmt(psnr(&ds.data, &pca_recon)),
        ]);
    }
    println!("Figure 3 — information preservation and PSNR vs selected features (FLDSC)\n");
    println!("{}", format_table(&header, &rows));
    println!(
        "at 1% of features: ECR {:.1}% | TVE {:.1}%  (paper: both > 90%)",
        ecr_at(0.01) * 100.0,
        tve_at(0.01) * 100.0
    );
    let path = write_csv(
        &args.out_dir,
        "fig3_information_preservation",
        &header,
        &rows,
    )
    .expect("write csv");
    println!("csv: {}", path.display());
}
