//! Perf regression gate: measures the hot end-to-end paths (best-of-N wall
//! clock on the Figure 8 field) and compares them against a checked-in
//! baseline (`BENCH_pr*.json`, `gate` section), failing when any path
//! regresses by more than the allowed percentage.
//!
//! ```text
//! perf_gate [--samples N] [--out fresh.json]              # measure only
//! perf_gate --baseline BENCH_pr6.json [--max-regress PCT] # measure + gate
//! ```
//!
//! Host speed drifts between CI runs, so comparisons are normalized by the
//! SZ canary (a path this repo's PRs rarely touch): each fresh time is
//! scaled by `baseline_sz_ms / fresh_sz_ms` before the threshold check.
//!
//! The canary cannot correct for a *different machine class*: numbers taken
//! with another SIMD backend or worker count are incomparable, so each
//! emitted JSON records both under `host` and gating against a baseline
//! from a mismatched host is refused unless `--allow-backend-mismatch`.

use dpz_bench::quality::QualityReport;
use dpz_core::{DpzConfig, TveLevel};
use dpz_data::metrics::value_range;
use dpz_data::{Dataset, DatasetKind, Scale};
use dpz_sz::SzConfig;
use dpz_telemetry::json::{self, JsonValue};
use std::hint::black_box;
use std::time::Instant;

/// One measured path: best-of-N milliseconds plus derived throughput.
struct Measurement {
    name: &'static str,
    ms: f64,
    mb_per_s: f64,
}

/// Stage-level wall clock of a compress path's best run, in pipeline
/// order. Emitted under `stages` in the gate JSON so a PR's effect on the
/// *composition* of the time (eigensolve share vs entropy share, …) is
/// visible in the checked-in baselines, not just the totals.
const STAGE_NAMES: [&str; 5] = ["decompose_dct", "sampling", "pca", "quantize", "lossless"];

struct StageRow {
    name: &'static str,
    ms: [f64; 5],
}

fn stage_ms(t: &dpz_core::StageTimings) -> [f64; 5] {
    [
        t.decompose_dct.as_secs_f64() * 1e3,
        t.sampling.as_secs_f64() * 1e3,
        t.pca.as_secs_f64() * 1e3,
        t.quantize.as_secs_f64() * 1e3,
        t.lossless.as_secs_f64() * 1e3,
    ]
}

/// Best-of-N wall-clock milliseconds of `f` (one warmup call first).
fn best_of<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    f();
    (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Best-of-N compress wall clock plus the stage timings of that fastest
/// run (the same run supplies both, so the breakdown sums to ~the total).
fn best_compress(samples: usize, data: &[f32], dims: &[usize], cfg: &DpzConfig) -> (f64, [f64; 5]) {
    dpz_core::compress(data, dims, cfg).unwrap(); // warmup
    let mut best = f64::INFINITY;
    let mut stages = [0.0; 5];
    for _ in 0..samples {
        let t = Instant::now();
        let c = dpz_core::compress(black_box(data), dims, cfg).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if ms < best {
            best = ms;
            stages = stage_ms(&c.stats.timings);
        }
    }
    (best, stages)
}

/// Quality assessments of the gated compress paths (same dataset the
/// timing gate uses). These feed the *non-blocking* quality-regression
/// check: a PSNR or ratio drop against the baseline prints a warning but
/// never fails the gate — timing regressions stay the only hard failure.
fn measure_quality() -> Vec<QualityReport> {
    let ds = Dataset::generate(DatasetKind::Cldhgh, Scale::Small, 2021);
    let mut out = Vec::new();
    for (label, cfg) in [
        (
            "dpz_loose",
            DpzConfig::loose().with_tve(TveLevel::FiveNines),
        ),
        (
            "dpz_strict",
            DpzConfig::strict().with_tve(TveLevel::FiveNines),
        ),
    ] {
        let Ok(c) = dpz_core::compress(&ds.data, &ds.dims, &cfg) else {
            continue;
        };
        let Ok((recon, _)) = dpz_core::decompress(&c.bytes) else {
            continue;
        };
        out.push(QualityReport::assess(
            &ds.name,
            label,
            &ds.data,
            &recon,
            c.bytes.len(),
            Some(&c.stats),
        ));
    }
    out
}

/// Allowed quality drift before the (non-blocking) warning fires.
const QUALITY_PSNR_SLACK_DB: f64 = 0.5;
const QUALITY_CR_SLACK_PCT: f64 = 5.0;

/// Non-blocking quality diff: warnings for every gated path whose PSNR
/// fell more than `QUALITY_PSNR_SLACK_DB` dB or whose ratio fell more than
/// `QUALITY_CR_SLACK_PCT` percent below the baseline's `quality` section.
/// A baseline without that section (pre-refactor files) diffs nothing.
fn quality_warnings(fresh: &[QualityReport], doc: &JsonValue) -> Vec<String> {
    let mut out = Vec::new();
    for r in fresh {
        let Some(base) = doc.get("quality").and_then(|q| q.get(&r.codec)) else {
            continue;
        };
        if let Some(base_psnr) = base.get("psnr_db").and_then(JsonValue::as_f64) {
            if r.psnr_db < base_psnr - QUALITY_PSNR_SLACK_DB {
                out.push(format!(
                    "{}: PSNR fell {:.2} dB (baseline {:.2}, fresh {:.2})",
                    r.codec,
                    base_psnr - r.psnr_db,
                    base_psnr,
                    r.psnr_db
                ));
            }
        }
        if let Some(base_cr) = base.get("cr_total").and_then(JsonValue::as_f64) {
            let pct = 100.0 * (1.0 - r.cr_total / base_cr);
            if pct > QUALITY_CR_SLACK_PCT {
                out.push(format!(
                    "{}: ratio fell {pct:.1}% (baseline {base_cr:.2}x, fresh {:.2}x)",
                    r.codec, r.cr_total
                ));
            }
        }
    }
    out
}

/// Measure every gated path on the bench_pipeline dataset.
fn measure(samples: usize) -> (Vec<Measurement>, Vec<StageRow>) {
    let ds = Dataset::generate(DatasetKind::Cldhgh, Scale::Small, 2021);
    let mb = ds.nbytes() as f64 / 1e6;
    let loose = DpzConfig::loose().with_tve(TveLevel::FiveNines);
    let strict = DpzConfig::strict().with_tve(TveLevel::FiveNines);
    let sz_cfg = SzConfig::with_error_bound(1e-4 * value_range(&ds.data));
    let strict_bytes = dpz_core::compress(&ds.data, &ds.dims, &strict)
        .unwrap()
        .bytes;

    let mut out = Vec::new();
    let mut stages = Vec::new();
    let mut record = |name, ms| {
        out.push(Measurement {
            name,
            ms,
            mb_per_s: mb / (ms / 1e3),
        });
    };
    let (ms, breakdown) = best_compress(samples, &ds.data, &ds.dims, &loose);
    record("compress_dpz_loose", ms);
    stages.push(StageRow {
        name: "compress_dpz_loose",
        ms: breakdown,
    });
    let (ms, breakdown) = best_compress(samples, &ds.data, &ds.dims, &strict);
    record("compress_dpz_strict", ms);
    stages.push(StageRow {
        name: "compress_dpz_strict",
        ms: breakdown,
    });
    record(
        "decompress_dpz_strict",
        best_of(samples, || {
            dpz_core::decompress(black_box(&strict_bytes)).unwrap();
        }),
    );
    record(
        "sz_canary",
        best_of(samples, || {
            dpz_sz::compress(black_box(&ds.data), &ds.dims, &sz_cfg);
        }),
    );
    (out, stages)
}

/// The fresh measurements as the JSON `gate` document the baseline embeds.
/// The `host` section records the kernel backend and worker count the
/// numbers were taken with, so a later gate run can refuse to compare
/// across incompatible hosts.
fn to_json(
    samples: usize,
    measured: &[Measurement],
    stages: &[StageRow],
    quality: &[QualityReport],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&format!(
        "  \"host\": {{ \"backend\": \"{}\", \"threads\": {} }},\n",
        dpz_kernels::backend_name(),
        rayon::current_num_threads()
    ));
    s.push_str("  \"gate\": {\n");
    for (i, m) in measured.iter().enumerate() {
        let sep = if i + 1 == measured.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{}\": {{ \"ms\": {:.3}, \"mb_per_s\": {:.1} }}{sep}\n",
            m.name, m.ms, m.mb_per_s
        ));
    }
    s.push_str("  },\n");
    s.push_str("  \"stages\": {\n");
    for (i, row) in stages.iter().enumerate() {
        let sep = if i + 1 == stages.len() { "" } else { "," };
        let fields = STAGE_NAMES
            .iter()
            .zip(row.ms)
            .map(|(stage, ms)| format!("\"{stage}\": {ms:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!("    \"{}\": {{ {fields} }}{sep}\n", row.name));
    }
    s.push_str("  },\n");
    s.push_str("  \"quality\": {\n");
    for (i, r) in quality.iter().enumerate() {
        let sep = if i + 1 == quality.len() { "" } else { "," };
        s.push_str(&format!("    \"{}\": {}{sep}\n", r.codec, r.to_json()));
    }
    s.push_str("  }\n}\n");
    s
}

/// Baseline `gate.<name>.ms` values from a `BENCH_pr*.json` document.
fn baseline_ms(doc: &JsonValue, name: &str) -> Option<f64> {
    doc.get("gate")?.get(name)?.get("ms")?.as_f64()
}

/// Why the baseline host is incomparable to this one, if it is. The SZ
/// canary corrects for clock-speed drift but not for a different SIMD
/// backend or worker count — those scale each path unevenly, so comparing
/// across them silently mis-gates. A baseline without a `host` section
/// (pre-PR7 files) is accepted with a warning instead.
fn host_mismatch(doc: &JsonValue) -> Option<String> {
    let host = match doc.get("host") {
        Some(h) => h,
        None => {
            eprintln!("perf_gate: warning: baseline records no host section; cannot verify backend/thread match");
            return None;
        }
    };
    let base_backend = host.get("backend").and_then(JsonValue::as_str);
    let base_threads = host.get("threads").and_then(JsonValue::as_f64);
    let backend = dpz_kernels::backend_name();
    let threads = rayon::current_num_threads() as f64;
    if base_backend.is_some_and(|b| b != backend) {
        return Some(format!(
            "baseline was measured with kernel backend '{}', this host uses '{backend}'",
            base_backend.unwrap_or_default()
        ));
    }
    if base_threads.is_some_and(|t| t != threads) {
        return Some(format!(
            "baseline was measured with {} worker threads, this host uses {threads}",
            base_threads.unwrap_or_default()
        ));
    }
    None
}

/// Names of paths whose canary-normalized fresh time exceeds the baseline
/// by more than `max_regress_pct`, with their regression percentages.
fn regressions(
    fresh: &[Measurement],
    doc: &JsonValue,
    max_regress_pct: f64,
) -> Result<Vec<(String, f64)>, String> {
    let fresh_canary = fresh
        .iter()
        .find(|m| m.name == "sz_canary")
        .ok_or("fresh run has no sz_canary")?;
    let base_canary = baseline_ms(doc, "sz_canary").ok_or("baseline has no gate.sz_canary.ms")?;
    let scale = base_canary / fresh_canary.ms;
    let mut out = Vec::new();
    for m in fresh.iter().filter(|m| m.name != "sz_canary") {
        let Some(base) = baseline_ms(doc, m.name) else {
            return Err(format!("baseline has no gate.{}.ms", m.name));
        };
        let pct = 100.0 * (m.ms * scale / base - 1.0);
        if pct > max_regress_pct {
            out.push((m.name.to_string(), pct));
        }
    }
    Ok(out)
}

fn fail(msg: &str) -> ! {
    eprintln!("perf_gate: {msg}");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<String> = None;
    let mut out: Option<String> = None;
    let mut samples = 5usize;
    let mut max_regress = 10.0f64;
    let mut with_trace = false;
    let mut allow_backend_mismatch = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(value()),
            "--out" => out = Some(value()),
            "--samples" => {
                samples = value()
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail("--samples expects a positive integer"))
            }
            "--max-regress" => {
                max_regress = value()
                    .parse()
                    .ok()
                    .filter(|p: &f64| p.is_finite() && *p >= 0.0)
                    .unwrap_or_else(|| fail("--max-regress expects a percentage"))
            }
            "--trace" => with_trace = true,
            "--allow-backend-mismatch" => allow_backend_mismatch = true,
            other => fail(&format!(
                "unknown flag '{other}' (--baseline/--out/--samples/--max-regress/--trace/--allow-backend-mismatch)"
            )),
        }
    }

    // --trace measures with the event journal recording, to quantify the
    // instrumentation overhead against a default (journal-off) run.
    if with_trace {
        dpz_telemetry::trace::start();
    }
    let (measured, stages) = measure(samples);
    let quality = measure_quality();
    if with_trace {
        dpz_telemetry::trace::stop();
        let trace = dpz_telemetry::trace::drain();
        println!(
            "journal: {} events from {} threads ({} dropped)",
            trace.events.len(),
            trace.threads.len(),
            trace.dropped
        );
    }
    println!("perf_gate — Cldhgh/Small, best of {samples}");
    for m in &measured {
        println!(
            "  {:<24} {:>9.3} ms  {:>7.1} MB/s",
            m.name, m.ms, m.mb_per_s
        );
    }
    for row in &stages {
        let fields = STAGE_NAMES
            .iter()
            .zip(row.ms)
            .map(|(stage, ms)| format!("{stage} {ms:.2}"))
            .collect::<Vec<_>>()
            .join("  ");
        println!("  {:<24} [{fields}]", row.name);
    }
    for r in &quality {
        println!(
            "  {:<24} {:>7.2} dB  θ {:.3e}  CR {:.2}x",
            format!("quality_{}", r.codec),
            r.psnr_db,
            r.theta,
            r.cr_total
        );
    }
    if let Some(path) = &out {
        std::fs::write(path, to_json(samples, &measured, &stages, &quality))
            .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        println!("wrote {path}");
    }

    let Some(path) = baseline else { return };
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    let doc = json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    if let Some(why) = host_mismatch(&doc) {
        if allow_backend_mismatch {
            eprintln!("perf_gate: warning: {why} (continuing: --allow-backend-mismatch)");
        } else {
            fail(&format!(
                "{why}; refusing to compare (pass --allow-backend-mismatch to override)"
            ));
        }
    }
    // Quality diffs warn but never fail: quality is pinned byte-exactly by
    // the golden-artifact tests, so the gate's job here is visibility.
    for warning in quality_warnings(&quality, &doc) {
        eprintln!("gate: warning (non-blocking): quality: {warning}");
    }
    match regressions(&measured, &doc, max_regress) {
        Ok(regressed) if regressed.is_empty() => {
            println!("gate: OK (no path regressed > {max_regress:.0}% vs {path})");
        }
        Ok(regressed) => {
            for (name, pct) in &regressed {
                eprintln!("gate: {name} regressed {pct:.1}% (canary-normalized)");
            }
            std::process::exit(1);
        }
        Err(msg) => fail(&msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(name: &'static str, ms: f64) -> Measurement {
        Measurement {
            name,
            ms,
            mb_per_s: 1.0,
        }
    }

    #[test]
    fn gate_json_round_trips_and_flags_regressions() {
        let base = vec![
            fake("compress_dpz_loose", 10.0),
            fake("decompress_dpz_strict", 4.0),
            fake("sz_canary", 2.0),
        ];
        let stage_rows = vec![StageRow {
            name: "compress_dpz_loose",
            ms: [1.0, 0.5, 2.0, 0.25, 0.75],
        }];
        let quality = vec![QualityReport {
            dataset: "cldhgh".into(),
            codec: "dpz_loose".into(),
            n_values: 4096,
            value_range: 1.0,
            psnr_db: 72.0,
            mse: 1e-8,
            max_abs_error: 1e-3,
            theta: 1e-3,
            cr_total: 12.0,
            bit_rate: 2.6,
            cr_stage12: Some(2.0),
            cr_stage3: Some(4.0),
            cr_lossless: Some(1.5),
        }];
        let doc = json::parse(&to_json(5, &base, &stage_rows, &quality)).unwrap();
        assert_eq!(doc.get("samples").and_then(JsonValue::as_f64), Some(5.0));
        assert_eq!(baseline_ms(&doc, "sz_canary"), Some(2.0));

        // The quality section round-trips and diffs non-blockingly: an
        // identical fresh run raises no warnings, a worse one warns.
        let entry = doc
            .get("quality")
            .and_then(|q| q.get("dpz_loose"))
            .expect("quality.dpz_loose");
        assert_eq!(entry.get("psnr_db").and_then(JsonValue::as_f64), Some(72.0));
        assert!(quality_warnings(&quality, &doc).is_empty());
        let mut worse = quality.clone();
        worse[0].psnr_db = 70.0;
        worse[0].cr_total = 10.0;
        let warnings = quality_warnings(&worse, &doc);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("PSNR"), "{warnings:?}");

        // The per-stage breakdown round-trips alongside the gate totals
        // and uses the pipeline stage names.
        let row = doc
            .get("stages")
            .and_then(|s| s.get("compress_dpz_loose"))
            .expect("stages.compress_dpz_loose");
        assert_eq!(row.get("pca").and_then(JsonValue::as_f64), Some(2.0));
        for stage in STAGE_NAMES {
            assert!(row.get(stage).is_some(), "missing stage {stage}");
        }

        // Identical fresh run: nothing regresses.
        assert!(regressions(&base, &doc, 10.0).unwrap().is_empty());

        // A 50% slowdown on one path trips the gate...
        let slow = vec![
            fake("compress_dpz_loose", 15.0),
            fake("decompress_dpz_strict", 4.0),
            fake("sz_canary", 2.0),
        ];
        let regressed = regressions(&slow, &doc, 10.0).unwrap();
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].0, "compress_dpz_loose");
        assert!((regressed[0].1 - 50.0).abs() < 1e-9);

        // ...unless the canary slowed down identically (host drift).
        let drift = vec![
            fake("compress_dpz_loose", 15.0),
            fake("decompress_dpz_strict", 6.0),
            fake("sz_canary", 3.0),
        ];
        assert!(regressions(&drift, &doc, 10.0).unwrap().is_empty());

        // Missing baseline entries are a hard error, not a silent pass.
        let doc = json::parse(r#"{"gate": {"sz_canary": {"ms": 2.0}}}"#).unwrap();
        assert!(regressions(&base, &doc, 10.0).is_err());
    }

    #[test]
    fn host_mismatch_detection() {
        // Matching host: comparable.
        let same = format!(
            r#"{{"host": {{"backend": "{}", "threads": {}}}, "gate": {{}}}}"#,
            dpz_kernels::backend_name(),
            rayon::current_num_threads()
        );
        assert!(host_mismatch(&json::parse(&same).unwrap()).is_none());

        // Different backend: refused.
        let other = r#"{"host": {"backend": "not-a-real-backend", "threads": 1}, "gate": {}}"#;
        let why = host_mismatch(&json::parse(other).unwrap()).expect("mismatch");
        assert!(why.contains("not-a-real-backend"), "{why}");

        // Different thread count: refused.
        let other = format!(
            r#"{{"host": {{"backend": "{}", "threads": 100000}}, "gate": {{}}}}"#,
            dpz_kernels::backend_name()
        );
        let why = host_mismatch(&json::parse(&other).unwrap()).expect("mismatch");
        assert!(why.contains("worker threads"), "{why}");

        // Legacy baseline without a host section: comparable (with warning).
        assert!(host_mismatch(&json::parse(r#"{"gate": {}}"#).unwrap()).is_none());
    }
}
