//! Figure 6: rate-distortion (PSNR vs bit-rate) of DPZ-l, DPZ-s, SZ and ZFP
//! on the evaluation datasets. DPZ sweeps TVE "three-nine" → "eight-nine";
//! SZ sweeps range-relative error bounds; ZFP sweeps fixed precisions.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_bench::runners::{
    run_dpz, run_sz_auto_relative, run_sz_relative, run_zfp, RunResult, SZ_REL_BOUNDS,
    ZFP_PRECISIONS,
};
use dpz_core::{DpzConfig, TveLevel};
use dpz_data::{standard_suite, Dataset};
use dpz_zfp::ZfpMode;

fn dpz_sweep(ds: &Dataset, cfg_base: DpzConfig, label: &str, rows: &mut Vec<Vec<String>>) {
    for level in TveLevel::SWEEP {
        let cfg = cfg_base.with_tve(level);
        match run_dpz(ds, &cfg, label, &format!("tve={}nines", level.nines())) {
            Ok((run, _)) => rows.push(row(ds, &run)),
            Err(e) => eprintln!("{label} {} tve={}: {e}", ds.name, level.nines()),
        }
    }
}

fn row(ds: &Dataset, run: &RunResult) -> Vec<String> {
    vec![
        ds.name.clone(),
        run.label.clone(),
        run.setting.clone(),
        fmt(run.report.bit_rate),
        fmt(run.report.psnr),
        fmt(run.report.compression_ratio),
        fmt(run.report.mean_rel_error),
    ]
}

fn main() {
    let args = Args::parse();
    let header = [
        "dataset", "method", "setting", "bitrate", "psnr_db", "cr", "theta",
    ];
    let mut rows = Vec::new();
    for ds in standard_suite(args.scale) {
        eprintln!("== {} ==", ds.name);
        dpz_sweep(&ds, DpzConfig::loose(), "DPZ-l", &mut rows);
        dpz_sweep(&ds, DpzConfig::strict(), "DPZ-s", &mut rows);
        for rel in SZ_REL_BOUNDS {
            match run_sz_relative(&ds, rel) {
                Ok(run) => rows.push(row(&ds, &run)),
                Err(e) => eprintln!("SZ {} rel={rel}: {e}", ds.name),
            }
            // SZ 2.0's hybrid Lorenzo/regression predictor.
            match run_sz_auto_relative(&ds, rel) {
                Ok(run) => rows.push(row(&ds, &run)),
                Err(e) => eprintln!("SZ-auto {} rel={rel}: {e}", ds.name),
            }
        }
        for prec in ZFP_PRECISIONS {
            match run_zfp(&ds, ZfpMode::FixedPrecision(prec)) {
                Ok(run) => rows.push(row(&ds, &run)),
                Err(e) => eprintln!("ZFP {} prec={prec}: {e}", ds.name),
            }
        }
        // Fixed-rate points give exact bit-rate anchors on the same curve.
        for rate in [1.0f64, 2.0, 4.0, 8.0] {
            match run_zfp(&ds, ZfpMode::FixedRate(rate)) {
                Ok(mut run) => {
                    run.label = "ZFP-rate".to_string();
                    rows.push(row(&ds, &run));
                }
                Err(e) => eprintln!("ZFP {} rate={rate}: {e}", ds.name),
            }
        }
    }
    println!("Figure 6 — rate-distortion on the evaluation suite\n");
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "fig6_rate_distortion", &header, &rows).expect("write csv");
    println!("csv: {}", path.display());
}
