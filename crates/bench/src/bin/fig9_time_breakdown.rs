//! Figure 9: breakdown of DPZ compression time per stage across the
//! evaluation suite. The paper's observation: stages 2 (PCA) and 3
//! (quantization + encoding) dominate.

use dpz_bench::harness::{format_table, write_csv, Args};
use dpz_core::{compress, DpzConfig, TveLevel};
use dpz_data::standard_suite;

fn main() {
    let args = Args::parse();
    let cfg = DpzConfig::strict().with_tve(TveLevel::FiveNines);
    let header = [
        "dataset", "total_ms", "stage1_dct_%", "stage2_pca_%", "stage3_quant_%", "lossless_%",
    ];
    let mut rows = Vec::new();
    for ds in standard_suite(args.scale) {
        match compress(&ds.data, &ds.dims, &cfg) {
            Ok(out) => {
                let t = out.stats.timings;
                let total = t.total().as_secs_f64().max(1e-12);
                let pct = |d: std::time::Duration| format!("{:.1}", 100.0 * d.as_secs_f64() / total);
                rows.push(vec![
                    ds.name.clone(),
                    format!("{:.1}", total * 1e3),
                    pct(t.decompose_dct),
                    pct(t.pca),
                    pct(t.quantize),
                    pct(t.lossless),
                ]);
            }
            Err(e) => eprintln!("{}: {e}", ds.name),
        }
    }
    println!("Figure 9 — DPZ compression-time breakdown (DPZ-s, five-nine TVE)\n");
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "fig9_time_breakdown", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
