//! Figure 9: breakdown of DPZ compression time per stage across the
//! evaluation suite. The paper's observation: stages 2 (PCA) and 3
//! (quantization + encoding) dominate.
//!
//! Stage timings come from the global telemetry registry
//! (`dpz_stage_seconds{stage=…}` histogram sums, captured as a per-dataset
//! snapshot delta), and the accumulated registry is written alongside the
//! CSV as a Prometheus sidecar.

use dpz_bench::harness::{
    format_table, stage_seconds, write_csv, write_metrics_sidecar, write_trace_sidecar, Args,
    STAGES,
};
use dpz_core::{compress, DpzConfig, TveLevel};
use dpz_data::standard_suite;

fn main() {
    let args = Args::parse();
    let cfg = DpzConfig::strict().with_tve(TveLevel::FiveNines);
    // Record the whole suite into the event journal; it is written next to
    // the .prom sidecar as a Perfetto-loadable trace.
    dpz_telemetry::trace::start();
    let header = [
        "dataset",
        "total_ms",
        "stage1_dct_%",
        "sampling_%",
        "stage2_pca_%",
        "stage3_quant_%",
        "lossless_%",
    ];
    let mut rows = Vec::new();
    let run_start = dpz_telemetry::global().snapshot();
    for ds in standard_suite(args.scale) {
        let before = dpz_telemetry::global().snapshot();
        match compress(&ds.data, &ds.dims, &cfg) {
            Ok(_) => {
                let delta = dpz_telemetry::global().snapshot().since(&before);
                let stages = stage_seconds(&delta);
                let total: f64 = stages.iter().sum::<f64>().max(1e-12);
                let mut row = vec![ds.name.clone(), format!("{:.1}", total * 1e3)];
                row.extend(stages.iter().map(|s| format!("{:.1}", 100.0 * s / total)));
                rows.push(row);
            }
            Err(e) => eprintln!("{}: {e}", ds.name),
        }
    }
    println!("Figure 9 — DPZ compression-time breakdown (DPZ-s, five-nine TVE)\n");
    println!("stages: {}\n", STAGES.join(" -> "));
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "fig9_time_breakdown", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
    let suite_delta = dpz_telemetry::global().snapshot().since(&run_start);
    let prom = write_metrics_sidecar(&args.out_dir, "fig9_time_breakdown", &suite_delta)
        .expect("metrics sidecar");
    println!("metrics: {}", prom.display());
    dpz_telemetry::trace::stop();
    let events = dpz_telemetry::trace::drain();
    let trace =
        write_trace_sidecar(&args.out_dir, "fig9_time_breakdown", &events).expect("trace sidecar");
    println!("trace: {}", trace.display());
}
