//! Table I: the evaluation dataset inventory — source, type, dimensions and
//! size, at both the current run scale and the paper's full scale.

use dpz_bench::harness::{format_table, write_csv, Args};
use dpz_data::{Dataset, DatasetKind, Scale};

fn main() {
    let args = Args::parse();
    let header = [
        "source",
        "dataset",
        "type",
        "ndims",
        "dims(run)",
        "values",
        "MB(run)",
        "dims(paper)",
    ];
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let ds = Dataset::generate(kind, args.scale, args.seed);
        let ty = match kind.source() {
            "JHTDB" => "Turbulence simulation",
            "HACC" => "Cosmology particle simulation",
            _ => "Climate simulation",
        };
        let fmt_dims = |d: &[usize]| {
            d.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("x")
        };
        rows.push(vec![
            kind.source().to_string(),
            ds.name.clone(),
            ty.to_string(),
            kind.ndims().to_string(),
            fmt_dims(&ds.dims),
            ds.len().to_string(),
            format!("{:.2}", ds.nbytes() as f64 / 1e6),
            fmt_dims(&Scale::Paper.dims(kind)),
        ]);
    }
    println!(
        "Table I — scientific datasets (synthetic analogues, seed {})\n",
        args.seed
    );
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "table1_datasets", &header, &rows).expect("write csv");
    println!("csv: {}", path.display());
}
