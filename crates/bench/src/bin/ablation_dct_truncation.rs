//! Ablation (the paper's stated future work, Section VII): truncating DCT
//! coefficients *before* PCA. Keeping only the first `T·N` coefficient rows
//! shrinks the PCA sample set (faster stage 2) and the score matrix (higher
//! ratio) at the cost of discarding the high-frequency tail outright.
//! This harness sweeps the truncation fraction and reports the tradeoff.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_core::decompose::{choose_shape, dct_blocks, from_blocks, idct_blocks, to_blocks};
use dpz_core::quantize::{dequantize_scores, quantize_scores};
use dpz_core::{Scheme, TveLevel};
use dpz_data::metrics::psnr;
use dpz_data::{Dataset, DatasetKind};
use dpz_deflate::{compress_with_level, CompressionLevel};
use dpz_linalg::{Matrix, Pca, PcaOptions};
use std::time::Instant;

const FRACTIONS: [f64; 5] = [1.0, 0.5, 0.25, 0.125, 0.0625];

fn main() {
    let args = Args::parse();
    let ds = Dataset::generate(DatasetKind::Fldsc, args.scale, args.seed);
    let shape = choose_shape(ds.len());

    // Stage 1 (shared): normalize + decompose + DCT.
    let (lo, hi) = ds
        .data
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(f64::from(v)), hi.max(f64::from(v)))
        });
    let range = if hi > lo { hi - lo } else { 1.0 };
    let mut blocks = to_blocks(&ds.data, shape);
    for v in blocks.as_mut_slice() {
        *v = (*v - lo) / range - 0.5;
    }
    let coeffs = dct_blocks(&blocks);
    let (n, m) = coeffs.shape();

    let header = [
        "truncation",
        "rows_kept",
        "k",
        "pca_ms",
        "est_cr",
        "psnr_db",
    ];
    let mut rows = Vec::new();
    for frac in FRACTIONS {
        let keep_rows = ((n as f64 * frac).round() as usize).clamp(2, n);
        // Leading coefficient rows only.
        let mut head = Matrix::zeros(keep_rows, m);
        for r in 0..keep_rows {
            head.row_mut(r).copy_from_slice(coeffs.row(r));
        }

        let t = Instant::now();
        let pca = Pca::fit(&head, PcaOptions::default()).expect("pca");
        let k = pca.k_for_tve(TveLevel::FiveNines.fraction());
        let scores = pca.transform(&head, k).expect("transform");
        let pca_ms = t.elapsed().as_secs_f64() * 1e3;

        let quantized = quantize_scores(scores.as_slice(), Scheme::Strict);
        // Estimated compressed size: deflated indices + outliers + model.
        let packed_idx = compress_with_level(&quantized.indices, CompressionLevel::Default).len();
        let outlier_bytes: Vec<u8> = quantized
            .outliers
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let packed_out = compress_with_level(&outlier_bytes, CompressionLevel::Default).len();
        let model_bytes: Vec<u8> = pca
            .projection(k)
            .as_slice()
            .iter()
            .chain(pca.mean())
            .flat_map(|&v| (v as f32).to_le_bytes())
            .collect();
        let packed_model = compress_with_level(&model_bytes, CompressionLevel::Default).len();
        let est_cr = ds.nbytes() as f64 / (packed_idx + packed_out + packed_model).max(1) as f64;

        // Reconstruct: inverse PCA on the head, zero tail, inverse DCT.
        let score_mat =
            Matrix::from_vec(keep_rows, k, dequantize_scores(&quantized)).expect("scores");
        let head_recon = pca.inverse_transform(&score_mat).expect("inverse");
        let mut full = Matrix::zeros(n, m);
        for r in 0..keep_rows {
            full.row_mut(r).copy_from_slice(head_recon.row(r));
        }
        let mut recon_blocks = idct_blocks(&full);
        for v in recon_blocks.as_mut_slice() {
            *v = (*v + 0.5) * range + lo;
        }
        let recon = from_blocks(&recon_blocks, shape, ds.len());

        rows.push(vec![
            format!("{frac:.4}"),
            keep_rows.to_string(),
            k.to_string(),
            fmt(pca_ms),
            fmt(est_cr),
            fmt(psnr(&ds.data, &recon)),
        ]);
    }
    println!(
        "Ablation — DCT-coefficient truncation before PCA on FLDSC (DPZ-s core, five-nine TVE)\n"
    );
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "ablation_dct_truncation", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
