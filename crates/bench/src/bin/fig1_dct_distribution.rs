//! Figure 1: the value distribution of FLDSC before and after the
//! deterministic transform (DCT). The paper's observation: the coefficient
//! distribution concentrates near zero with a heavy DC head, so keeping a
//! few leading coefficients preserves the data's shape.

use dpz_bench::harness::{format_table, histogram, write_csv, Args};
use dpz_core::decompose;
use dpz_data::{Dataset, DatasetKind};

const BINS: usize = 40;

fn main() {
    let args = Args::parse();
    let ds = Dataset::generate(DatasetKind::Fldsc, args.scale, args.seed);

    // (a) flattened original data.
    let (orig_centers, orig_counts) = histogram(&ds.data, BINS);

    // (b) DCT coefficients of the decomposed blocks.
    let shape = decompose::choose_shape(ds.len());
    let coeffs = decompose::dct_blocks(&decompose::to_blocks(&ds.data, shape));
    let coeff_values: Vec<f32> = coeffs.as_slice().iter().map(|&v| v as f32).collect();
    let (dct_centers, dct_counts) = histogram(&coeff_values, BINS);

    let header = [
        "bin",
        "orig_center",
        "orig_count",
        "dct_center",
        "dct_count",
    ];
    let rows: Vec<Vec<String>> = (0..BINS)
        .map(|b| {
            vec![
                b.to_string(),
                format!("{:.4}", orig_centers[b]),
                orig_counts[b].to_string(),
                format!("{:.4}", dct_centers[b]),
                dct_counts[b].to_string(),
            ]
        })
        .collect();
    println!(
        "Figure 1 — FLDSC distribution, original vs DCT coefficients (M={} N={})\n",
        shape.m, shape.n
    );
    println!("{}", format_table(&header, &rows));

    // The paper's qualitative claim: coefficients concentrate near zero.
    let near_zero_bin = dct_centers
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    let frac = dct_counts[near_zero_bin] as f64 / coeff_values.len() as f64;
    println!(
        "fraction of coefficients in the zero-centered bin: {:.1}%",
        frac * 100.0
    );

    let path =
        write_csv(&args.out_dir, "fig1_dct_distribution", &header, &rows).expect("write csv");
    println!("csv: {}", path.display());
}
