//! Z-checker-style quality assessment report: roundtrips a dataset through
//! every operating point of the quality-target control plane — legacy
//! bounds, fixed-ratio, fixed-PSNR, and the baselines — and emits one
//! [`QualityReport`](dpz_bench::quality::QualityReport) per combination as
//! a table, a CSV, and a JSON document (`quality_report.json`) that CI
//! archives and `perf_gate` diffs non-blockingly.
//!
//! ```text
//! quality_report [--scale tiny|small|default|paper] [--seed N] [--out DIR]
//! ```

use dpz_bench::harness::{self, Args};
use dpz_bench::quality::{reports_to_json, QualityReport};
use dpz_codec::{Codec, DpzCodec, SzCodec, ZfpCodec};
use dpz_core::{DpzConfig, QualityTarget};
use dpz_data::{Dataset, DatasetKind};

/// Assess one codec at one target on one dataset.
fn assess(
    ds: &Dataset,
    label: &str,
    codec: &dyn Codec,
    target: Option<QualityTarget>,
) -> Option<QualityReport> {
    let mut bytes = Vec::new();
    let stats = match target {
        Some(t) => codec.compress_with_target(&ds.data, &ds.dims, &t, &mut bytes),
        None => codec.compress_into(&ds.data, &ds.dims, &mut bytes),
    };
    let stats = match stats {
        Ok(s) => s,
        Err(e) => {
            eprintln!("quality_report: {}/{label}: {e} (skipped)", ds.name);
            return None;
        }
    };
    let decoded = codec.decompress_from(&mut &bytes[..]).ok()?;
    Some(QualityReport::assess(
        &ds.name,
        label,
        &ds.data,
        &decoded.values,
        bytes.len(),
        stats.dpz.as_ref(),
    ))
}

fn main() {
    let args = Args::parse();
    let ds = Dataset::generate(DatasetKind::Cldhgh, args.scale, args.seed);

    let dpz = DpzCodec::new(DpzConfig::loose());
    let sz = SzCodec::default();
    let zfp = ZfpCodec::default();
    let runs: Vec<(&str, &dyn Codec, Option<QualityTarget>)> = vec![
        ("dpz-loose", &dpz, Some(QualityTarget::ErrorBound(1e-3))),
        ("dpz-strict", &dpz, Some(QualityTarget::ErrorBound(1e-4))),
        ("dpz-rel1e-3", &dpz, Some(QualityTarget::RelBound(1e-3))),
        (
            "dpz-ratio8",
            &dpz,
            Some(QualityTarget::Ratio {
                target: 8.0,
                tol: 0.1,
            }),
        ),
        ("dpz-psnr60", &dpz, Some(QualityTarget::Psnr(60.0))),
        ("sz-rel1e-3", &sz, Some(QualityTarget::RelBound(1e-3))),
        ("zfp-rel1e-3", &zfp, Some(QualityTarget::RelBound(1e-3))),
    ];

    let reports: Vec<QualityReport> = runs
        .into_iter()
        .filter_map(|(label, codec, target)| assess(&ds, label, codec, target))
        .collect();

    println!(
        "quality_report — {} ({} values, range {:.3e})",
        ds.name,
        ds.len(),
        reports.first().map_or(0.0, |r| r.value_range)
    );
    println!(
        "  {:<14} {:>9} {:>11} {:>11} {:>8} {:>8}",
        "codec", "psnr dB", "max err", "theta", "CR", "bits/val"
    );
    for r in &reports {
        println!(
            "  {:<14} {:>9.2} {:>11.3e} {:>11.3e} {:>8.2} {:>8.3}",
            r.codec, r.psnr_db, r.max_abs_error, r.theta, r.cr_total, r.bit_rate
        );
    }

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.codec.clone(),
                format!("{:.3}", r.psnr_db),
                format!("{:.6e}", r.max_abs_error),
                format!("{:.6e}", r.theta),
                format!("{:.4}", r.cr_total),
                format!("{:.4}", r.bit_rate),
            ]
        })
        .collect();
    let csv = harness::write_csv(
        &args.out_dir,
        "quality_report",
        &[
            "codec",
            "psnr_db",
            "max_abs_error",
            "theta",
            "cr_total",
            "bit_rate",
        ],
        &rows,
    )
    .expect("write CSV");
    let json_path = args.out_dir.join("quality_report.json");
    std::fs::write(&json_path, reports_to_json(&reports)).expect("write JSON");
    println!("wrote {} and {}", csv.display(), json_path.display());
}
