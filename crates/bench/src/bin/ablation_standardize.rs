//! Ablation: standardization policy. Section IV-B argues that rescaling
//! features to unit variance redistributes the variance weight of the
//! equal-unit DCT blocks — so DPZ standardizes only low-linearity data
//! (VIF < 5, per the sampling probe). This harness measures CR/PSNR with
//! standardization forced on and off across the suite.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_bench::runners::run_dpz;
use dpz_core::{DpzConfig, Standardize, TveLevel};
use dpz_data::standard_suite;

fn main() {
    let args = Args::parse();
    let header = ["dataset", "standardize", "k", "cr", "psnr_db"];
    let mut rows = Vec::new();
    for ds in standard_suite(args.scale) {
        for (label, mode) in [("off", Standardize::Off), ("on", Standardize::On)] {
            let cfg = DpzConfig::strict()
                .with_tve(TveLevel::FiveNines)
                .with_standardize(mode);
            match run_dpz(&ds, &cfg, "DPZ-s", label) {
                Ok((run, stats)) => rows.push(vec![
                    ds.name.clone(),
                    label.to_string(),
                    stats.k.to_string(),
                    fmt(run.report.compression_ratio),
                    fmt(run.report.psnr),
                ]),
                Err(e) => eprintln!("{} {label}: {e}", ds.name),
            }
        }
    }
    println!("Ablation — standardization on/off (DPZ-s, five-nine TVE)\n");
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "ablation_standardize", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
