//! Figure 7: visual comparison on CLDHGH. Two operating points, as in the
//! paper: (b)-(d) all compressors pinned to roughly the same compression
//! ratio (~10.5×), reporting who delivers the best PSNR there; (d)-(f) all
//! pinned to roughly the same PSNR (~26 dB), reporting who delivers the
//! highest CR. Renders the original and every reconstruction as PGM images.

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_bench::runners::{run_dpz, run_sz_relative, run_zfp, RunResult};
use dpz_core::{DpzConfig, TveLevel};
use dpz_data::pgm::write_pgm;
use dpz_data::{Dataset, DatasetKind};
use dpz_zfp::ZfpMode;

fn candidate_runs(ds: &Dataset) -> Vec<RunResult> {
    let mut runs = Vec::new();
    for level in TveLevel::SWEEP {
        if let Ok((run, _)) = run_dpz(
            ds,
            &DpzConfig::strict().with_tve(level),
            "DPZ-s",
            &format!("tve={}nines", level.nines()),
        ) {
            runs.push(run);
        }
    }
    for rel in [1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 1e-4, 1e-5] {
        if let Ok(run) = run_sz_relative(ds, rel) {
            runs.push(run);
        }
    }
    for prec in [4u32, 6, 8, 10, 12, 16, 20, 24] {
        if let Ok(run) = run_zfp(ds, ZfpMode::FixedPrecision(prec)) {
            runs.push(run);
        }
    }
    runs
}

/// For each method, the run whose `key` is closest to `target` (log scale).
fn closest(runs: &[RunResult], target: f64, key: impl Fn(&RunResult) -> f64) -> Vec<&RunResult> {
    let mut picks = Vec::new();
    for method in ["DPZ-s", "SZ", "ZFP"] {
        if let Some(best) = runs
            .iter()
            .filter(|r| r.label == method && key(r).is_finite() && key(r) > 0.0)
            .min_by(|a, b| {
                let da = (key(a).ln() - target.ln()).abs();
                let db = (key(b).ln() - target.ln()).abs();
                da.partial_cmp(&db).unwrap()
            })
        {
            picks.push(best);
        }
    }
    picks
}

fn main() {
    let args = Args::parse();
    let ds = Dataset::generate(DatasetKind::Cldhgh, args.scale, args.seed);
    let runs = candidate_runs(&ds);

    std::fs::create_dir_all(&args.out_dir).expect("out dir");
    write_pgm(
        args.out_dir.join("fig7_original.pgm"),
        &ds.data,
        ds.dims[0],
        ds.dims[1],
    )
    .expect("pgm");

    let header = ["regime", "method", "setting", "cr", "psnr_db"];
    let mut rows = Vec::new();
    for (regime, target, by_cr) in [("CR~10.5x", 10.5, true), ("PSNR~26dB", 26.0, false)] {
        let picks = if by_cr {
            closest(&runs, target, |r| r.report.compression_ratio)
        } else {
            closest(&runs, target, |r| r.report.psnr)
        };
        for run in picks {
            rows.push(vec![
                regime.to_string(),
                run.label.clone(),
                run.setting.clone(),
                fmt(run.report.compression_ratio),
                fmt(run.report.psnr),
            ]);
            let name = format!(
                "fig7_{}_{}.pgm",
                regime.replace(['~', '.'], "_"),
                run.label.replace('-', "_")
            );
            write_pgm(
                args.out_dir.join(&name),
                &run.reconstructed,
                ds.dims[0],
                ds.dims[1],
            )
            .expect("pgm");
        }
    }
    println!("Figure 7 — CLDHGH visual comparison operating points\n");
    println!("{}", format_table(&header, &rows));
    println!(
        "(PGM renders of the original and every pick are in {})",
        args.out_dir.display()
    );
    let path = write_csv(&args.out_dir, "fig7_visualization", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
