//! Table II: compression with knee-point detection, comparing the 1-D and
//! polynomial curve fits for both DPZ schemes on the paper's six selected
//! datasets (Isotropic, Channel, CLDHGH, PHIS, HACC-x, HACC-vx).

use dpz_bench::harness::{fmt, format_table, write_csv, Args};
use dpz_bench::runners::run_dpz;
use dpz_core::{DpzConfig, KSelection};
use dpz_data::{Dataset, DatasetKind};
use dpz_linalg::fit::FitKind;

const SELECTED: [DatasetKind; 6] = [
    DatasetKind::Isotropic,
    DatasetKind::Channel,
    DatasetKind::Cldhgh,
    DatasetKind::Phis,
    DatasetKind::HaccX,
    DatasetKind::HaccVx,
];

fn main() {
    let args = Args::parse();
    let header = [
        "dataset",
        "scheme",
        "fit",
        "k",
        "cr",
        "psnr_db",
        "mean_theta",
    ];
    let mut rows = Vec::new();
    for kind in SELECTED {
        let ds = Dataset::generate(kind, args.scale, args.seed);
        eprintln!("== {} ==", ds.name);
        for (scheme_label, base) in [
            ("DPZ-l", DpzConfig::loose()),
            ("DPZ-s", DpzConfig::strict()),
        ] {
            for (fit_label, fit) in [("1D", FitKind::Interp1d), ("polyn", FitKind::Polynomial(7))] {
                let cfg = base.with_selection(KSelection::KneePoint(fit));
                match run_dpz(&ds, &cfg, scheme_label, fit_label) {
                    Ok((run, stats)) => rows.push(vec![
                        ds.name.clone(),
                        scheme_label.to_string(),
                        fit_label.to_string(),
                        stats.k.to_string(),
                        fmt(run.report.compression_ratio),
                        fmt(run.report.psnr),
                        fmt(run.report.mean_rel_error),
                    ]),
                    Err(e) => eprintln!("{} {} {}: {e}", ds.name, scheme_label, fit_label),
                }
            }
        }
    }
    println!("Table II — knee-point detection compression (1D vs polynomial fits)\n");
    println!("{}", format_table(&header, &rows));
    let path = write_csv(&args.out_dir, "table2_kneepoint", &header, &rows).expect("csv");
    println!("csv: {}", path.display());
}
