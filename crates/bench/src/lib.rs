//! # dpz-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the DPZ paper's evaluation (Section V). One binary per experiment — see
//! DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
//! paper-vs-measured results. All binaries accept:
//!
//! ```text
//! --scale tiny|small|default|paper   dataset size (default: default)
//! --seed N                           generator seed (default: 2021)
//! --out DIR                          result directory (default: results/)
//! ```
//!
//! Each binary prints a human-readable table to stdout and writes the same
//! series as CSV under the result directory.

#![warn(missing_docs)]

pub mod harness;
pub mod quality;
pub mod runners;
