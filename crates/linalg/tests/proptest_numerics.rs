//! Property tests over the numerical substrate: transform invertibility,
//! energy preservation, eigen/PCA invariants on arbitrary well-formed
//! inputs.

use dpz_linalg::wavelet::{dwt_forward, dwt_inverse, max_levels_for, Wavelet};
use dpz_linalg::{dct2, dct3, sym_eigen, Matrix, Pca, PcaOptions, RangeFinderOptions};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 2..max_len)
}

/// Low-rank-plus-noise data matrix (`n x m`): `r` separable smooth factors
/// with decaying amplitudes plus tiny xorshift noise — the spectrum shape
/// the randomized range-finder is built for, with randomized geometry,
/// factor frequencies and noise realization.
fn low_rank_plus_noise(n: usize, m: usize, r: usize, seed: u64) -> Matrix {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let freqs: Vec<(f64, f64)> = (0..r)
        .map(|_| (0.01 + next().abs(), 0.01 + next().abs()))
        .collect();
    let mut x = Matrix::zeros(n, m);
    for i in 0..n {
        for j in 0..m {
            let mut v = 0.0;
            for (f, (fr, fc)) in freqs.iter().enumerate() {
                let amp = 10.0 / (1.0 + f as f64);
                v += amp * (fr * i as f64).sin() * (fc * j as f64).cos();
            }
            x.set(i, j, v + 1e-3 * next());
        }
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dct_round_trip_any_length(x in finite_vec(600)) {
        let y = dct3(&dct2(&x));
        let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-8 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn dct_preserves_energy(x in finite_vec(400)) {
        let y = dct2(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        prop_assert!((ex - ey).abs() <= 1e-8 * ex.max(1.0));
    }

    #[test]
    fn dwt_round_trip(x in finite_vec(512), wavelet_pick in 0u8..2, levels in 1usize..5) {
        let wavelet = if wavelet_pick == 0 { Wavelet::Haar } else { Wavelet::Db4 };
        let levels = max_levels_for(x.len(), levels);
        let mut buf = x.clone();
        if dwt_forward(&mut buf, wavelet, levels).is_ok() {
            dwt_inverse(&mut buf, wavelet, levels).unwrap();
            let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (a, b) in x.iter().zip(&buf) {
                prop_assert!((a - b).abs() < 1e-8 * scale);
            }
        }
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrices(
        vals in proptest::collection::vec(-100.0f64..100.0, 1..36),
    ) {
        // Build a symmetric matrix from the lower triangle of the input.
        let n = ((vals.len() * 2) as f64).sqrt() as usize;
        let n = n.clamp(1, 6);
        let mut a = Matrix::zeros(n, n);
        let mut it = vals.iter().cycle();
        for i in 0..n {
            for j in 0..=i {
                let v = *it.next().unwrap();
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        let eig = sym_eigen(&a).unwrap();
        // Trace preserved.
        let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
        let sum: f64 = eig.eigenvalues.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6 * trace.abs().max(1.0));
        // V diag(l) V^T == A.
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam.set(i, i, eig.eigenvalues[i]);
        }
        let recon = eig
            .eigenvectors
            .matmul(&lam)
            .unwrap()
            .matmul(&eig.eigenvectors.transpose())
            .unwrap();
        prop_assert!(recon.max_abs_diff(&a) < 1e-6 * trace.abs().max(100.0));
    }

    #[test]
    fn pca_full_rank_round_trip(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e3f64..1e3, 4),
            8..40,
        ),
    ) {
        let x = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let scores = pca.transform(&x, 4).unwrap();
        let recon = pca.inverse_transform(&scores).unwrap();
        prop_assert!(recon.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn pca_tve_is_monotone_in_k(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 5),
            10..30,
        ),
    ) {
        let x = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let tve = pca.cumulative_tve();
        for w in tve.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        prop_assert!(tve.last().map(|&v| v > 0.999999).unwrap_or(true));
    }

    #[test]
    fn randomized_fit_tve_tracks_full_solver(
        seed in any::<u64>(),
        r in 1usize..4,
        m in 72usize..112,
    ) {
        // `m >= 72` keeps the sketch (`s = k + 12`) on the randomized path
        // rather than the dense crossover, so the property exercises the
        // range-finder itself. The fitted model's own cumulative TVE is
        // exact for its basis, so comparing against the full eigensolve at
        // the same k bounds the sketch's subspace error directly.
        let x = low_rank_plus_noise(m + m / 2, m, r, seed);
        let k = r + 2;
        let full = Pca::fit(&x, PcaOptions::default()).unwrap();
        let rand = Pca::fit_randomized(&x, PcaOptions::default(), k, &RangeFinderOptions::default()).unwrap();
        let full_tve = full.cumulative_tve()[k - 1];
        let rand_tve = rand.cumulative_tve()[k - 1];
        prop_assert!(
            rand_tve >= full_tve - 1e-4,
            "randomized TVE {rand_tve} fell behind full solver {full_tve} (r={r}, m={m})"
        );
    }

    #[test]
    fn randomized_fit_is_deterministic_for_any_input(
        seed in any::<u64>(),
        m in 72usize..112,
    ) {
        // The probe matrix comes from a fixed per-fit seed, so two fits of
        // the same data must agree bit for bit — this is what makes
        // compressed artifacts reproducible across runs and hosts with the
        // same backend.
        let x = low_rank_plus_noise(m + 40, m, 3, seed);
        let rf = RangeFinderOptions::default();
        let a = Pca::fit_randomized(&x, PcaOptions::default(), 6, &rf).unwrap();
        let b = Pca::fit_randomized(&x, PcaOptions::default(), 6, &rf).unwrap();
        prop_assert_eq!(a.components().as_slice(), b.components().as_slice());
        prop_assert_eq!(a.eigenvalues(), b.eigenvalues());
        prop_assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn matrix_solve_validates_solution(
        diag in proptest::collection::vec(1.0f64..100.0, 2..8),
        rhs_seed in any::<u64>(),
    ) {
        // Diagonally dominant matrix: always solvable.
        let n = diag.len();
        let mut a = Matrix::zeros(n, n);
        let mut s = rhs_seed | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for (i, &d) in diag.iter().enumerate() {
            for j in 0..n {
                a.set(i, j, if i == j { d + n as f64 } else { next() });
            }
        }
        let x_true: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (g, t) in x.iter().zip(&x_true) {
            prop_assert!((g - t).abs() < 1e-6);
        }
    }
}
