//! Orthonormal DCT-II (forward) and DCT-III (inverse) transforms.
//!
//! DPZ's stage 1 applies a 1-D DCT-II to every block of the decomposed data
//! (Section IV-A of the paper). We use the *orthonormal* convention, so the
//! transform matrix `A` satisfies `Aᵀ = A⁻¹` — the property the paper leans on
//! to prove that PCA can run directly in the DCT domain (Eq. 3–6) and that the
//! transform itself is lossless/reversible.
//!
//! Forward transform of `x[0..n]`:
//!
//! ```text
//! X[k] = s(k) · Σ_j x[j] · cos(π (2j+1) k / (2n)),
//! s(0) = √(1/n),  s(k>0) = √(2/n)
//! ```
//!
//! Both directions run in `O(n log n)` via Makhoul's even/odd-reversed
//! permutation + length-`n` complex FFT ([`crate::fft`]), for *any* `n`
//! (Bluestein covers non-powers of two). A naive `O(n²)` pair is kept as the
//! test oracle.

use crate::fft::{fft_with, ifft_with, Complex, FftScratch};
use dpz_kernels::fft as kfft;
use std::cell::RefCell;
use std::f64::consts::PI;

/// Reusable workspace for [`Dct1d::forward_with`] / [`Dct1d::inverse_with`].
///
/// Holds the complex permutation buffer, the descaled-coefficient buffer and
/// the FFT's own scratch. After the first transform of a given length the
/// buffers are warm and subsequent transforms perform **zero heap
/// allocations**. The default [`Dct1d::forward`] / [`Dct1d::inverse`] route
/// through a thread-local instance, so per-worker reuse happens even at call
/// sites that never mention the scratch.
#[derive(Debug, Default)]
pub struct DctScratch {
    /// Complex buffer for the Makhoul-permuted sequence.
    v: Vec<Complex>,
    /// Second complex buffer for the paired (two-for-one) transforms: holds
    /// the two unpacked half-spectra side by side.
    v2: Vec<Complex>,
    /// Raw cosine sums `C[k]` (inverse direction only).
    c: Vec<f64>,
    /// Second cosine-sum buffer for the paired inverse.
    c2: Vec<f64>,
    /// Workspace for the non-power-of-two FFT path.
    fft: FftScratch,
}

impl DctScratch {
    /// Empty scratch; buffers grow on first use and are reused afterwards.
    pub fn new() -> Self {
        DctScratch::default()
    }
}

thread_local! {
    /// Per-thread scratch backing the allocation-free default path. Pool
    /// workers are persistent, so this stays warm across `par_*` calls.
    static LOCAL_SCRATCH: RefCell<DctScratch> = RefCell::new(DctScratch::new());
}

/// A reusable DCT plan for a fixed length `n`.
///
/// Precomputes the twiddle factors `e^{-iπk/(2n)}` once so the same plan can
/// be applied to many blocks (DPZ transforms `M` blocks of identical length;
/// plans are `Sync` and safely shared across rayon workers).
#[derive(Debug, Clone)]
pub struct Dct1d {
    n: usize,
    /// `twiddle[k] = e^{-i π k / (2n)}`.
    twiddle: Vec<Complex>,
    /// Orthonormal scale for k = 0.
    s0: f64,
    /// Orthonormal scale for k > 0.
    sk: f64,
}

impl Dct1d {
    /// Build a plan for blocks of length `n`. `n == 0` yields a trivial plan.
    pub fn new(n: usize) -> Self {
        let twiddle = (0..n)
            .map(|k| Complex::from_angle(-PI * k as f64 / (2.0 * n as f64)))
            .collect();
        let (s0, sk) = if n == 0 {
            (0.0, 0.0)
        } else {
            ((1.0 / n as f64).sqrt(), (2.0 / n as f64).sqrt())
        };
        Dct1d { n, twiddle, s0, sk }
    }

    /// Planned block length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the plan is for empty blocks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place orthonormal DCT-II. `data.len()` must equal the plan length.
    ///
    /// Uses a thread-local [`DctScratch`], so repeated calls on one thread
    /// allocate nothing after the first transform of this length.
    pub fn forward(&self, data: &mut [f64]) {
        LOCAL_SCRATCH.with(|s| self.forward_with(data, &mut s.borrow_mut()));
    }

    /// [`Dct1d::forward`] with caller-owned scratch.
    pub fn forward_with(&self, data: &mut [f64], scratch: &mut DctScratch) {
        assert_eq!(data.len(), self.n, "Dct1d::forward length mismatch");
        let n = self.n;
        if n <= 1 {
            if n == 1 {
                data[0] *= self.s0; // s(0)·x[0]; with n=1, s0 = 1.
            }
            return;
        }
        // Makhoul permutation: even-indexed samples ascending, then
        // odd-indexed samples descending. Every slot of `v` is overwritten,
        // so a resize (no clear) is enough.
        scratch.v.resize(n, Complex::default());
        let v = &mut scratch.v[..n];
        let half = n.div_ceil(2);
        for j in 0..half {
            v[j] = Complex::new(data[2 * j], 0.0);
        }
        for j in 0..n / 2 {
            v[n - 1 - j] = Complex::new(data[2 * j + 1], 0.0);
        }
        fft_with(v, &mut scratch.fft);
        // C[k] = Re(e^{-iπk/(2n)} V[k]); apply orthonormal scaling.
        data[0] = v[0].re * self.s0;
        kfft::dct2_post(&mut data[1..], &self.twiddle[1..], &v[1..], self.sk);
    }

    /// Orthonormal DCT-II of **two** blocks through **one** complex FFT (the
    /// classic two-for-one real-input trick): block `a` rides the real lanes
    /// and block `b` the imaginary lanes, and the two spectra are unpacked
    /// afterwards from the Hermitian symmetry
    /// `Fa[k] = (V[k] + conj(V[n−k]))/2`, `Fb[k] = −i·(V[k] − conj(V[n−k]))/2`.
    /// Since the FFT dominates the transform, pairing blocks nearly halves
    /// the per-block cost; DPZ's stage 1 transforms `M` same-length blocks,
    /// so pairs are always available.
    pub fn forward_pair(&self, a: &mut [f64], b: &mut [f64]) {
        LOCAL_SCRATCH.with(|s| self.forward_pair_with(a, b, &mut s.borrow_mut()));
    }

    /// [`Dct1d::forward_pair`] with caller-owned scratch.
    pub fn forward_pair_with(&self, a: &mut [f64], b: &mut [f64], scratch: &mut DctScratch) {
        assert_eq!(a.len(), self.n, "Dct1d::forward_pair length mismatch");
        assert_eq!(b.len(), self.n, "Dct1d::forward_pair length mismatch");
        let n = self.n;
        if n <= 1 {
            if n == 1 {
                a[0] *= self.s0;
                b[0] *= self.s0;
            }
            return;
        }
        // Makhoul permutation of both blocks, packed re/im.
        scratch.v.resize(n, Complex::default());
        let v = &mut scratch.v[..n];
        let half = n.div_ceil(2);
        for j in 0..half {
            v[j] = Complex::new(a[2 * j], b[2 * j]);
        }
        for j in 0..n / 2 {
            v[n - 1 - j] = Complex::new(a[2 * j + 1], b[2 * j + 1]);
        }
        fft_with(v, &mut scratch.fft);
        // Unpack the two spectra; only k = 1..n is needed by dct2_post, and
        // k = 0 reduces to (Re, Im) of V[0].
        scratch.v2.resize(2 * n, Complex::default());
        let (va, vb) = scratch.v2.split_at_mut(n);
        for k in 1..n {
            let p = v[k];
            let q = v[n - k];
            va[k] = Complex::new(0.5 * (p.re + q.re), 0.5 * (p.im - q.im));
            vb[k] = Complex::new(0.5 * (p.im + q.im), 0.5 * (q.re - p.re));
        }
        a[0] = v[0].re * self.s0;
        b[0] = v[0].im * self.s0;
        kfft::dct2_post(&mut a[1..], &self.twiddle[1..], &va[1..], self.sk);
        kfft::dct2_post(&mut b[1..], &self.twiddle[1..], &vb[1..], self.sk);
    }

    /// Orthonormal DCT-III of **two** blocks through **one** complex inverse
    /// FFT. The packing is pure linearity: both pre-rotated spectra produce
    /// *real* permuted samples under the inverse FFT, so
    /// `ifft(Va + i·Vb) = perm(a) + i·perm(b)` splits exactly on the re/im
    /// lanes.
    pub fn inverse_pair(&self, a: &mut [f64], b: &mut [f64]) {
        LOCAL_SCRATCH.with(|s| self.inverse_pair_with(a, b, &mut s.borrow_mut()));
    }

    /// [`Dct1d::inverse_pair`] with caller-owned scratch.
    pub fn inverse_pair_with(&self, a: &mut [f64], b: &mut [f64], scratch: &mut DctScratch) {
        assert_eq!(a.len(), self.n, "Dct1d::inverse_pair length mismatch");
        assert_eq!(b.len(), self.n, "Dct1d::inverse_pair length mismatch");
        let n = self.n;
        if n <= 1 {
            if n == 1 {
                a[0] /= self.s0;
                b[0] /= self.s0;
            }
            return;
        }
        scratch.c.resize(n, 0.0);
        scratch.c2.resize(n, 0.0);
        let ca = &mut scratch.c[..n];
        let cb = &mut scratch.c2[..n];
        ca[0] = a[0] / self.s0;
        cb[0] = b[0] / self.s0;
        for k in 1..n {
            ca[k] = a[k] / self.sk;
            cb[k] = b[k] / self.sk;
        }
        // Build both pre-rotated spectra, then pack V = Va + i·Vb.
        scratch.v2.resize(2 * n, Complex::default());
        let (va, vb) = scratch.v2.split_at_mut(n);
        va[0] = Complex::new(ca[0], 0.0);
        vb[0] = Complex::new(cb[0], 0.0);
        kfft::dct3_pre(va, &self.twiddle, ca);
        kfft::dct3_pre(vb, &self.twiddle, cb);
        scratch.v.resize(n, Complex::default());
        let v = &mut scratch.v[..n];
        for k in 0..n {
            v[k] = Complex::new(va[k].re - vb[k].im, va[k].im + vb[k].re);
        }
        ifft_with(v, &mut scratch.fft);
        let half = n.div_ceil(2);
        for j in 0..half {
            a[2 * j] = v[j].re;
            b[2 * j] = v[j].im;
        }
        for j in 0..n / 2 {
            a[2 * j + 1] = v[n - 1 - j].re;
            b[2 * j + 1] = v[n - 1 - j].im;
        }
    }

    /// In-place orthonormal DCT-III (the inverse of [`Dct1d::forward`]).
    ///
    /// Uses a thread-local [`DctScratch`], so repeated calls on one thread
    /// allocate nothing after the first transform of this length.
    pub fn inverse(&self, data: &mut [f64]) {
        LOCAL_SCRATCH.with(|s| self.inverse_with(data, &mut s.borrow_mut()));
    }

    /// [`Dct1d::inverse`] with caller-owned scratch.
    pub fn inverse_with(&self, data: &mut [f64], scratch: &mut DctScratch) {
        assert_eq!(data.len(), self.n, "Dct1d::inverse length mismatch");
        let n = self.n;
        if n <= 1 {
            if n == 1 {
                data[0] /= self.s0;
            }
            return;
        }
        // Undo the orthonormal scaling to recover the raw cosine sums C[k].
        scratch.c.resize(n, 0.0);
        let c = &mut scratch.c[..n];
        c[0] = data[0] / self.s0;
        for k in 1..n {
            c[k] = data[k] / self.sk;
        }
        // Rebuild V[k] = e^{+iπk/(2n)} (C[k] - i·C[n-k]), V[0] = C[0], then
        // invert the FFT and the Makhoul permutation.
        scratch.v.resize(n, Complex::default());
        let v = &mut scratch.v[..n];
        v[0] = Complex::new(c[0], 0.0);
        kfft::dct3_pre(v, &self.twiddle, c);
        ifft_with(v, &mut scratch.fft);
        let half = n.div_ceil(2);
        for j in 0..half {
            data[2 * j] = v[j].re;
        }
        for j in 0..n / 2 {
            data[2 * j + 1] = v[n - 1 - j].re;
        }
    }
}

/// One-shot orthonormal DCT-II returning a fresh vector.
pub fn dct2(input: &[f64]) -> Vec<f64> {
    let mut out = input.to_vec();
    dct2_inplace(&mut out);
    out
}

/// One-shot in-place orthonormal DCT-II.
pub fn dct2_inplace(data: &mut [f64]) {
    Dct1d::new(data.len()).forward(data);
}

/// One-shot orthonormal DCT-III (inverse DCT-II) returning a fresh vector.
pub fn dct3(input: &[f64]) -> Vec<f64> {
    let mut out = input.to_vec();
    dct3_inplace(&mut out);
    out
}

/// One-shot in-place orthonormal DCT-III.
pub fn dct3_inplace(data: &mut [f64]) {
    Dct1d::new(data.len()).inverse(data);
}

/// Reusable workspace for [`dct2_2d_with`] / [`dct3_2d_with`]: caches the
/// row/column [`Dct1d`] plans (keyed by length), the column gather buffer and
/// the 1-D scratch. After warming up on one `(rows, cols)` shape, repeated
/// 2-D transforms perform **zero heap allocations**.
#[derive(Debug, Default)]
pub struct Dct2dScratch {
    /// Plan for row transforms (length = `cols`).
    row_plan: Option<Dct1d>,
    /// Plan for column transforms (length = `rows`).
    col_plan: Option<Dct1d>,
    /// Strided-column gather/scatter buffer, length `rows`.
    col_buf: Vec<f64>,
    /// 1-D transform workspace shared by both passes.
    dct: DctScratch,
}

impl Dct2dScratch {
    /// Empty scratch; plans and buffers are built on first use.
    pub fn new() -> Self {
        Dct2dScratch::default()
    }

    /// Cached plans for this shape, rebuilding whichever is stale.
    fn plans(&mut self, rows: usize, cols: usize) -> (&Dct1d, &Dct1d) {
        if self.row_plan.as_ref().map(Dct1d::len) != Some(cols) {
            self.row_plan = Some(Dct1d::new(cols));
        }
        if self.col_plan.as_ref().map(Dct1d::len) != Some(rows) {
            self.col_plan = Some(Dct1d::new(rows));
        }
        (
            self.row_plan.as_ref().unwrap(),
            self.col_plan.as_ref().unwrap(),
        )
    }
}

/// Separable 2-D orthonormal DCT-II over a row-major `rows x cols` matrix:
/// `Z = Aᵀ_rows · X · A_cols` computed as row transforms followed by column
/// transforms (the identity the paper's Section III-B2 uses to extend the
/// PCA-in-DCT-domain proof to 2-D).
///
/// Allocates plans and scratch per call; use [`dct2_2d_with`] to amortize.
pub fn dct2_2d(data: &mut [f64], rows: usize, cols: usize) {
    let mut scratch = Dct2dScratch::new();
    dct2_2d_with(data, rows, cols, &mut scratch);
}

/// [`dct2_2d`] with caller-owned scratch: allocation-free once `scratch` has
/// warmed up on this shape.
pub fn dct2_2d_with(data: &mut [f64], rows: usize, cols: usize, scratch: &mut Dct2dScratch) {
    assert_eq!(data.len(), rows * cols, "dct2_2d shape mismatch");
    if rows == 0 || cols == 0 {
        return;
    }
    scratch.plans(rows, cols);
    scratch.col_buf.resize(rows, 0.0);
    let row_plan = scratch.row_plan.as_ref().unwrap();
    let col_plan = scratch.col_plan.as_ref().unwrap();
    for r in 0..rows {
        row_plan.forward_with(&mut data[r * cols..(r + 1) * cols], &mut scratch.dct);
    }
    for c in 0..cols {
        for r in 0..rows {
            scratch.col_buf[r] = data[r * cols + c];
        }
        col_plan.forward_with(&mut scratch.col_buf, &mut scratch.dct);
        for r in 0..rows {
            data[r * cols + c] = scratch.col_buf[r];
        }
    }
}

/// Inverse of [`dct2_2d`] (2-D DCT-III, columns then rows).
///
/// Allocates plans and scratch per call; use [`dct3_2d_with`] to amortize.
pub fn dct3_2d(data: &mut [f64], rows: usize, cols: usize) {
    let mut scratch = Dct2dScratch::new();
    dct3_2d_with(data, rows, cols, &mut scratch);
}

/// [`dct3_2d`] with caller-owned scratch: allocation-free once `scratch` has
/// warmed up on this shape.
pub fn dct3_2d_with(data: &mut [f64], rows: usize, cols: usize, scratch: &mut Dct2dScratch) {
    assert_eq!(data.len(), rows * cols, "dct3_2d shape mismatch");
    if rows == 0 || cols == 0 {
        return;
    }
    scratch.plans(rows, cols);
    scratch.col_buf.resize(rows, 0.0);
    let row_plan = scratch.row_plan.as_ref().unwrap();
    let col_plan = scratch.col_plan.as_ref().unwrap();
    for c in 0..cols {
        for r in 0..rows {
            scratch.col_buf[r] = data[r * cols + c];
        }
        col_plan.inverse_with(&mut scratch.col_buf, &mut scratch.dct);
        for r in 0..rows {
            data[r * cols + c] = scratch.col_buf[r];
        }
    }
    for r in 0..rows {
        row_plan.inverse_with(&mut data[r * cols..(r + 1) * cols], &mut scratch.dct);
    }
}

/// Naive `O(n²)` orthonormal DCT-II. Test oracle.
pub fn dct2_naive(input: &[f64]) -> Vec<f64> {
    let n = input.len();
    if n == 0 {
        return vec![];
    }
    let s0 = (1.0 / n as f64).sqrt();
    let sk = (2.0 / n as f64).sqrt();
    (0..n)
        .map(|k| {
            let sum: f64 = input
                .iter()
                .enumerate()
                .map(|(j, &x)| {
                    x * (PI * (2.0 * j as f64 + 1.0) * k as f64 / (2.0 * n as f64)).cos()
                })
                .sum();
            sum * if k == 0 { s0 } else { sk }
        })
        .collect()
}

/// Naive `O(n²)` orthonormal DCT-III. Test oracle.
pub fn dct3_naive(input: &[f64]) -> Vec<f64> {
    let n = input.len();
    if n == 0 {
        return vec![];
    }
    let s0 = (1.0 / n as f64).sqrt();
    let sk = (2.0 / n as f64).sqrt();
    (0..n)
        .map(|j| {
            input
                .iter()
                .enumerate()
                .map(|(k, &xk)| {
                    let s = if k == 0 { s0 } else { sk };
                    s * xk * (PI * (2.0 * j as f64 + 1.0) * k as f64 / (2.0 * n as f64)).cos()
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.173).sin() + 0.01 * i as f64)
            .collect()
    }

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fast_matches_naive_forward() {
        for &n in &[1usize, 2, 3, 4, 5, 7, 8, 16, 30, 100, 128, 360] {
            let x = ramp(n);
            let fast = dct2(&x);
            let naive = dct2_naive(&x);
            assert!(max_err(&fast, &naive) < 1e-9 * n.max(1) as f64, "n={n}");
        }
    }

    #[test]
    fn fast_matches_naive_inverse() {
        for &n in &[1usize, 2, 5, 8, 33, 64, 90] {
            let x = ramp(n);
            let fast = dct3(&x);
            let naive = dct3_naive(&x);
            assert!(max_err(&fast, &naive) < 1e-9 * n.max(1) as f64, "n={n}");
        }
    }

    #[test]
    fn round_trip_identity() {
        for &n in &[1usize, 2, 3, 6, 17, 64, 100, 257, 1024] {
            let x = ramp(n);
            let mut y = x.clone();
            let plan = Dct1d::new(n);
            plan.forward(&mut y);
            plan.inverse(&mut y);
            assert!(max_err(&x, &y) < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn orthonormal_energy_preservation() {
        // Parseval: an orthonormal transform preserves the l2 norm exactly.
        let x = ramp(200);
        let y = dct2(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-9 * ex);
    }

    #[test]
    fn constant_signal_concentrates_in_dc() {
        let x = vec![3.0; 64];
        let y = dct2(&x);
        // DC coefficient is s0 * n * 3 = sqrt(n) * 3.
        assert!((y[0] - 3.0 * 8.0).abs() < 1e-10);
        for v in &y[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn smooth_signal_energy_compaction() {
        // A slowly varying signal should put almost all of its energy in the
        // first few coefficients — the property DPZ's stage 1 exploits.
        let n = 256;
        let x: Vec<f64> = (0..n).map(|i| (PI * i as f64 / n as f64).sin()).collect();
        let y = dct2(&x);
        let total: f64 = y.iter().map(|v| v * v).sum();
        let head: f64 = y[..8].iter().map(|v| v * v).sum();
        assert!(head / total > 0.999, "head energy ratio {}", head / total);
    }

    #[test]
    fn linearity_of_transform() {
        let n = 50;
        let a = ramp(n);
        let b: Vec<f64> = (0..n).map(|i| ((i * i) % 7) as f64).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x + y).collect();
        let lhs = dct2(&sum);
        let fa = dct2(&a);
        let fb = dct2(&b);
        let rhs: Vec<f64> = fa.iter().zip(&fb).map(|(x, y)| 2.0 * x + y).collect();
        assert!(max_err(&lhs, &rhs) < 1e-10 * n as f64);
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let plan = Dct1d::new(40);
        let x = ramp(40);
        let mut a = x.clone();
        let mut b = x.clone();
        plan.forward(&mut a);
        plan.forward(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_scratch_matches_thread_local_path() {
        let mut scratch = DctScratch::new();
        // Mixed lengths (pow2 and Bluestein) through one scratch; results
        // must match the default path bit-for-bit.
        for &n in &[8usize, 33, 8, 100, 64, 33] {
            let plan = Dct1d::new(n);
            let x = ramp(n);
            let mut with = x.clone();
            plan.forward_with(&mut with, &mut scratch);
            let mut default = x.clone();
            plan.forward(&mut default);
            assert_eq!(with, default, "forward n={n}");
            plan.inverse_with(&mut with, &mut scratch);
            assert!(max_err(&with, &x) < 1e-10 * n as f64, "roundtrip n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn plan_rejects_wrong_length() {
        let plan = Dct1d::new(8);
        let mut x = vec![0.0; 7];
        plan.forward(&mut x);
    }

    #[test]
    fn dct_2d_round_trip() {
        let (rows, cols) = (12, 17);
        let x: Vec<f64> = (0..rows * cols).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut buf = x.clone();
        dct2_2d(&mut buf, rows, cols);
        dct3_2d(&mut buf, rows, cols);
        assert!(max_err(&x, &buf) < 1e-10);
    }

    #[test]
    fn dct_2d_energy_preserved() {
        let (rows, cols) = (8, 8);
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).cos() * 3.0).collect();
        let mut buf = x.clone();
        dct2_2d(&mut buf, rows, cols);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = buf.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-9 * ex);
    }

    #[test]
    fn dct_2d_separability_matches_manual() {
        // 2-D transform equals row transforms followed by column transforms
        // done by hand with the 1-D API.
        let (rows, cols) = (6, 10);
        let x: Vec<f64> = (0..60).map(|i| (i * i % 13) as f64).collect();
        let mut fast = x.clone();
        dct2_2d(&mut fast, rows, cols);

        let mut manual = x.clone();
        for r in 0..rows {
            let row = dct2(&manual[r * cols..(r + 1) * cols]);
            manual[r * cols..(r + 1) * cols].copy_from_slice(&row);
        }
        for c in 0..cols {
            let col: Vec<f64> = (0..rows).map(|r| manual[r * cols + c]).collect();
            let t = dct2(&col);
            for r in 0..rows {
                manual[r * cols + c] = t[r];
            }
        }
        assert!(max_err(&fast, &manual) < 1e-12);
    }

    #[test]
    fn dct_2d_smooth_image_compacts_to_corner() {
        let (rows, cols) = (16, 16);
        let x: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let r = (i / cols) as f64 / rows as f64;
                let c = (i % cols) as f64 / cols as f64;
                (PI * r).sin() + (PI * c).cos()
            })
            .collect();
        let mut buf = x.clone();
        dct2_2d(&mut buf, rows, cols);
        let total: f64 = buf.iter().map(|v| v * v).sum();
        let mut corner = 0.0;
        for r in 0..4 {
            for c in 0..4 {
                corner += buf[r * cols + c] * buf[r * cols + c];
            }
        }
        assert!(corner / total > 0.99, "corner energy {}", corner / total);
    }

    #[test]
    fn dct_2d_with_scratch_matches_fresh_across_shapes() {
        let mut scratch = Dct2dScratch::new();
        // Shape changes invalidate the cached plans; results must stay
        // bit-identical to the allocating path.
        for &(rows, cols) in &[(4usize, 6usize), (12, 17), (4, 6), (1, 9), (9, 1), (8, 8)] {
            let x: Vec<f64> = (0..rows * cols).map(|i| (i as f64 * 0.31).sin()).collect();
            let mut with = x.clone();
            dct2_2d_with(&mut with, rows, cols, &mut scratch);
            let mut fresh = x.clone();
            dct2_2d(&mut fresh, rows, cols);
            assert_eq!(with, fresh, "forward {rows}x{cols}");
            dct3_2d_with(&mut with, rows, cols, &mut scratch);
            assert!(max_err(&with, &x) < 1e-10, "roundtrip {rows}x{cols}");
        }
    }

    #[test]
    fn forward_pair_matches_two_single_transforms() {
        for &n in &[1usize, 2, 3, 5, 7, 8, 16, 45, 100, 225, 360, 513] {
            let plan = Dct1d::new(n);
            let a0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.2).collect();
            let b0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos() - 0.1).collect();
            let (mut ra, mut rb) = (a0.clone(), b0.clone());
            plan.forward(&mut ra);
            plan.forward(&mut rb);
            let (mut pa, mut pb) = (a0.clone(), b0.clone());
            plan.forward_pair(&mut pa, &mut pb);
            let tol = 1e-12 * (n as f64).max(1.0);
            assert!(max_err(&pa, &ra) < tol, "n={n} a err {}", max_err(&pa, &ra));
            assert!(max_err(&pb, &rb) < tol, "n={n} b err {}", max_err(&pb, &rb));
        }
    }

    #[test]
    fn inverse_pair_matches_two_single_transforms() {
        for &n in &[1usize, 2, 3, 5, 7, 8, 16, 45, 100, 225, 360, 513] {
            let plan = Dct1d::new(n);
            let a0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).sin() * 2.0).collect();
            let b0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).cos() * 1.5).collect();
            let (mut ra, mut rb) = (a0.clone(), b0.clone());
            plan.inverse(&mut ra);
            plan.inverse(&mut rb);
            let (mut pa, mut pb) = (a0.clone(), b0.clone());
            plan.inverse_pair(&mut pa, &mut pb);
            let tol = 1e-12 * (n as f64).max(1.0);
            assert!(max_err(&pa, &ra) < tol, "n={n} a err {}", max_err(&pa, &ra));
            assert!(max_err(&pb, &rb) < tol, "n={n} b err {}", max_err(&pb, &rb));
        }
    }

    #[test]
    fn pair_roundtrip_recovers_inputs() {
        let n = 360;
        let plan = Dct1d::new(n);
        let a0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.123).sin()).collect();
        let b0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.456).cos()).collect();
        let (mut a, mut b) = (a0.clone(), b0.clone());
        plan.forward_pair(&mut a, &mut b);
        plan.inverse_pair(&mut a, &mut b);
        assert!(max_err(&a, &a0) < 1e-10);
        assert!(max_err(&b, &b0) < 1e-10);
    }

    #[test]
    fn zero_length_is_noop() {
        let plan = Dct1d::new(0);
        let mut x: Vec<f64> = vec![];
        plan.forward(&mut x);
        plan.inverse(&mut x);
        assert!(x.is_empty());
        assert!(plan.is_empty());
    }
}
