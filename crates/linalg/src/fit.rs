//! Curve fitting for the knee-point detector.
//!
//! Algorithm 1 of the DPZ paper fits the cumulative TVE curve with either a
//! **one-dimensional (piecewise-linear) interpolation** or a **polynomial
//! interpolation** ("polyn", producing a smoother curve) before computing
//! curvature. Both fitters work on an abscissa normalized to `[0, 1]` and
//! expose value plus first/second derivatives through [`CurveFit`].

use crate::{LinalgError, Matrix, Result};

/// Which fitting method to use on the TVE curve (Algorithm 1's `sf`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitKind {
    /// Piecewise-linear interpolation through the samples ("1D").
    #[default]
    Interp1d,
    /// Least-squares polynomial of the given degree ("polyn").
    Polynomial(usize),
}

/// A fitted 1-D curve over `x ∈ [0, 1]`.
pub trait CurveFit {
    /// Curve value at `x` (clamped to `[0, 1]`).
    fn value(&self, x: f64) -> f64;

    /// First derivative; default central finite difference.
    fn d1(&self, x: f64) -> f64 {
        let h = 1e-4;
        (self.value(x + h) - self.value(x - h)) / (2.0 * h)
    }

    /// Second derivative; default central finite difference.
    fn d2(&self, x: f64) -> f64 {
        let h = 1e-4;
        (self.value(x + h) - 2.0 * self.value(x) + self.value(x - h)) / (h * h)
    }
}

/// Piecewise-linear interpolant over a uniform grid on `[0, 1]`.
#[derive(Debug, Clone)]
pub struct Interp1d {
    y: Vec<f64>,
}

impl Interp1d {
    /// Build from samples at `x_i = i / (len - 1)`. Needs >= 2 samples.
    pub fn new(y: &[f64]) -> Result<Self> {
        if y.len() < 2 {
            return Err(LinalgError::Empty("Interp1d needs at least two samples"));
        }
        Ok(Interp1d { y: y.to_vec() })
    }
}

impl CurveFit for Interp1d {
    fn value(&self, x: f64) -> f64 {
        let n = self.y.len();
        let x = x.clamp(0.0, 1.0);
        let pos = x * (n - 1) as f64;
        let i = (pos.floor() as usize).min(n - 2);
        let t = pos - i as f64;
        self.y[i] * (1.0 - t) + self.y[i + 1] * t
    }
}

/// Least-squares polynomial fit over `[0, 1]` with analytic derivatives.
#[derive(Debug, Clone)]
pub struct PolyFit {
    /// Coefficients, lowest power first: `c0 + c1 x + c2 x² + …`.
    coeffs: Vec<f64>,
}

impl PolyFit {
    /// Fit a degree-`degree` polynomial to samples at `x_i = i / (len - 1)`.
    ///
    /// The effective degree is capped at `len - 1`. Solved via the normal
    /// equations with a tiny relative ridge (the Vandermonde system on a
    /// uniform grid is ill-conditioned for high degrees; DPZ uses degree ≈ 7).
    pub fn fit(y: &[f64], degree: usize) -> Result<Self> {
        let n = y.len();
        if n < 2 {
            return Err(LinalgError::Empty("PolyFit needs at least two samples"));
        }
        let degree = degree.min(n - 1).max(1);
        let cols = degree + 1;
        let mut design = Matrix::zeros(n, cols);
        for (i, row) in (0..n).zip(0..n) {
            let x = i as f64 / (n - 1) as f64;
            let r = design.row_mut(row);
            let mut p = 1.0;
            for c in r.iter_mut() {
                *c = p;
                p *= x;
            }
        }
        let mut xtx = design.gram();
        let xty = design.transpose().mul_vec(y)?;
        let diag_max = (0..cols)
            .map(|i| xtx.get(i, i))
            .fold(f64::MIN_POSITIVE, f64::max);
        for i in 0..cols {
            let v = xtx.get(i, i) + 1e-10 * diag_max;
            xtx.set(i, i, v);
        }
        let coeffs = xtx.solve(&xty)?;
        Ok(PolyFit { coeffs })
    }

    /// Polynomial coefficients, lowest power first.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    fn horner(coeffs: &[f64], x: f64) -> f64 {
        coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    fn derivative_coeffs(coeffs: &[f64]) -> Vec<f64> {
        coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| c * i as f64)
            .collect()
    }
}

impl CurveFit for PolyFit {
    fn value(&self, x: f64) -> f64 {
        Self::horner(&self.coeffs, x.clamp(0.0, 1.0))
    }

    fn d1(&self, x: f64) -> f64 {
        let d = Self::derivative_coeffs(&self.coeffs);
        Self::horner(&d, x.clamp(0.0, 1.0))
    }

    fn d2(&self, x: f64) -> f64 {
        let d1 = Self::derivative_coeffs(&self.coeffs);
        let d2 = Self::derivative_coeffs(&d1);
        Self::horner(&d2, x.clamp(0.0, 1.0))
    }
}

/// Construct the fitter selected by `kind`.
pub fn fit_curve(y: &[f64], kind: FitKind) -> Result<Box<dyn CurveFit>> {
    match kind {
        FitKind::Interp1d => Ok(Box::new(Interp1d::new(y)?)),
        FitKind::Polynomial(deg) => Ok(Box::new(PolyFit::fit(y, deg)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_hits_samples() {
        let y = vec![0.0, 0.5, 0.8, 1.0];
        let f = Interp1d::new(&y).unwrap();
        for (i, &v) in y.iter().enumerate() {
            let x = i as f64 / 3.0;
            assert!((f.value(x) - v).abs() < 1e-12);
        }
        // Midpoint of the first segment.
        assert!((f.value(1.0 / 6.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn interp_clamps_outside_domain() {
        let f = Interp1d::new(&[1.0, 3.0]).unwrap();
        assert_eq!(f.value(-5.0), 1.0);
        assert_eq!(f.value(7.0), 3.0);
    }

    #[test]
    fn interp_rejects_short_input() {
        assert!(Interp1d::new(&[1.0]).is_err());
    }

    #[test]
    fn polyfit_recovers_exact_polynomial() {
        // y = 2 - 3x + x² sampled on a grid; a degree-2 fit must be exact.
        let n = 20;
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                2.0 - 3.0 * x + x * x
            })
            .collect();
        let f = PolyFit::fit(&y, 2).unwrap();
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            assert!((f.value(x) - (2.0 - 3.0 * x + x * x)).abs() < 1e-6);
        }
        // Analytic derivatives: y' = -3 + 2x, y'' = 2.
        assert!((f.d1(0.5) - (-3.0 + 1.0)).abs() < 1e-5);
        assert!((f.d2(0.25) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn polyfit_degree_capped() {
        let f = PolyFit::fit(&[0.0, 1.0], 9).unwrap();
        assert!(f.coefficients().len() <= 2);
    }

    #[test]
    fn polyfit_smooths_noise() {
        // A linear trend with alternating noise: a degree-1 fit should track
        // the trend, not the noise.
        let n = 50;
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                x + if i % 2 == 0 { 0.05 } else { -0.05 }
            })
            .collect();
        let f = PolyFit::fit(&y, 1).unwrap();
        assert!((f.value(0.5) - 0.5).abs() < 0.02);
    }

    #[test]
    fn finite_difference_defaults_reasonable() {
        // Interp1d inherits the default FD derivatives; on a straight line
        // d1 is the slope and d2 ~ 0 away from the knots.
        let y: Vec<f64> = (0..11).map(|i| 2.0 * i as f64 / 10.0).collect();
        let f = Interp1d::new(&y).unwrap();
        assert!((f.d1(0.52) - 2.0).abs() < 1e-6);
        assert!(f.d2(0.52).abs() < 1e-3);
    }

    #[test]
    fn fit_curve_dispatches() {
        let y = vec![0.0, 0.7, 0.9, 1.0];
        assert!((fit_curve(&y, FitKind::Interp1d).unwrap().value(0.0) - 0.0).abs() < 1e-12);
        let p = fit_curve(&y, FitKind::Polynomial(3)).unwrap();
        assert!(p.value(0.5) > 0.5);
    }
}
