//! Cyclic Jacobi eigensolver for symmetric matrices.
//!
//! Slower than the Householder+QL path in [`crate::eigen`] (`O(n³)` per sweep,
//! several sweeps) but built from a completely different algorithm, which
//! makes it a useful independent oracle: the two solvers cross-validate each
//! other in tests, so a bug in either is caught without an external LAPACK.

use crate::eigen::SymEigen;
use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition by cyclic Jacobi rotations.
///
/// Repeatedly annihilates the largest remaining off-diagonal entries with
/// Givens rotations until the off-diagonal Frobenius norm is negligible.
/// `max_sweeps` bounds the number of full upper-triangle sweeps.
pub fn jacobi_eigen(a: &Matrix, max_sweeps: usize) -> Result<SymEigen> {
    if a.rows() != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "jacobi_eigen",
            got: format!("{}x{}", a.rows(), a.cols()),
            expected: "square symmetric matrix".to_string(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymEigen {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
        });
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let scale = a.frobenius_norm().max(1.0);
    let tol = 1e-14 * scale;

    for _sweep in 0..max_sweeps {
        let off: f64 = {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m.get(i, j) * m.get(i, j);
                }
            }
            (2.0 * s).sqrt()
        };
        if off < tol {
            return Ok(finish(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < tol / (n as f64) {
                    continue;
                }
                // Compute the rotation angle that zeroes m[p][q].
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation: rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate into the eigenvector basis.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    // Check final convergence; allow a slightly looser exit tolerance.
    let mut off = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            off = off.max(m.get(i, j).abs());
        }
    }
    if off < 1e-9 * scale {
        Ok(finish(m, v))
    } else {
        Err(LinalgError::NoConvergence {
            algorithm: "cyclic Jacobi",
            iterations: max_sweeps,
        })
    }
}

fn finish(m: Matrix, v: Matrix) -> SymEigen {
    let n = m.rows();
    let mut d: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvectors = v.select_cols(&order);
    d = order.iter().map(|&i| d[i]).collect();
    SymEigen {
        eigenvalues: d,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_2x2() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let eig = jacobi_eigen(&a, 50).unwrap();
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-10);
        assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a =
            Matrix::from_vec(3, 3, vec![4.0, 1.0, -2.0, 1.0, 2.0, 0.0, -2.0, 0.0, 3.0]).unwrap();
        let eig = jacobi_eigen(&a, 100).unwrap();
        let vtv = eig
            .eigenvectors
            .transpose()
            .matmul(&eig.eigenvectors)
            .unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(3)) < 1e-9);
    }

    #[test]
    fn residual_small() {
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                5.0, 1.0, 0.5, 0.0, 1.0, 4.0, 0.2, 0.1, 0.5, 0.2, 3.0, -0.3, 0.0, 0.1, -0.3, 2.0,
            ],
        )
        .unwrap();
        let eig = jacobi_eigen(&a, 100).unwrap();
        for j in 0..4 {
            let v = eig.eigenvectors.col(j);
            let av = a.mul_vec(&v).unwrap();
            for i in 0..4 {
                assert!((av[i] - eig.eigenvalues[j] * v[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(jacobi_eigen(&Matrix::zeros(3, 2), 10).is_err());
    }

    #[test]
    fn handles_already_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a.set(0, 0, 1.0);
        a.set(1, 1, 5.0);
        a.set(2, 2, 3.0);
        let eig = jacobi_eigen(&a, 10).unwrap();
        assert_eq!(eig.eigenvalues, vec![5.0, 3.0, 1.0]);
    }
}
