//! Principal component analysis.
//!
//! Stage 2 of DPZ projects the DCT-domain block matrix onto its leading
//! eigenvectors ("k-PCA", Section IV-B of the paper). Conventions:
//!
//! * input is `n x m` — `n` samples (coefficient indices) by `m` features
//!   (blocks), with `m < n` as the paper's decomposition guarantees;
//! * the model stores per-feature means (and optionally standard deviations,
//!   for the low-linearity standardization path chosen by the sampling
//!   stage), the full eigenvector basis sorted by descending eigenvalue, and
//!   the eigenvalues themselves;
//! * `transform(k)` / `inverse_transform` give the lossy round trip;
//!   retaining all `m` components reconstructs the input exactly (up to
//!   floating-point error), which is property-tested.

use crate::eigen::{sym_eigen, SymEigen};
use crate::rangefinder::{randomized_covariance_eigen, RangeFinderOptions, SubspaceSeed};
use crate::{LinalgError, Matrix, Result};

/// Options controlling a PCA fit.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcaOptions {
    /// Standardize features to unit variance before the eigenanalysis.
    ///
    /// The paper applies this only to low-linearity data (VIF below the
    /// cutoff), since rescaling redistributes variance weight across the
    /// equal-unit DCT blocks.
    pub standardize: bool,
}

/// A fitted PCA model.
///
/// May be *truncated*: [`Pca::fit_truncated`] keeps only the leading
/// `k` eigenpairs (computed by subspace iteration), but still knows the
/// total variance, so TVE queries remain meaningful.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Per-feature scale divisors (all 1.0 unless standardizing).
    scale: Option<Vec<f64>>,
    /// `m x c` (`c <= m`); column `j` is the unit eigenvector for
    /// `eigenvalues[j]`.
    components: Matrix,
    /// Covariance eigenvalues, descending, clamped to `>= 0`.
    eigenvalues: Vec<f64>,
    /// Trace of the covariance matrix (total variance), independent of how
    /// many eigenpairs were computed.
    total_variance: f64,
    n_samples: usize,
}

impl Pca {
    /// Fit a full PCA model to `data` (`n` samples x `m` features).
    ///
    /// Requires at least 2 samples and 1 feature. Cost is the `m x m`
    /// covariance (`O(n·m²)`, rayon-parallel) plus an `O(m³)` eigensolve.
    pub fn fit(data: &Matrix, opts: PcaOptions) -> Result<Pca> {
        Pca::fit_impl(data, opts, None)
    }

    /// Fit a truncated model with only the `k` leading eigenpairs, via
    /// subspace iteration — DPZ's sampling fast path (`O(m²·k)` per
    /// iteration instead of `O(m³)`).
    pub fn fit_truncated(data: &Matrix, opts: PcaOptions, k: usize) -> Result<Pca> {
        Pca::fit_impl(data, opts, Some(k))
    }

    /// Fit a model with just enough leading eigenpairs to reach the TVE
    /// target `tve`, escalating a truncated subspace solve from `k0` and
    /// falling back to the full `O(m³)` eigendecomposition once the
    /// truncated rank stops being comfortably below `m`. The covariance is
    /// formed exactly once across all attempts.
    ///
    /// After an insufficient solve the next rank is *predicted* from the
    /// observed spectral decay (geometric tail extrapolation) rather than
    /// blindly doubled, so a typical run is one probe plus one solve near
    /// the final rank — or a direct jump to the full solver when the tail
    /// model says no truncated rank can win.
    ///
    /// This backs the pipeline's TVE-driven k-selection: the selected `k`
    /// is usually a small fraction of `m`, so the solve cost tracks the
    /// *output* rank instead of the feature count.
    pub fn fit_tve_bounded(data: &Matrix, opts: PcaOptions, tve: f64, k0: usize) -> Result<Pca> {
        let prep = Prepared::new(data, opts)?;
        let m = prep.cov.rows();
        let mut k = k0.clamp(1, m);
        loop {
            // Measured crossover with the SIMD GEMM backend: subspace
            // iteration at 24 sweeps beats the direct solver up to roughly
            // k = m/6, so past that point answer with one full solve.
            if k * 6 > m {
                let eig = sym_eigen(&prep.cov)?;
                return Ok(prep.into_pca(eig));
            }
            let eig = crate::eigen::sym_eigen_topk(&prep.cov, k, 24)?;
            let explained: f64 = eig.eigenvalues.iter().map(|l| l.max(0.0)).sum();
            if prep.total_variance <= 0.0 || explained >= tve * prep.total_variance {
                return Ok(prep.into_pca(eig));
            }
            let next =
                predict_tve_rank(&eig.eigenvalues, explained, tve * prep.total_variance, k, m);
            k = next.max(k + 1).min(m);
        }
    }

    /// Fit a model with **exactly** the TVE-minimal number of eigenpairs,
    /// using [`crate::eigen::sym_eigen_select`]: one Householder reduction
    /// (no transform accumulation), an eigenvalues-only QL pass for the
    /// *complete* spectrum, and inverse iteration + back-transform for just
    /// the `k` leading eigenvectors the TVE rule selects.
    ///
    /// Unlike [`Pca::fit_tve_bounded`] there is no escalation loop and no
    /// over-computed margin: `k` is read off the exact sorted spectrum, so
    /// this path does the same selection a full [`Pca::fit`] would — at a
    /// fraction of the eigensolve cost when `k ≪ m`. This is the preferred
    /// TVE path at moderate `m`, where the subspace-iteration solver behind
    /// `fit_tve_bounded` has no room to win.
    pub fn fit_tve_exact(data: &Matrix, opts: PcaOptions, tve: f64) -> Result<Pca> {
        let prep = Prepared::new(data, opts)?;
        let target = tve * prep.total_variance;
        let (_spectrum, eig) = crate::eigen::sym_eigen_select(&prep.cov, |vals| {
            let mut acc = 0.0;
            for (i, &l) in vals.iter().enumerate() {
                acc += l.max(0.0);
                if acc >= target {
                    return i + 1;
                }
            }
            vals.len().max(1)
        })?;
        Ok(prep.into_pca(eig))
    }

    /// Fit a truncated model with the `k` leading eigenpairs via the
    /// seeded randomized range-finder — no `m x m` Gram, no Householder
    /// reduction; see [`crate::rangefinder`]. Deterministic (fixed probe
    /// seed) and bit-identical across kernel backends.
    pub fn fit_randomized(
        data: &Matrix,
        opts: PcaOptions,
        k: usize,
        rf: &RangeFinderOptions,
    ) -> Result<Pca> {
        Pca::fit_randomized_warm(data, opts, k, rf, None, None).map(|f| f.pca)
    }

    /// [`Pca::fit_randomized`] with a cross-fit warm start and an optional
    /// quality gate.
    ///
    /// `warm` seeds the probe subspace from a previous fit's converged
    /// basis (ignored on feature-count mismatch). When `gate_tve` is given
    /// and a warm-seeded fit captures less than `gate_tve` of the total
    /// variance in its `k` leading components, the fit is redone cold —
    /// the TVE-residual gate that makes warm starting safe on dissimilar
    /// consecutive chunks. `warm_used` in the result reports which basis
    /// the returned model came from.
    pub fn fit_randomized_warm(
        data: &Matrix,
        opts: PcaOptions,
        k: usize,
        rf: &RangeFinderOptions,
        warm: Option<&SubspaceSeed>,
        gate_tve: Option<f64>,
    ) -> Result<RandomizedFit> {
        let prep = PreparedData::new(data, opts)?;
        let m = prep.centered.cols();
        let k = k.clamp(1, m);
        let s = (k + rf.oversample).min(m);
        if s * 4 >= m {
            // Sketch not thin enough to pay off: subspace iteration over an
            // explicit Gram (callers normally route around this arm).
            let mut cov = prep.centered.gram();
            cov.scale(1.0 / (prep.n_samples - 1) as f64);
            let eig = crate::eigen::sym_eigen_topk(&cov, k, 24)?;
            let keep = eig.eigenvalues.len().max(1);
            let basis = SubspaceSeed::from_components(&eig.eigenvectors, keep);
            return Ok(RandomizedFit {
                pca: prep.pca(eig, keep),
                basis,
                warm_used: false,
                scores: None,
            });
        }
        let warm_now = warm.filter(|w| w.n_features() == m);
        let mut out = randomized_covariance_eigen(&prep.centered, s, rf, warm_now)?;
        let mut warm_used = warm_now.is_some();
        if let (Some(gate), true) = (gate_tve, warm_used) {
            let captured: f64 = out
                .eigen
                .eigenvalues
                .iter()
                .take(k)
                .map(|l| l.max(0.0))
                .sum();
            if prep.total_variance > 0.0 && captured < gate * prep.total_variance {
                out = randomized_covariance_eigen(&prep.centered, s, rf, None)?;
                warm_used = false;
            }
        }
        let scores = scores_from_t(&out.scores_t, k)?;
        Ok(RandomizedFit {
            pca: prep.pca(out.eigen, k),
            basis: out.seed,
            warm_used,
            scores: Some(scores),
        })
    }

    /// TVE-driven randomized fit: sketch at `k0 + oversample`, read the
    /// TVE-minimal rank off the (exact-for-this-basis) Ritz spectrum, and
    /// escalate — warm-starting each retry from the converged rows — until
    /// the target is met. A warm basis that misses the target is retried
    /// cold at the same rank before escalating (the cross-chunk quality
    /// gate); once the sketch stops being ≪ `m`, the dense exact-TVE
    /// solver takes over.
    pub fn fit_tve_randomized(
        data: &Matrix,
        opts: PcaOptions,
        tve: f64,
        k0: usize,
        rf: &RangeFinderOptions,
        warm: Option<&SubspaceSeed>,
    ) -> Result<RandomizedFit> {
        let prep = PreparedData::new(data, opts)?;
        let m = prep.centered.cols();
        let target = tve * prep.total_variance;
        let mut k = k0.clamp(1, m);
        let mut warm_now = warm.filter(|w| w.n_features() == m);
        let mut carry: Option<SubspaceSeed> = None;
        loop {
            let s = (k + rf.oversample).min(m);
            // Crossover: a sketch at s ≥ m/4 no longer amortizes against
            // the dense exact-TVE path (one Gram + eigenvalues-only QL +
            // inverse iteration for just the selected eigenvectors).
            if s * 4 >= m {
                let eig = prep.dense_tve_eigen(tve)?;
                let keep = eig.eigenvalues.len().max(1);
                let basis = SubspaceSeed::from_components(&eig.eigenvectors, keep);
                return Ok(RandomizedFit {
                    pca: prep.pca(eig, keep),
                    basis,
                    warm_used: false,
                    scores: None,
                });
            }
            let out =
                randomized_covariance_eigen(&prep.centered, s, rf, carry.as_ref().or(warm_now))?;
            // Smallest rank whose captured variance (exact for this basis —
            // Ritz values are v·C·v along orthonormal directions) reaches
            // the target.
            let mut hit = None;
            if prep.total_variance <= 0.0 {
                hit = Some(1);
            } else {
                let mut acc = 0.0;
                for (i, &l) in out.eigen.eigenvalues.iter().enumerate() {
                    acc += l.max(0.0);
                    if acc >= target {
                        hit = Some(i + 1);
                        break;
                    }
                }
            }
            if let Some(keep) = hit {
                let warm_used = carry.is_none() && warm_now.is_some();
                let scores = scores_from_t(&out.scores_t, keep)?;
                return Ok(RandomizedFit {
                    pca: prep.pca(out.eigen, keep),
                    basis: out.seed,
                    warm_used,
                    scores: Some(scores),
                });
            }
            // Quality gate: a warm basis that can't reach the target gets
            // one cold retry at the same rank before we conclude the rank
            // itself is short.
            if warm_now.is_some() && carry.is_none() {
                warm_now = None;
                continue;
            }
            let explained: f64 = out.eigen.eigenvalues.iter().map(|l| l.max(0.0)).sum();
            let next = predict_tve_rank(&out.eigen.eigenvalues, explained, target, s, m);
            k = next.max(k + 1).min(m);
            carry = Some(out.seed);
        }
    }

    fn fit_impl(data: &Matrix, opts: PcaOptions, truncate: Option<usize>) -> Result<Pca> {
        let prep = Prepared::new(data, opts)?;
        let m = prep.cov.rows();
        let eig = match truncate {
            // 24 power iterations suffice for the strongly separated
            // covariance spectra DPZ feeds this path; the Rayleigh-Ritz
            // projection in sym_eigen_topk mops up the residual rotation.
            Some(k) => crate::eigen::sym_eigen_topk(&prep.cov, k.clamp(1, m), 24)?,
            None => sym_eigen(&prep.cov)?,
        };
        Ok(prep.into_pca(eig))
    }

    /// Number of features the model was fitted on.
    pub fn n_features(&self) -> usize {
        self.mean.len()
    }

    /// Number of samples the model was fitted on.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Covariance eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Per-feature means removed before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Per-feature standard deviations when the model standardizes.
    pub fn feature_scale(&self) -> Option<&[f64]> {
        self.scale.as_deref()
    }

    /// The orthonormal component basis (`m x c`, columns = components;
    /// `c = m` for a full fit, `c = k` for a truncated one).
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Number of eigenpairs actually available.
    pub fn n_components(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Total variance (covariance trace), valid even when truncated.
    pub fn total_variance(&self) -> f64 {
        self.total_variance
    }

    /// The `m x k` projection matrix of the leading `k` components.
    pub fn projection(&self, k: usize) -> Matrix {
        self.components.leading_cols(k.min(self.n_components()))
    }

    /// Fraction of total variance explained by each *available* component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total = self.total_variance;
        if total <= 0.0 {
            // Degenerate (constant) data: define the first component as
            // carrying everything so downstream k-selection picks k = 1.
            let mut r = vec![0.0; self.eigenvalues.len()];
            if let Some(first) = r.first_mut() {
                *first = 1.0;
            }
            return r;
        }
        self.eigenvalues.iter().map(|&l| l / total).collect()
    }

    /// Cumulative total variance explained (the paper's TVE curve, Eq. 2).
    /// Entry `i` is the TVE of keeping `i + 1` components.
    pub fn cumulative_tve(&self) -> Vec<f64> {
        let ratios = self.explained_variance_ratio();
        let mut acc = 0.0;
        ratios
            .iter()
            .map(|r| {
                acc += r;
                acc.min(1.0)
            })
            .collect()
    }

    /// Smallest `k` whose TVE reaches `tve` (Method 2 of Algorithm 1).
    /// Always returns at least 1 and at most `m`.
    pub fn k_for_tve(&self, tve: f64) -> usize {
        let cum = self.cumulative_tve();
        for (i, &c) in cum.iter().enumerate() {
            if c >= tve {
                return i + 1;
            }
        }
        cum.len().max(1)
    }

    /// Project `data` onto the leading `k` components, producing `n x k`
    /// scores.
    pub fn transform(&self, data: &Matrix, k: usize) -> Result<Matrix> {
        let m = self.n_features();
        if data.cols() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "Pca::transform",
                got: format!("{} features", data.cols()),
                expected: format!("{m} features"),
            });
        }
        let k = k.min(self.n_components());
        let mut centered = data.clone();
        for r in 0..centered.rows() {
            let row = centered.row_mut(r);
            for (v, &mu) in row.iter_mut().zip(&self.mean) {
                *v -= mu;
            }
            if let Some(scale) = &self.scale {
                for (v, &s) in row.iter_mut().zip(scale) {
                    *v /= s;
                }
            }
        }
        centered.matmul(&self.projection(k))
    }

    /// Reconstruct `n x m` data from `n x k` scores (the PCA inverse
    /// transform): `X̂ = Y·Dᵀ (·scale) + mean`.
    pub fn inverse_transform(&self, scores: &Matrix) -> Result<Matrix> {
        let k = scores.cols();
        if k > self.n_components() {
            return Err(LinalgError::DimensionMismatch {
                op: "Pca::inverse_transform",
                got: format!("{k} components"),
                expected: format!("<= {}", self.n_components()),
            });
        }
        let proj_t = self.projection(k).transpose();
        let mut recon = scores.matmul(&proj_t)?;
        for r in 0..recon.rows() {
            let row = recon.row_mut(r);
            if let Some(scale) = &self.scale {
                for (v, &s) in row.iter_mut().zip(scale) {
                    *v *= s;
                }
            }
            for (v, &mu) in row.iter_mut().zip(&self.mean) {
                *v += mu;
            }
        }
        Ok(recon)
    }
}

/// Outcome of a randomized fit: the model, the converged subspace (for
/// warm-starting the next statistically similar fit) and whether the warm
/// seed survived the quality gate.
#[derive(Debug, Clone)]
pub struct RandomizedFit {
    /// The fitted (truncated) model.
    pub pca: Pca,
    /// The converged subspace, energy-descending — hand it to the next
    /// fit's `warm` parameter.
    pub basis: SubspaceSeed,
    /// Whether the returned model was seeded from the provided warm basis
    /// (false for cold fits, gate fallbacks and dense-solver crossovers).
    pub warm_used: bool,
    /// Scores of the fitted data in the kept basis (`n x keep`), recovered
    /// from the range-finder's sketch product at `O(s²·n)` instead of a
    /// fresh `O(n·m·k)` projection — algebraically `(X−μ)(/σ)·V`. `None`
    /// when the fit crossed over to a dense solver (callers project
    /// normally via [`Pca::transform`]).
    pub scores: Option<Matrix>,
}

/// Leading `keep` rows of a transposed score matrix (`s x n`, row-major so
/// the prefix is contiguous), returned untransposed as `n x keep`.
fn scores_from_t(scores_t: &Matrix, keep: usize) -> Result<Matrix> {
    let n = scores_t.cols();
    let keep = keep.min(scores_t.rows());
    let rows = scores_t.as_slice()[..keep * n].to_vec();
    Ok(Matrix::from_vec(keep, n, rows)?.transpose())
}

/// Center (and optionally standardize) a working copy of `data`, returning
/// `(mean, scale, centered)` — the shared front half of every fit path.
fn center_data(data: &Matrix, opts: PcaOptions) -> Result<(Vec<f64>, Option<Vec<f64>>, Matrix)> {
    let (n, m) = data.shape();
    if n < 2 || m == 0 {
        return Err(LinalgError::Empty(
            "Pca::fit needs >=2 samples and >=1 feature",
        ));
    }

    // Column means.
    let mut mean = vec![0.0; m];
    for r in 0..n {
        for (acc, &v) in mean.iter_mut().zip(data.row(r)) {
            *acc += v;
        }
    }
    for v in &mut mean {
        *v /= n as f64;
    }

    // Center (and optionally standardize) a working copy.
    let mut centered = data.clone();
    for r in 0..n {
        for (v, &mu) in centered.row_mut(r).iter_mut().zip(&mean) {
            *v -= mu;
        }
    }
    let scale = if opts.standardize {
        let mut sd = vec![0.0; m];
        for r in 0..n {
            for (acc, &v) in sd.iter_mut().zip(centered.row(r)) {
                *acc += v * v;
            }
        }
        for v in &mut sd {
            *v = (*v / (n - 1) as f64).sqrt();
            if *v == 0.0 {
                *v = 1.0; // constant feature: leave untouched
            }
        }
        for r in 0..n {
            for (v, &s) in centered.row_mut(r).iter_mut().zip(&sd) {
                *v /= s;
            }
        }
        Some(sd)
    } else {
        None
    };
    Ok((mean, scale, centered))
}

/// Centered/standardized covariance, computed once and shared by the full,
/// truncated and TVE-bounded fit paths.
struct Prepared {
    mean: Vec<f64>,
    scale: Option<Vec<f64>>,
    cov: Matrix,
    total_variance: f64,
    n_samples: usize,
}

impl Prepared {
    fn new(data: &Matrix, opts: PcaOptions) -> Result<Prepared> {
        let n = data.rows();
        let (mean, scale, centered) = center_data(data, opts)?;
        let m = centered.cols();
        // Covariance = centeredᵀ·centered / (n-1).
        let mut cov = centered.gram();
        cov.scale(1.0 / (n - 1) as f64);
        let total_variance: f64 = (0..m).map(|i| cov.get(i, i)).sum();
        Ok(Prepared {
            mean,
            scale,
            cov,
            total_variance,
            n_samples: n,
        })
    }

    fn into_pca(self, eig: SymEigen) -> Pca {
        let SymEigen {
            mut eigenvalues,
            eigenvectors,
        } = eig;
        // Covariance matrices are PSD; clamp the numerical dust.
        for l in &mut eigenvalues {
            if *l < 0.0 {
                *l = 0.0;
            }
        }
        Pca {
            mean: self.mean,
            scale: self.scale,
            components: eigenvectors,
            eigenvalues,
            total_variance: self.total_variance,
            n_samples: self.n_samples,
        }
    }
}

/// Data prepared for a fit that never forms the Gram: the centered (and
/// optionally standardized) working copy plus the exact total variance,
/// computed in `O(n·m)` — the front end of the randomized range-finder
/// paths. Holding the centered matrix (instead of the covariance) is what
/// lets escalation retries and the dense crossover reuse one preparation.
struct PreparedData {
    mean: Vec<f64>,
    scale: Option<Vec<f64>>,
    centered: Matrix,
    total_variance: f64,
    n_samples: usize,
}

impl PreparedData {
    fn new(data: &Matrix, opts: PcaOptions) -> Result<PreparedData> {
        let n = data.rows();
        let (mean, scale, centered) = center_data(data, opts)?;
        // trace(AᵀA)/(n−1) without forming AᵀA: the squared Frobenius norm
        // of the centered data, one sequential (deterministic) pass.
        let total_variance = centered
            .as_slice()
            .iter()
            .fold(0.0f64, |acc, &v| v.mul_add(v, acc))
            / (n - 1) as f64;
        Ok(PreparedData {
            mean,
            scale,
            centered,
            total_variance,
            n_samples: n,
        })
    }

    /// Assemble a model from an eigensolve over this data, keeping the
    /// `keep` leading pairs. Borrows (rather than consumes) the
    /// preparation so escalation loops can retry.
    fn pca(&self, eig: SymEigen, keep: usize) -> Pca {
        let SymEigen {
            mut eigenvalues,
            eigenvectors,
        } = eig;
        let keep = keep
            .clamp(1, eigenvalues.len().max(1))
            .min(eigenvalues.len().max(1));
        eigenvalues.truncate(keep);
        for l in &mut eigenvalues {
            if *l < 0.0 {
                *l = 0.0;
            }
        }
        let components = if eigenvectors.cols() == eigenvalues.len() {
            eigenvectors
        } else {
            eigenvectors.leading_cols(eigenvalues.len())
        };
        Pca {
            mean: self.mean.clone(),
            scale: self.scale.clone(),
            components,
            eigenvalues,
            total_variance: self.total_variance,
            n_samples: self.n_samples,
        }
    }

    /// Dense exact-TVE crossover: form the Gram once and run the same
    /// selection rule as [`Pca::fit_tve_exact`].
    fn dense_tve_eigen(&self, tve: f64) -> Result<SymEigen> {
        let mut cov = self.centered.gram();
        cov.scale(1.0 / (self.n_samples - 1) as f64);
        let target = tve * self.total_variance;
        let (_spectrum, eig) = crate::eigen::sym_eigen_select(&cov, |vals| {
            let mut acc = 0.0;
            for (i, &l) in vals.iter().enumerate() {
                acc += l.max(0.0);
                if acc >= target {
                    return i + 1;
                }
            }
            vals.len().max(1)
        })?;
        Ok(eig)
    }
}

/// Predict the rank needed to close a TVE deficit from an insufficient
/// truncated solve: model the unseen spectrum as a geometric tail with the
/// decay ratio observed over the back half of the `k` computed eigenvalues,
/// solve for how many more terms reach `target`, and pad by 25% for model
/// error. Returns `m` (forcing the caller's full-solve path) when the tail
/// is too flat for any truncated rank to win or `k` is too short to fit a
/// ratio.
fn predict_tve_rank(eigenvalues: &[f64], explained: f64, target: f64, k: usize, m: usize) -> usize {
    if k < 4 {
        return (k * 2).max(2);
    }
    let deficit = target - explained;
    let tail = eigenvalues[k - 1].max(0.0);
    let j = k / 2;
    let head = eigenvalues[j].max(0.0);
    if tail <= 0.0 || head <= 0.0 || tail > head {
        return m;
    }
    let r = (tail / head).powf(1.0 / (k - 1 - j) as f64);
    if r.is_nan() || r <= 0.0 || r >= 1.0 {
        return m;
    }
    // Infinite-tail mass under the model: tail · r / (1 − r). If even that
    // cannot close the deficit, the spectrum is too flat — go full.
    let geo_all = tail * r / (1.0 - r);
    if !geo_all.is_finite() || geo_all <= deficit {
        return m;
    }
    let t = (1.0 - deficit * (1.0 - r) / (tail * r)).ln() / r.ln();
    if !t.is_finite() || t < 0.0 {
        return m;
    }
    let extra = (t.ceil() as usize).max(1);
    let next = k + extra;
    next + next / 4
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic low-rank-ish test data: two latent factors + noise.
    fn synthetic(n: usize, m: usize, seed: u64) -> Matrix {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let load_a: Vec<f64> = (0..m).map(|j| (j as f64 * 0.4).sin()).collect();
        let load_b: Vec<f64> = (0..m).map(|j| (j as f64 * 0.9).cos()).collect();
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let (fa, fb) = (next() * 10.0, next() * 3.0);
            rows.push(
                (0..m)
                    .map(|j| fa * load_a[j] + fb * load_b[j] + 0.01 * next())
                    .collect::<Vec<_>>(),
            );
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn full_rank_round_trip_is_exact() {
        let x = synthetic(40, 8, 3);
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let scores = pca.transform(&x, 8).unwrap();
        let recon = pca.inverse_transform(&scores).unwrap();
        assert!(recon.max_abs_diff(&x) < 1e-9);
    }

    #[test]
    fn two_components_capture_two_factor_data() {
        let x = synthetic(200, 12, 5);
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let tve = pca.cumulative_tve();
        assert!(
            tve[1] > 0.999,
            "two factors should explain ~everything, got {}",
            tve[1]
        );
        let scores = pca.transform(&x, 2).unwrap();
        let recon = pca.inverse_transform(&scores).unwrap();
        assert!(recon.max_abs_diff(&x) < 0.1);
    }

    #[test]
    fn eigenvalues_descending_and_nonnegative() {
        let x = synthetic(60, 10, 9);
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        for w in pca.eigenvalues().windows(2) {
            assert!(w[0] >= w[1]);
        }
        for &l in pca.eigenvalues() {
            assert!(l >= 0.0);
        }
    }

    #[test]
    fn explained_variance_sums_to_one() {
        let x = synthetic(50, 6, 17);
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let sum: f64 = pca.explained_variance_ratio().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k_for_tve_monotone() {
        let x = synthetic(100, 15, 23);
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let k1 = pca.k_for_tve(0.9);
        let k2 = pca.k_for_tve(0.999);
        let k3 = pca.k_for_tve(0.9999999);
        assert!(k1 <= k2 && k2 <= k3);
        assert!(k1 >= 1 && k3 <= 15);
    }

    #[test]
    fn standardize_recovers_round_trip_too() {
        let x = synthetic(80, 7, 31);
        let pca = Pca::fit(&x, PcaOptions { standardize: true }).unwrap();
        assert!(pca.feature_scale().is_some());
        let scores = pca.transform(&x, 7).unwrap();
        let recon = pca.inverse_transform(&scores).unwrap();
        assert!(recon.max_abs_diff(&x) < 1e-8);
    }

    #[test]
    fn constant_feature_survives_standardization() {
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![5.0, i as f64, (i as f64 * 0.3).sin()]);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&x, PcaOptions { standardize: true }).unwrap();
        let scores = pca.transform(&x, 3).unwrap();
        let recon = pca.inverse_transform(&scores).unwrap();
        assert!(recon.max_abs_diff(&x) < 1e-9);
    }

    #[test]
    fn constant_data_degenerates_gracefully() {
        let x = Matrix::from_vec(10, 3, vec![2.5; 30]).unwrap();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        assert_eq!(pca.k_for_tve(0.999), 1);
        let scores = pca.transform(&x, 1).unwrap();
        let recon = pca.inverse_transform(&scores).unwrap();
        assert!(recon.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn transform_rejects_wrong_width() {
        let x = synthetic(30, 5, 41);
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let bad = Matrix::zeros(4, 7);
        assert!(pca.transform(&bad, 2).is_err());
    }

    #[test]
    fn fit_rejects_degenerate_shapes() {
        assert!(Pca::fit(&Matrix::zeros(1, 4), PcaOptions::default()).is_err());
        assert!(Pca::fit(&Matrix::zeros(10, 0), PcaOptions::default()).is_err());
    }

    #[test]
    fn truncated_fit_matches_full_on_leading_components() {
        let x = synthetic(150, 10, 91);
        let full = Pca::fit(&x, PcaOptions::default()).unwrap();
        let trunc = Pca::fit_truncated(&x, PcaOptions::default(), 3).unwrap();
        assert_eq!(trunc.n_components(), 3);
        assert!((full.total_variance() - trunc.total_variance()).abs() < 1e-9);
        for i in 0..3 {
            let rel =
                (full.eigenvalues()[i] - trunc.eigenvalues()[i]).abs() / full.eigenvalues()[0];
            assert!(rel < 1e-6, "eigenvalue {i}");
        }
        // Reconstruction through the truncated basis matches the full one.
        let s_full = full.transform(&x, 2).unwrap();
        let s_trunc = trunc.transform(&x, 2).unwrap();
        let r_full = full.inverse_transform(&s_full).unwrap();
        let r_trunc = trunc.inverse_transform(&s_trunc).unwrap();
        assert!(r_full.max_abs_diff(&r_trunc) < 1e-6);
    }

    #[test]
    fn tve_bounded_fit_matches_full_solve() {
        // Satellite regression: the escalating truncated solve must agree
        // with the full eigendecomposition to 1e-10 on both the computed
        // eigenvalues and the TVE curve.
        let x = synthetic(150, 24, 47);
        let full = Pca::fit(&x, PcaOptions::default()).unwrap();
        let bounded = Pca::fit_tve_bounded(&x, PcaOptions::default(), 0.999, 1).unwrap();
        // Started from k0 = 1, so reaching the target proves escalation
        // worked; two latent factors mean k should stay far below m.
        let kept = bounded.n_components();
        assert!(kept < 24, "escalation should truncate well below m");
        assert!((full.total_variance() - bounded.total_variance()).abs() < 1e-10);
        let lmax = full.eigenvalues()[0].max(1e-300);
        for i in 0..kept {
            let rel = (full.eigenvalues()[i] - bounded.eigenvalues()[i]).abs() / lmax;
            assert!(rel < 1e-10, "eigenvalue {i} off by {rel:.3e}");
        }
        let tve_full = full.cumulative_tve();
        let tve_bounded = bounded.cumulative_tve();
        for i in 0..kept {
            assert!(
                (tve_full[i] - tve_bounded[i]).abs() < 1e-10,
                "TVE entry {i} diverges"
            );
        }
        assert!(tve_bounded[kept - 1] >= 0.999);
        // Reconstruction through the bounded basis matches the full one.
        let s_full = full.transform(&x, 2).unwrap();
        let s_bounded = bounded.transform(&x, 2).unwrap();
        let r_full = full.inverse_transform(&s_full).unwrap();
        let r_bounded = bounded.inverse_transform(&s_bounded).unwrap();
        assert!(r_full.max_abs_diff(&r_bounded) < 1e-8);
    }

    #[test]
    fn tve_bounded_fit_falls_back_to_full_solve_on_flat_spectra() {
        // A spectrum with no low-rank structure forces escalation all the
        // way to the full solve; the result must still be a complete model.
        let mut s = 13u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut rows = Vec::new();
        for _ in 0..60 {
            rows.push((0..8).map(|_| next()).collect::<Vec<_>>());
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let full = Pca::fit(&x, PcaOptions::default()).unwrap();
        let bounded = Pca::fit_tve_bounded(&x, PcaOptions::default(), 0.9999, 1).unwrap();
        assert_eq!(bounded.n_components(), 8);
        let lmax = full.eigenvalues()[0].max(1e-300);
        for i in 0..8 {
            let rel = (full.eigenvalues()[i] - bounded.eigenvalues()[i]).abs() / lmax;
            assert!(rel < 1e-10, "eigenvalue {i} off by {rel:.3e}");
        }
    }

    #[test]
    fn tve_exact_fit_matches_full_solve() {
        let x = synthetic(240, 30, 23);
        let tve = 0.999;
        let full = Pca::fit(&x, PcaOptions::default()).unwrap();
        let k_full = full.k_for_tve(tve);
        let exact = Pca::fit_tve_exact(&x, PcaOptions::default(), tve).unwrap();
        // Exactly the TVE-minimal rank, no margin.
        assert_eq!(exact.n_components(), k_full);
        let lmax = full.eigenvalues()[0].max(1e-300);
        for i in 0..k_full {
            let rel = (full.eigenvalues()[i] - exact.eigenvalues()[i]).abs() / lmax;
            assert!(rel < 1e-10, "eigenvalue {i} off by {rel:.3e}");
        }
        assert!((exact.total_variance() - full.total_variance()).abs() < 1e-9);
        // Reconstruction through the exact basis matches the full one.
        let s_full = full.transform(&x, k_full).unwrap();
        let s_exact = exact.transform(&x, k_full).unwrap();
        let r_full = full.inverse_transform(&s_full).unwrap();
        let r_exact = exact.inverse_transform(&s_exact).unwrap();
        assert!(r_full.max_abs_diff(&r_exact) < 1e-8);
    }

    #[test]
    fn tve_exact_fit_handles_degenerate_targets() {
        // Constant data: total variance 0 — degenerates to one component.
        let x = Matrix::from_rows(&vec![vec![2.5f64; 4]; 8]).unwrap();
        let pca = Pca::fit_tve_exact(&x, PcaOptions::default(), 0.99999).unwrap();
        assert_eq!(pca.n_components(), 1);
        // TVE = 1 keeps every component (flat random spectrum).
        let y = synthetic(60, 8, 31);
        let all = Pca::fit_tve_exact(&y, PcaOptions::default(), 1.0).unwrap();
        assert!(all.n_components() >= Pca::fit(&y, PcaOptions::default()).unwrap().k_for_tve(1.0));
    }

    #[test]
    fn truncated_tve_uses_total_variance() {
        let x = synthetic(150, 12, 17);
        let trunc = Pca::fit_truncated(&x, PcaOptions::default(), 2).unwrap();
        // Two dominant factors: the truncated TVE must still be a fraction
        // of the *total* variance, close to the full model's value.
        let full = Pca::fit(&x, PcaOptions::default()).unwrap();
        let a = trunc.cumulative_tve();
        let b = full.cumulative_tve();
        assert!((a[1] - b[1]).abs() < 1e-6);
        assert!(a[1] <= 1.0);
    }

    #[test]
    fn randomized_fit_matches_full_on_leading_components() {
        let x = synthetic(200, 48, 91);
        let full = Pca::fit(&x, PcaOptions::default()).unwrap();
        let rf = RangeFinderOptions::default();
        let rand = Pca::fit_randomized(&x, PcaOptions::default(), 4, &rf).unwrap();
        assert_eq!(rand.n_components(), 4);
        assert!((full.total_variance() - rand.total_variance()).abs() < 1e-9);
        let lmax = full.eigenvalues()[0].max(1e-300);
        // Two latent factors: leading pairs must agree tightly, and the
        // Ritz values must never overshoot the true spectrum.
        for i in 0..2 {
            let rel = (full.eigenvalues()[i] - rand.eigenvalues()[i]).abs() / lmax;
            assert!(rel < 1e-8, "eigenvalue {i} off by {rel:.3e}");
        }
        for i in 0..4 {
            assert!(rand.eigenvalues()[i] <= full.eigenvalues()[i] + 1e-9 * lmax);
        }
        let s_full = full.transform(&x, 2).unwrap();
        let s_rand = rand.transform(&x, 2).unwrap();
        let r_full = full.inverse_transform(&s_full).unwrap();
        let r_rand = rand.inverse_transform(&s_rand).unwrap();
        assert!(r_full.max_abs_diff(&r_rand) < 1e-6);
    }

    #[test]
    fn randomized_fit_is_bitwise_deterministic() {
        let x = synthetic(150, 40, 13);
        let rf = RangeFinderOptions::default();
        let a = Pca::fit_randomized(&x, PcaOptions::default(), 5, &rf).unwrap();
        let b = Pca::fit_randomized(&x, PcaOptions::default(), 5, &rf).unwrap();
        assert_eq!(a.components().as_slice(), b.components().as_slice());
        assert_eq!(a.eigenvalues(), b.eigenvalues());
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn tve_randomized_meets_target_and_matches_exact_rank_roughly() {
        let x = synthetic(300, 64, 29);
        let tve = 0.999;
        let rf = RangeFinderOptions::default();
        let fit = Pca::fit_tve_randomized(&x, PcaOptions::default(), tve, 2, &rf, None).unwrap();
        assert!(!fit.warm_used);
        let kept = fit.pca.n_components();
        // The Ritz TVE is exact for the fitted basis, so the model's own
        // cumulative TVE must certify the target.
        assert!(fit.pca.cumulative_tve()[kept - 1] >= tve - 1e-12);
        // Conservative selection can only pick k at or above the exact rank,
        // and on two-factor data must stay far below m.
        let exact = Pca::fit_tve_exact(&x, PcaOptions::default(), tve).unwrap();
        assert!(kept >= exact.n_components());
        assert!(kept < 16, "two-factor data picked k = {kept}");
    }

    #[test]
    fn tve_randomized_escalates_from_tiny_sketch() {
        // Data with ~8 strong factors but k0 = 1: the first sketch misses
        // the target and the predictor must escalate until it is met.
        let mut s = 77u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let m = 96;
        let loads: Vec<Vec<f64>> = (0..8)
            .map(|f| {
                (0..m)
                    .map(|j| ((j * (f + 1)) as f64 * 0.37).sin())
                    .collect()
            })
            .collect();
        let mut rows = Vec::new();
        for _ in 0..240 {
            let f: Vec<f64> = (0..8).map(|_| next() * 5.0).collect();
            rows.push(
                (0..m)
                    .map(|j| {
                        loads.iter().zip(&f).map(|(l, w)| w * l[j]).sum::<f64>() + 0.01 * next()
                    })
                    .collect::<Vec<_>>(),
            );
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let rf = RangeFinderOptions {
            oversample: 4,
            ..Default::default()
        };
        let fit = Pca::fit_tve_randomized(&x, PcaOptions::default(), 0.9999, 1, &rf, None).unwrap();
        let kept = fit.pca.n_components();
        assert!(fit.pca.cumulative_tve()[kept - 1] >= 0.9999 - 1e-12);
        assert!(kept >= 8, "needs all eight factors, kept {kept}");
    }

    #[test]
    fn tve_randomized_crosses_over_to_dense_on_flat_spectra() {
        // Pure noise: no truncated rank wins, the crossover must hand the
        // fit to the dense exact solver and still certify the target.
        let mut s = 5u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut rows = Vec::new();
        for _ in 0..100 {
            rows.push((0..24).map(|_| next()).collect::<Vec<_>>());
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let rf = RangeFinderOptions::default();
        let fit = Pca::fit_tve_randomized(&x, PcaOptions::default(), 0.9999, 1, &rf, None).unwrap();
        assert!(!fit.warm_used);
        let kept = fit.pca.n_components();
        assert!(fit.pca.cumulative_tve()[kept - 1] >= 0.9999 - 1e-12);
        assert!(kept > 16, "flat spectrum needs nearly all components");
    }

    #[test]
    fn warm_start_reuses_similar_basis_and_gates_dissimilar_one() {
        let rf = RangeFinderOptions::default();
        let opts = PcaOptions::default();
        let a = synthetic(200, 128, 3);
        let b = synthetic(200, 128, 4); // same factors, different noise draw
        let cold = Pca::fit_tve_randomized(&a, opts, 0.999, 2, &rf, None).unwrap();
        // Statistically similar chunk: the warm basis passes the gate.
        let warm = Pca::fit_tve_randomized(&b, opts, 0.999, 2, &rf, Some(&cold.basis)).unwrap();
        assert!(warm.warm_used, "similar chunk should accept the warm basis");
        let kept = warm.pca.n_components();
        assert!(warm.pca.cumulative_tve()[kept - 1] >= 0.999 - 1e-12);

        // Dissimilar data (different loadings entirely): quality must still
        // be certified — via cold fallback or escalation, never a miss.
        let mut s = 99u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut rows = Vec::new();
        for _ in 0..200 {
            let f = next() * 8.0;
            rows.push(
                (0..128)
                    .map(|j| f * ((j * j) as f64 * 0.11).cos() + 0.05 * next())
                    .collect::<Vec<_>>(),
            );
        }
        let c = Matrix::from_rows(&rows).unwrap();
        let gated = Pca::fit_tve_randomized(&c, opts, 0.999, 2, &rf, Some(&cold.basis)).unwrap();
        let kept = gated.pca.n_components();
        assert!(gated.pca.cumulative_tve()[kept - 1] >= 0.999 - 1e-12);
        // And the result must match a cold fit bit-for-bit when the gate
        // rejected the seed (same rank path, same probe stream).
        if !gated.warm_used {
            let cold_c = Pca::fit_tve_randomized(&c, opts, 0.999, 2, &rf, None).unwrap();
            assert_eq!(
                gated.pca.components().as_slice(),
                cold_c.pca.components().as_slice()
            );
        }
    }

    #[test]
    fn fixed_rank_warm_gate_falls_back_cold() {
        let rf = RangeFinderOptions::default();
        let opts = PcaOptions::default();
        let a = synthetic(200, 128, 7);
        let cold = Pca::fit_randomized_warm(&a, opts, 4, &rf, None, None).unwrap();
        assert!(!cold.warm_used);
        // Same data, warm seed, with a gate: must accept.
        let again =
            Pca::fit_randomized_warm(&a, opts, 4, &rf, Some(&cold.basis), Some(0.99)).unwrap();
        assert!(again.warm_used);
        // A nonsense gate (impossible target) forces the cold fallback.
        let forced =
            Pca::fit_randomized_warm(&a, opts, 2, &rf, Some(&cold.basis), Some(1.0)).unwrap();
        assert!(!forced.warm_used);
        let plain = Pca::fit_randomized_warm(&a, opts, 2, &rf, None, None).unwrap();
        assert_eq!(
            forced.pca.components().as_slice(),
            plain.pca.components().as_slice()
        );
    }

    #[test]
    fn randomized_fit_scores_match_transform() {
        let x = synthetic(220, 128, 17);
        let rf = RangeFinderOptions::default();
        let fit = Pca::fit_tve_randomized(&x, PcaOptions::default(), 0.999, 4, &rf, None).unwrap();
        let scores = fit.scores.expect("randomized path emits scores");
        let keep = fit.pca.n_components();
        assert_eq!(scores.shape(), (220, keep));
        let reference = fit.pca.transform(&x, keep).unwrap();
        assert!(
            scores.max_abs_diff(&reference) < 1e-9,
            "sketch-derived scores diverge from the explicit projection"
        );

        let fixed =
            Pca::fit_randomized_warm(&x, PcaOptions::default(), 6, &rf, None, None).unwrap();
        let scores = fixed.scores.expect("randomized path emits scores");
        let reference = fixed.pca.transform(&x, 6).unwrap();
        assert!(scores.max_abs_diff(&reference) < 1e-9);
    }

    #[test]
    fn randomized_fit_constant_data_degenerates_gracefully() {
        let x = Matrix::from_vec(20, 8, vec![3.25; 160]).unwrap();
        let rf = RangeFinderOptions::default();
        let fit =
            Pca::fit_tve_randomized(&x, PcaOptions::default(), 0.99999, 2, &rf, None).unwrap();
        assert_eq!(fit.pca.n_components(), 1);
        let scores = fit.pca.transform(&x, 1).unwrap();
        let recon = fit.pca.inverse_transform(&scores).unwrap();
        assert!(recon.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn scores_are_decorrelated() {
        let x = synthetic(300, 6, 77);
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let scores = pca.transform(&x, 3).unwrap();
        // Off-diagonal covariance of scores should be ~0.
        let c0 = scores.col(0);
        let c1 = scores.col(1);
        let r = crate::stats::pearson(&c0, &c1).unwrap();
        assert!(r.abs() < 1e-6, "PC scores should be uncorrelated, r={r}");
    }
}
