//! Thin singular value decomposition.
//!
//! The DPZ paper weighs PCA against SVD/NMF as the statistical retrieval
//! stage (Section III-A2). This module provides the SVD so that comparison
//! can actually be run: `A = U·Σ·Vᵀ` for an `n×m` matrix with `n ≥ m`,
//! computed via the symmetric eigendecomposition of the `m×m` Gram matrix
//! `AᵀA` (singular values are the square roots of its eigenvalues). For the
//! well-conditioned, strongly low-rank matrices DPZ feeds it, the Gram
//! route is accurate and reuses the crate's cross-validated eigensolver.

use crate::eigen::sym_eigen;
use crate::{LinalgError, Matrix, Result};

/// A thin SVD: `a ≈ u · diag(s) · vt`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// `n × r` matrix of left singular vectors (columns, orthonormal).
    pub u: Matrix,
    /// Singular values, descending, `r = min(n, m)` entries.
    pub s: Vec<f64>,
    /// `r × m` matrix of right singular vectors (rows, orthonormal).
    pub vt: Matrix,
}

impl Svd {
    /// Reconstruct the best rank-`k` approximation `U_k Σ_k Vᵀ_k`.
    pub fn low_rank(&self, k: usize) -> Result<Matrix> {
        let k = k.min(self.s.len());
        let n = self.u.rows();
        let m = self.vt.cols();
        let mut out = Matrix::zeros(n, m);
        for c in 0..k {
            let sigma = self.s[c];
            if sigma == 0.0 {
                continue;
            }
            for r in 0..n {
                let u_rc = self.u.get(r, c) * sigma;
                let row = out.row_mut(r);
                for (j, o) in row.iter_mut().enumerate() {
                    *o += u_rc * self.vt.get(c, j);
                }
            }
        }
        Ok(out)
    }
}

/// Compute the thin SVD of `a` (`n × m`, requires `n >= m >= 1`).
pub fn svd(a: &Matrix) -> Result<Svd> {
    let (n, m) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty("svd"));
    }
    if n < m {
        return Err(LinalgError::DimensionMismatch {
            op: "svd",
            got: format!("{n}x{m}"),
            expected: "n >= m (transpose the input for wide matrices)".to_string(),
        });
    }
    // Gram matrix and its eigenpairs: AᵀA = V Σ² Vᵀ.
    let gram = a.gram();
    let eig = sym_eigen(&gram)?;
    let s: Vec<f64> = eig.eigenvalues.iter().map(|&l| l.max(0.0).sqrt()).collect();
    let v = eig.eigenvectors; // m × m, columns = right singular vectors

    // U = A·V·Σ⁻¹ column by column; zero singular values get zero columns
    // (the thin factorization stays valid since σ=0 kills the term).
    let av = a.matmul(&v)?;
    let mut u = Matrix::zeros(n, m);
    for (c, &sigma) in s.iter().enumerate() {
        if sigma > 1e-300 {
            let inv = 1.0 / sigma;
            for r in 0..n {
                u.set(r, c, av.get(r, c) * inv);
            }
        }
    }
    Ok(Svd {
        u,
        s,
        vt: v.transpose(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, m: usize, seed: u64) -> Matrix {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut out = Matrix::zeros(n, m);
        for r in 0..n {
            for c in 0..m {
                out.set(r, c, next());
            }
        }
        out
    }

    #[test]
    fn full_rank_reconstruction() {
        let a = pseudo(12, 6, 3);
        let d = svd(&a).unwrap();
        let recon = d.low_rank(6).unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let a = pseudo(20, 8, 7);
        let d = svd(&a).unwrap();
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(d.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn orthonormal_factors() {
        let a = pseudo(15, 5, 11);
        let d = svd(&a).unwrap();
        let utu = d.u.transpose().matmul(&d.u).unwrap();
        assert!(utu.max_abs_diff(&Matrix::identity(5)) < 1e-8);
        let vvt = d.vt.matmul(&d.vt.transpose()).unwrap();
        assert!(vvt.max_abs_diff(&Matrix::identity(5)) < 1e-9);
    }

    #[test]
    fn known_diagonal_case() {
        // A = diag(3, 2) stacked with zeros: singular values 3 and 2.
        let a = Matrix::from_vec(3, 2, vec![3.0, 0.0, 0.0, 2.0, 0.0, 0.0]).unwrap();
        let d = svd(&a).unwrap();
        assert!((d.s[0] - 3.0).abs() < 1e-10);
        assert!((d.s[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn low_rank_truncation_error_matches_tail() {
        // Build an exactly rank-2 matrix; rank-2 truncation is exact and
        // the rank-1 Frobenius error equals sigma_2.
        let u1: Vec<f64> = (0..10).map(|i| (i as f64 * 0.3).sin()).collect();
        let u2: Vec<f64> = (0..10).map(|i| (i as f64 * 0.9).cos()).collect();
        let mut a = Matrix::zeros(10, 4);
        for r in 0..10 {
            for c in 0..4 {
                a.set(
                    r,
                    c,
                    5.0 * u1[r] * (c as f64 + 1.0) + 0.5 * u2[r] * (1.5 - c as f64),
                );
            }
        }
        let d = svd(&a).unwrap();
        // The Gram route squares the condition number: numerical dust in a
        // zero eigenvalue surfaces as ~1e-6 relative singular values.
        assert!(d.s[2] < 1e-6 * d.s[0], "rank-2 input must have sigma_3 ~ 0");
        let r2 = d.low_rank(2).unwrap();
        assert!(r2.max_abs_diff(&a) < 1e-9);
        let r1 = d.low_rank(1).unwrap();
        let err = r1.sub(&a).unwrap().frobenius_norm();
        assert!(
            (err - d.s[1]).abs() < 1e-6 * d.s[0],
            "rank-1 error {err} vs sigma2 {}",
            d.s[1]
        );
    }

    #[test]
    fn rank_deficient_handled() {
        // Two identical columns.
        let mut a = Matrix::zeros(6, 2);
        for r in 0..6 {
            a.set(r, 0, r as f64);
            a.set(r, 1, r as f64);
        }
        let d = svd(&a).unwrap();
        assert!(d.s[1] < 1e-6 * d.s[0]);
        let recon = d.low_rank(2).unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn rejects_wide_and_empty() {
        assert!(svd(&Matrix::zeros(2, 5)).is_err());
        assert!(svd(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn svd_energy_matches_pca_variance() {
        // For a centered matrix, sigma_i^2 = (n-1) * lambda_i(PCA).
        use crate::pca::{Pca, PcaOptions};
        let raw = pseudo(40, 5, 23);
        // Center columns.
        let mut a = raw.clone();
        for c in 0..5 {
            let col = a.col(c);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let centered: Vec<f64> = col.iter().map(|v| v - mean).collect();
            a.set_col(c, &centered);
        }
        let d = svd(&a).unwrap();
        let pca = Pca::fit(&raw, PcaOptions::default()).unwrap();
        for i in 0..5 {
            let from_svd = d.s[i] * d.s[i] / 39.0;
            let rel = (from_svd - pca.eigenvalues()[i]).abs() / pca.eigenvalues()[0].max(1e-300);
            assert!(rel < 1e-9, "component {i}");
        }
    }
}
