//! Complex fast Fourier transform.
//!
//! Three engines cover every length:
//!
//! * an iterative, in-place **radix-2 Cooley–Tukey** FFT for power-of-two
//!   lengths,
//! * a recursive **mixed-radix Cooley–Tukey** FFT (radix 2/3/4/5 butterflies,
//!   kissfft-style decimation in time) for lengths whose prime factors are
//!   all in `{2, 3, 5}` — the common case for DPZ block lengths such as
//!   `360 = 2³·3²·5`, where it replaces three padded power-of-two transforms
//!   (Bluestein's convolution at `m = 1024`) with one direct length-`n`
//!   transform, and
//! * **Bluestein's chirp-z algorithm** for everything else (lengths with a
//!   prime factor larger than 5), which re-expresses an arbitrary-length DFT
//!   as a circular convolution evaluated with the radix-2 engine.
//!
//! The DCT routines in [`crate::dct`] are built on top of this module, so DPZ
//! can transform blocks of any length `N`, not just powers of two.

use std::f64::consts::PI;

use dpz_kernels::fft as kfft;

pub use dpz_kernels::Complex;

/// Returns true when `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Reusable workspace for the non-power-of-two (Bluestein) path.
///
/// Bluestein's chirp sequence and the FFT of its circular extension depend
/// only on the transform length and direction, so a scratch that sticks to
/// one `(n, direction)` pair — the common case when transforming many
/// equal-length blocks — computes them once and then performs **zero heap
/// allocations** per transform. Power-of-two lengths are in-place already
/// and never touch the scratch.
#[derive(Debug, Default)]
pub struct FftScratch {
    /// `(n, inverse)` the cached chirp/b_fft were built for.
    key: Option<(usize, bool)>,
    /// Chirp `w[j] = e^{∓i π j² / n}`, length `n`.
    chirp: Vec<Complex>,
    /// FFT of the conjugate chirp's circular extension, length `m`.
    b_fft: Vec<Complex>,
    /// Convolution buffer, length `m`; refilled on every call.
    a: Vec<Complex>,
    /// Forward per-stage twiddle tables and the pow2 length they were built
    /// for (see [`dpz_kernels::fft::fill_stage_twiddles`]).
    tw_fwd: Vec<Complex>,
    tw_fwd_n: usize,
    /// Inverse per-stage twiddle tables and their pow2 length.
    tw_inv: Vec<Complex>,
    tw_inv_n: usize,
    /// `(n, inverse)` the mixed-radix tables were built for.
    mr_key: Option<(usize, bool)>,
    /// Mixed-radix twiddles `e^{∓2πi·k/n}` for `k` in `0..n`.
    mr_tw: Vec<Complex>,
    /// Radix plan as `(radix, remainder)` stages, kissfft layout.
    mr_stages: Vec<(usize, usize)>,
    /// Out-of-place recursion buffer, length `n`.
    mr_buf: Vec<Complex>,
}

impl FftScratch {
    /// Empty scratch; buffers grow on first use and are reused afterwards.
    pub fn new() -> Self {
        FftScratch::default()
    }

    /// (Re)build the per-stage twiddle table for a pow2 length `n` and
    /// direction, returning a view of it.
    fn twiddles(&mut self, n: usize, inverse: bool) -> &[Complex] {
        let (tw, cached) = if inverse {
            (&mut self.tw_inv, &mut self.tw_inv_n)
        } else {
            (&mut self.tw_fwd, &mut self.tw_fwd_n)
        };
        if *cached != n {
            kfft::fill_stage_twiddles(tw, n, inverse);
            *cached = n;
        }
        tw
    }

    /// (Re)build the cached chirp and `b_fft` for `(n, inverse)` if the
    /// scratch currently holds a different pair.
    fn prepare(&mut self, n: usize, inverse: bool) {
        if self.key == Some((n, inverse)) {
            return;
        }
        // Forward DFT needs the chirp w[j] = e^{-i pi j^2 / n}; the inverse
        // flips the sign. Using j^2 mod 2n keeps the angle argument bounded
        // and avoids precision loss for large j.
        let sign = if inverse { -1.0 } else { 1.0 };
        self.chirp.clear();
        self.chirp.reserve(n);
        let two_n = 2 * n as u64;
        for jj in 0..n as u64 {
            let sq = (jj * jj) % two_n;
            let angle = sign * -PI * sq as f64 / n as f64;
            self.chirp.push(Complex::from_angle(angle));
        }

        let m = (2 * n - 1).next_power_of_two();
        self.b_fft.clear();
        self.b_fft.resize(m, Complex::default());
        self.b_fft[0] = self.chirp[0].conj();
        for j in 1..n {
            let c = self.chirp[j].conj();
            self.b_fft[j] = c;
            self.b_fft[m - j] = c;
        }
        self.twiddles(m, false);
        kfft::fft_pow2(&mut self.b_fft, &self.tw_fwd);
        self.a.resize(m, Complex::default());
        self.key = Some((n, inverse));
    }

    /// (Re)build the mixed-radix plan and twiddle table for `(n, inverse)`.
    /// The caller has already checked [`is_smooth`].
    fn prepare_mixed(&mut self, n: usize, inverse: bool) {
        if self.mr_key == Some((n, inverse)) {
            return;
        }
        self.mr_stages.clear();
        let mut rem = n;
        while rem > 1 {
            // Prefer radix 4 (two radix-2 stages fused) like kissfft.
            let p = if rem.is_multiple_of(4) {
                4
            } else if rem.is_multiple_of(2) {
                2
            } else if rem.is_multiple_of(3) {
                3
            } else {
                debug_assert_eq!(rem % 5, 0, "is_smooth admitted a rough length");
                5
            };
            rem /= p;
            self.mr_stages.push((p, rem));
        }
        let base = if inverse {
            2.0 * PI / n as f64
        } else {
            -2.0 * PI / n as f64
        };
        self.mr_tw.clear();
        self.mr_tw.reserve(n);
        for k in 0..n {
            self.mr_tw.push(Complex::from_angle(base * k as f64));
        }
        self.mr_buf.resize(n, Complex::default());
        self.mr_key = Some((n, inverse));
    }
}

/// True when every prime factor of `n` is in `{2, 3, 5}` — the lengths the
/// mixed-radix engine handles directly without Bluestein padding.
fn is_smooth(mut n: usize) -> bool {
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    n == 1
}

/// Mixed-radix transform: out-of-place DIT recursion into the scratch
/// buffer, then copy back. Direction is baked into the twiddle table.
fn mixed_radix(buf: &mut [Complex], inverse: bool, scratch: &mut FftScratch) {
    let n = buf.len();
    scratch.prepare_mixed(n, inverse);
    let FftScratch {
        mr_tw,
        mr_stages,
        mr_buf,
        ..
    } = scratch;
    mr_work(&mut mr_buf[..n], buf, 1, mr_stages, mr_tw, inverse);
    buf.copy_from_slice(&mr_buf[..n]);
}

/// One level of the DIT recursion (kissfft's `kf_work`): split the strided
/// input into `p` interleaved sub-sequences, transform each recursively into
/// a contiguous run of `out`, then combine with a radix-`p` butterfly pass.
fn mr_work(
    out: &mut [Complex],
    inp: &[Complex],
    fstride: usize,
    stages: &[(usize, usize)],
    tw: &[Complex],
    inverse: bool,
) {
    let (p, m) = stages[0];
    debug_assert_eq!(out.len(), p * m);
    if m == 1 {
        for (q, o) in out.iter_mut().enumerate() {
            *o = inp[q * fstride];
        }
    } else {
        for q in 0..p {
            mr_work(
                &mut out[q * m..(q + 1) * m],
                &inp[q * fstride..],
                fstride * p,
                &stages[1..],
                tw,
                inverse,
            );
        }
    }
    match p {
        2 => bfly2(out, m, fstride, tw),
        3 => bfly3(out, m, fstride, tw),
        4 => bfly4(out, m, fstride, tw, inverse),
        5 => bfly5(out, m, fstride, tw),
        _ => unreachable!("mixed-radix plan only emits radices 2/3/4/5"),
    }
}

/// Radix-2 combine: `out` holds two length-`m` sub-transforms.
fn bfly2(out: &mut [Complex], m: usize, fstride: usize, tw: &[Complex]) {
    for u in 0..m {
        let t = out[m + u].mul(tw[u * fstride]);
        out[m + u] = out[u].sub(t);
        out[u] = out[u].add(t);
    }
}

/// Radix-3 combine. `tw[fstride·m]` is the primitive cube root for the
/// table's direction, so only its imaginary part is needed explicitly.
fn bfly3(out: &mut [Complex], m: usize, fstride: usize, tw: &[Complex]) {
    let epi3_im = tw[fstride * m].im;
    for u in 0..m {
        let s1 = out[m + u].mul(tw[u * fstride]);
        let s2 = out[2 * m + u].mul(tw[2 * u * fstride]);
        let s3 = s1.add(s2);
        let s0 = s1.sub(s2);
        let fm = Complex::new(out[u].re - 0.5 * s3.re, out[u].im - 0.5 * s3.im);
        let s0 = Complex::new(s0.re * epi3_im, s0.im * epi3_im);
        out[u] = out[u].add(s3);
        out[2 * m + u] = Complex::new(fm.re + s0.im, fm.im - s0.re);
        out[m + u] = Complex::new(fm.re - s0.im, fm.im + s0.re);
    }
}

/// Radix-4 combine; the `±i` rotation flips with direction.
fn bfly4(out: &mut [Complex], m: usize, fstride: usize, tw: &[Complex], inverse: bool) {
    for u in 0..m {
        let s0 = out[m + u].mul(tw[u * fstride]);
        let s1 = out[2 * m + u].mul(tw[2 * u * fstride]);
        let s2 = out[3 * m + u].mul(tw[3 * u * fstride]);
        let s5 = out[u].sub(s1);
        let f0 = out[u].add(s1);
        let s3 = s0.add(s2);
        let s4 = s0.sub(s2);
        out[2 * m + u] = f0.sub(s3);
        out[u] = f0.add(s3);
        if inverse {
            out[m + u] = Complex::new(s5.re - s4.im, s5.im + s4.re);
            out[3 * m + u] = Complex::new(s5.re + s4.im, s5.im - s4.re);
        } else {
            out[m + u] = Complex::new(s5.re + s4.im, s5.im - s4.re);
            out[3 * m + u] = Complex::new(s5.re - s4.im, s5.im + s4.re);
        }
    }
}

/// Radix-5 combine. `ya`/`yb` are the primitive fifth roots from the
/// direction-baked table, so one body serves both directions.
fn bfly5(out: &mut [Complex], m: usize, fstride: usize, tw: &[Complex]) {
    let ya = tw[fstride * m];
    let yb = tw[fstride * 2 * m];
    for u in 0..m {
        let s0 = out[u];
        let s1 = out[m + u].mul(tw[u * fstride]);
        let s2 = out[2 * m + u].mul(tw[2 * u * fstride]);
        let s3 = out[3 * m + u].mul(tw[3 * u * fstride]);
        let s4 = out[4 * m + u].mul(tw[4 * u * fstride]);
        let s7 = s1.add(s4);
        let s10 = s1.sub(s4);
        let s8 = s2.add(s3);
        let s9 = s2.sub(s3);
        out[u] = Complex::new(s0.re + s7.re + s8.re, s0.im + s7.im + s8.im);
        let s5 = Complex::new(
            s0.re + s7.re * ya.re + s8.re * yb.re,
            s0.im + s7.im * ya.re + s8.im * yb.re,
        );
        let s6 = Complex::new(
            s10.im * ya.im + s9.im * yb.im,
            -s10.re * ya.im - s9.re * yb.im,
        );
        out[m + u] = s5.sub(s6);
        out[4 * m + u] = s5.add(s6);
        let s11 = Complex::new(
            s0.re + s7.re * yb.re + s8.re * ya.re,
            s0.im + s7.im * yb.re + s8.im * ya.re,
        );
        let s12 = Complex::new(
            -s10.im * yb.im + s9.im * ya.im,
            s10.re * yb.im - s9.re * ya.im,
        );
        out[2 * m + u] = s11.add(s12);
        out[3 * m + u] = s11.sub(s12);
    }
}

/// In-place forward DFT: `X[k] = sum_j x[j] e^{-2 pi i jk / n}`.
///
/// Dispatches to radix-2 for power-of-two lengths and Bluestein otherwise.
/// Length 0 and 1 are no-ops. Allocates Bluestein workspace per call; use
/// [`fft_with`] to amortize it.
pub fn fft(buf: &mut [Complex]) {
    let mut scratch = FftScratch::new();
    fft_with(buf, &mut scratch);
}

/// [`fft`] with caller-owned scratch: allocation-free once `scratch` has
/// warmed up on this length/direction.
pub fn fft_with(buf: &mut [Complex], scratch: &mut FftScratch) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    if is_power_of_two(n) {
        kfft::fft_pow2(buf, scratch.twiddles(n, false));
    } else if is_smooth(n) {
        mixed_radix(buf, false, scratch);
    } else {
        bluestein(buf, false, scratch);
    }
}

/// In-place inverse DFT (unscaled convention divided by `n`, so
/// `ifft(fft(x)) == x`). Allocates Bluestein workspace per call; use
/// [`ifft_with`] to amortize it.
pub fn ifft(buf: &mut [Complex]) {
    let mut scratch = FftScratch::new();
    ifft_with(buf, &mut scratch);
}

/// [`ifft`] with caller-owned scratch: allocation-free once `scratch` has
/// warmed up on this length/direction.
pub fn ifft_with(buf: &mut [Complex], scratch: &mut FftScratch) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    if is_power_of_two(n) {
        kfft::fft_pow2(buf, scratch.twiddles(n, true));
    } else if is_smooth(n) {
        mixed_radix(buf, true, scratch);
    } else {
        bluestein(buf, true, scratch);
    }
    kfft::cscale(buf, 1.0 / n as f64);
}

/// Bluestein's algorithm: express the length-`n` DFT as a circular
/// convolution of chirp-modulated sequences, computed with a power-of-two FFT
/// of length `m >= 2n - 1`. The chirp, the FFT of its circular extension, and
/// the per-stage twiddle tables come from `scratch`, rebuilt only when the
/// length/direction changes.
fn bluestein(buf: &mut [Complex], inverse: bool, scratch: &mut FftScratch) {
    let n = buf.len();
    scratch.prepare(n, inverse);
    let m = scratch.a.len();
    // An interleaved pow2 transform of another length may have repurposed the
    // tables since `prepare` cached the chirp, so re-check both directions.
    scratch.twiddles(m, false);
    scratch.twiddles(m, true);
    let FftScratch {
        chirp,
        b_fft,
        a,
        tw_fwd,
        tw_inv,
        ..
    } = scratch;

    kfft::cmul_into(&mut a[..n], buf, &chirp[..n]);
    for v in a[n..].iter_mut() {
        *v = Complex::default();
    }

    kfft::fft_pow2(a, tw_fwd);
    kfft::cmul_assign(a, b_fft);
    kfft::fft_pow2(a, tw_inv);
    buf.copy_from_slice(&a[..n]);
    kfft::cmul_assign_prescaled(buf, &chirp[..n], 1.0 / m as f64);
}

/// Naive `O(n^2)` DFT used as a correctness oracle in tests.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::default(); n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::default();
        for (j, &x) in input.iter().enumerate() {
            let ang = -2.0 * PI * (j as f64) * (k as f64) / n as f64;
            acc = acc.add(x.mul(Complex::from_angle(ang)));
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.sub(*y).norm_sqr().sqrt())
            .fold(0.0, f64::max)
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.37 - 1.0, (i as f64 * 0.11).sin()))
            .collect()
    }

    #[test]
    fn fft_matches_naive_pow2() {
        for &n in &[2usize, 4, 8, 16, 64, 128] {
            let input = ramp(n);
            let expected = dft_naive(&input);
            let mut got = input.clone();
            fft(&mut got);
            assert!(max_err(&got, &expected) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn fft_matches_naive_arbitrary() {
        for &n in &[3usize, 5, 6, 7, 12, 15, 100, 225, 360] {
            let input = ramp(n);
            let expected = dft_naive(&input);
            let mut got = input.clone();
            fft(&mut got);
            assert!(max_err(&got, &expected) < 1e-7 * n as f64, "n={n}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for &n in &[1usize, 2, 3, 8, 11, 31, 64, 90, 256] {
            let input = ramp(n);
            let mut buf = input.clone();
            fft(&mut buf);
            ifft(&mut buf);
            assert!(max_err(&buf, &input) < 1e-9 * (n.max(1)) as f64, "n={n}");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 16];
        buf[0] = Complex::new(1.0, 0.0);
        fft(&mut buf);
        for v in &buf {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let n = 32;
        let mut buf = vec![Complex::new(2.5, 0.0); n];
        fft(&mut buf);
        assert!((buf[0].re - 2.5 * n as f64).abs() < 1e-9);
        for v in &buf[1..] {
            assert!(v.norm_sqr().sqrt() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 48; // non-power-of-two exercises Bluestein
        let input = ramp(n);
        let time_energy: f64 = input.iter().map(|c| c.norm_sqr()).sum();
        let mut buf = input.clone();
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn empty_and_singleton_are_noops() {
        let mut empty: Vec<Complex> = vec![];
        fft(&mut empty);
        ifft(&mut empty);
        let mut single = vec![Complex::new(3.0, -1.0)];
        fft(&mut single);
        assert_eq!(single[0], Complex::new(3.0, -1.0));
        ifft(&mut single);
        assert_eq!(single[0], Complex::new(3.0, -1.0));
    }

    #[test]
    fn scratch_reuse_matches_fresh_across_lengths_and_directions() {
        let mut scratch = FftScratch::new();
        // Interleave lengths and directions so the cache is invalidated and
        // rebuilt repeatedly; results must stay identical to the fresh path.
        for &n in &[5usize, 12, 5, 100, 100, 31, 5] {
            let input = ramp(n);
            let mut with = input.clone();
            fft_with(&mut with, &mut scratch);
            let mut fresh = input.clone();
            fft(&mut fresh);
            assert_eq!(with, fresh, "forward n={n}");
            ifft_with(&mut with, &mut scratch);
            assert!(max_err(&with, &input) < 1e-9 * n as f64, "roundtrip n={n}");
        }
    }

    #[test]
    fn linearity() {
        let n = 20;
        let a = ramp(n);
        let b: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).cos(), 0.3))
            .collect();
        let mut fa = a.clone();
        fft(&mut fa);
        let mut fb = b.clone();
        fft(&mut fb);
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| x.add(*y)).collect();
        fft(&mut fab);
        let sum: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| x.add(*y)).collect();
        assert!(max_err(&fab, &sum) < 1e-9 * n as f64);
    }
}
