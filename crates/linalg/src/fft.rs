//! Complex fast Fourier transform.
//!
//! Two engines cover every length:
//!
//! * an iterative, in-place **radix-2 Cooley–Tukey** FFT for power-of-two
//!   lengths, and
//! * **Bluestein's chirp-z algorithm** for everything else, which re-expresses
//!   an arbitrary-length DFT as a circular convolution evaluated with the
//!   radix-2 engine.
//!
//! The DCT routines in [`crate::dct`] are built on top of this module, so DPZ
//! can transform blocks of any length `N`, not just powers of two.

use std::f64::consts::PI;

use dpz_kernels::fft as kfft;

pub use dpz_kernels::Complex;

/// Returns true when `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Reusable workspace for the non-power-of-two (Bluestein) path.
///
/// Bluestein's chirp sequence and the FFT of its circular extension depend
/// only on the transform length and direction, so a scratch that sticks to
/// one `(n, direction)` pair — the common case when transforming many
/// equal-length blocks — computes them once and then performs **zero heap
/// allocations** per transform. Power-of-two lengths are in-place already
/// and never touch the scratch.
#[derive(Debug, Default)]
pub struct FftScratch {
    /// `(n, inverse)` the cached chirp/b_fft were built for.
    key: Option<(usize, bool)>,
    /// Chirp `w[j] = e^{∓i π j² / n}`, length `n`.
    chirp: Vec<Complex>,
    /// FFT of the conjugate chirp's circular extension, length `m`.
    b_fft: Vec<Complex>,
    /// Convolution buffer, length `m`; refilled on every call.
    a: Vec<Complex>,
    /// Forward per-stage twiddle tables and the pow2 length they were built
    /// for (see [`dpz_kernels::fft::fill_stage_twiddles`]).
    tw_fwd: Vec<Complex>,
    tw_fwd_n: usize,
    /// Inverse per-stage twiddle tables and their pow2 length.
    tw_inv: Vec<Complex>,
    tw_inv_n: usize,
}

impl FftScratch {
    /// Empty scratch; buffers grow on first use and are reused afterwards.
    pub fn new() -> Self {
        FftScratch::default()
    }

    /// (Re)build the per-stage twiddle table for a pow2 length `n` and
    /// direction, returning a view of it.
    fn twiddles(&mut self, n: usize, inverse: bool) -> &[Complex] {
        let (tw, cached) = if inverse {
            (&mut self.tw_inv, &mut self.tw_inv_n)
        } else {
            (&mut self.tw_fwd, &mut self.tw_fwd_n)
        };
        if *cached != n {
            kfft::fill_stage_twiddles(tw, n, inverse);
            *cached = n;
        }
        tw
    }

    /// (Re)build the cached chirp and `b_fft` for `(n, inverse)` if the
    /// scratch currently holds a different pair.
    fn prepare(&mut self, n: usize, inverse: bool) {
        if self.key == Some((n, inverse)) {
            return;
        }
        // Forward DFT needs the chirp w[j] = e^{-i pi j^2 / n}; the inverse
        // flips the sign. Using j^2 mod 2n keeps the angle argument bounded
        // and avoids precision loss for large j.
        let sign = if inverse { -1.0 } else { 1.0 };
        self.chirp.clear();
        self.chirp.reserve(n);
        let two_n = 2 * n as u64;
        for jj in 0..n as u64 {
            let sq = (jj * jj) % two_n;
            let angle = sign * -PI * sq as f64 / n as f64;
            self.chirp.push(Complex::from_angle(angle));
        }

        let m = (2 * n - 1).next_power_of_two();
        self.b_fft.clear();
        self.b_fft.resize(m, Complex::default());
        self.b_fft[0] = self.chirp[0].conj();
        for j in 1..n {
            let c = self.chirp[j].conj();
            self.b_fft[j] = c;
            self.b_fft[m - j] = c;
        }
        self.twiddles(m, false);
        kfft::fft_pow2(&mut self.b_fft, &self.tw_fwd);
        self.a.resize(m, Complex::default());
        self.key = Some((n, inverse));
    }
}

/// In-place forward DFT: `X[k] = sum_j x[j] e^{-2 pi i jk / n}`.
///
/// Dispatches to radix-2 for power-of-two lengths and Bluestein otherwise.
/// Length 0 and 1 are no-ops. Allocates Bluestein workspace per call; use
/// [`fft_with`] to amortize it.
pub fn fft(buf: &mut [Complex]) {
    let mut scratch = FftScratch::new();
    fft_with(buf, &mut scratch);
}

/// [`fft`] with caller-owned scratch: allocation-free once `scratch` has
/// warmed up on this length/direction.
pub fn fft_with(buf: &mut [Complex], scratch: &mut FftScratch) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    if is_power_of_two(n) {
        kfft::fft_pow2(buf, scratch.twiddles(n, false));
    } else {
        bluestein(buf, false, scratch);
    }
}

/// In-place inverse DFT (unscaled convention divided by `n`, so
/// `ifft(fft(x)) == x`). Allocates Bluestein workspace per call; use
/// [`ifft_with`] to amortize it.
pub fn ifft(buf: &mut [Complex]) {
    let mut scratch = FftScratch::new();
    ifft_with(buf, &mut scratch);
}

/// [`ifft`] with caller-owned scratch: allocation-free once `scratch` has
/// warmed up on this length/direction.
pub fn ifft_with(buf: &mut [Complex], scratch: &mut FftScratch) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    if is_power_of_two(n) {
        kfft::fft_pow2(buf, scratch.twiddles(n, true));
    } else {
        bluestein(buf, true, scratch);
    }
    kfft::cscale(buf, 1.0 / n as f64);
}

/// Bluestein's algorithm: express the length-`n` DFT as a circular
/// convolution of chirp-modulated sequences, computed with a power-of-two FFT
/// of length `m >= 2n - 1`. The chirp, the FFT of its circular extension, and
/// the per-stage twiddle tables come from `scratch`, rebuilt only when the
/// length/direction changes.
fn bluestein(buf: &mut [Complex], inverse: bool, scratch: &mut FftScratch) {
    let n = buf.len();
    scratch.prepare(n, inverse);
    let m = scratch.a.len();
    // An interleaved pow2 transform of another length may have repurposed the
    // tables since `prepare` cached the chirp, so re-check both directions.
    scratch.twiddles(m, false);
    scratch.twiddles(m, true);
    let FftScratch {
        chirp,
        b_fft,
        a,
        tw_fwd,
        tw_inv,
        ..
    } = scratch;

    kfft::cmul_into(&mut a[..n], buf, &chirp[..n]);
    for v in a[n..].iter_mut() {
        *v = Complex::default();
    }

    kfft::fft_pow2(a, tw_fwd);
    kfft::cmul_assign(a, b_fft);
    kfft::fft_pow2(a, tw_inv);
    buf.copy_from_slice(&a[..n]);
    kfft::cmul_assign_prescaled(buf, &chirp[..n], 1.0 / m as f64);
}

/// Naive `O(n^2)` DFT used as a correctness oracle in tests.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::default(); n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::default();
        for (j, &x) in input.iter().enumerate() {
            let ang = -2.0 * PI * (j as f64) * (k as f64) / n as f64;
            acc = acc.add(x.mul(Complex::from_angle(ang)));
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.sub(*y).norm_sqr().sqrt())
            .fold(0.0, f64::max)
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.37 - 1.0, (i as f64 * 0.11).sin()))
            .collect()
    }

    #[test]
    fn fft_matches_naive_pow2() {
        for &n in &[2usize, 4, 8, 16, 64, 128] {
            let input = ramp(n);
            let expected = dft_naive(&input);
            let mut got = input.clone();
            fft(&mut got);
            assert!(max_err(&got, &expected) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn fft_matches_naive_arbitrary() {
        for &n in &[3usize, 5, 6, 7, 12, 15, 100, 225, 360] {
            let input = ramp(n);
            let expected = dft_naive(&input);
            let mut got = input.clone();
            fft(&mut got);
            assert!(max_err(&got, &expected) < 1e-7 * n as f64, "n={n}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for &n in &[1usize, 2, 3, 8, 11, 31, 64, 90, 256] {
            let input = ramp(n);
            let mut buf = input.clone();
            fft(&mut buf);
            ifft(&mut buf);
            assert!(max_err(&buf, &input) < 1e-9 * (n.max(1)) as f64, "n={n}");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 16];
        buf[0] = Complex::new(1.0, 0.0);
        fft(&mut buf);
        for v in &buf {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let n = 32;
        let mut buf = vec![Complex::new(2.5, 0.0); n];
        fft(&mut buf);
        assert!((buf[0].re - 2.5 * n as f64).abs() < 1e-9);
        for v in &buf[1..] {
            assert!(v.norm_sqr().sqrt() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 48; // non-power-of-two exercises Bluestein
        let input = ramp(n);
        let time_energy: f64 = input.iter().map(|c| c.norm_sqr()).sum();
        let mut buf = input.clone();
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn empty_and_singleton_are_noops() {
        let mut empty: Vec<Complex> = vec![];
        fft(&mut empty);
        ifft(&mut empty);
        let mut single = vec![Complex::new(3.0, -1.0)];
        fft(&mut single);
        assert_eq!(single[0], Complex::new(3.0, -1.0));
        ifft(&mut single);
        assert_eq!(single[0], Complex::new(3.0, -1.0));
    }

    #[test]
    fn scratch_reuse_matches_fresh_across_lengths_and_directions() {
        let mut scratch = FftScratch::new();
        // Interleave lengths and directions so the cache is invalidated and
        // rebuilt repeatedly; results must stay identical to the fresh path.
        for &n in &[5usize, 12, 5, 100, 100, 31, 5] {
            let input = ramp(n);
            let mut with = input.clone();
            fft_with(&mut with, &mut scratch);
            let mut fresh = input.clone();
            fft(&mut fresh);
            assert_eq!(with, fresh, "forward n={n}");
            ifft_with(&mut with, &mut scratch);
            assert!(max_err(&with, &input) < 1e-9 * n as f64, "roundtrip n={n}");
        }
    }

    #[test]
    fn linearity() {
        let n = 20;
        let a = ramp(n);
        let b: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).cos(), 0.3))
            .collect();
        let mut fa = a.clone();
        fft(&mut fa);
        let mut fb = b.clone();
        fft(&mut fb);
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| x.add(*y)).collect();
        fft(&mut fab);
        let sum: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| x.add(*y)).collect();
        assert!(max_err(&fab, &sum) < 1e-9 * n as f64);
    }
}
