//! Descriptive statistics and ordinary least squares.
//!
//! These routines back two parts of DPZ:
//!
//! * PCA standardization decisions (variance / standard deviation),
//! * the **variance inflation factor** (VIF) compressibility indicator from
//!   the sampling strategy (Section IV-D2): `VIF_j = 1 / (1 - R²_j)` where
//!   `R²_j` comes from regressing feature `j` on the other features.

use crate::{LinalgError, Matrix, Result};

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance (divide by `n`); `0.0` for fewer than 1 element.
pub fn variance_population(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64
}

/// Sample variance (divide by `n - 1`); `0.0` for fewer than 2 elements.
pub fn variance_sample(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_sample(data: &[f64]) -> f64 {
    variance_sample(data).sqrt()
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns `0.0` when either series is constant (correlation undefined).
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "pearson",
            got: format!("{} vs {}", x.len(), y.len()),
            expected: "equal lengths".to_string(),
        });
    }
    if x.is_empty() {
        return Err(LinalgError::Empty("pearson"));
    }
    let (mx, my) = (mean(x), mean(y));
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let (dx, dy) = (a - mx, b - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Ok(0.0);
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Result of an ordinary least squares fit `y ≈ X·beta (+ intercept)`.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Intercept term (0 when `with_intercept` was false).
    pub intercept: f64,
    /// One coefficient per column of the design matrix.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination of the fit on its training data.
    pub r_squared: f64,
}

/// Ordinary least squares via the normal equations (`XᵀX β = Xᵀy`), solved
/// with partial-pivot Gaussian elimination. A tiny ridge (`1e-12` relative)
/// keeps nearly collinear designs — exactly what VIF probes for — solvable.
pub fn ols(x: &Matrix, y: &[f64], with_intercept: bool) -> Result<OlsFit> {
    let n = x.rows();
    let p = x.cols();
    if y.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "ols",
            got: format!("y of {}", y.len()),
            expected: format!("y of {n}"),
        });
    }
    if n == 0 || p == 0 {
        return Err(LinalgError::Empty("ols"));
    }
    let cols = if with_intercept { p + 1 } else { p };
    // Build the augmented design (intercept column of ones last).
    let mut design = Matrix::zeros(n, cols);
    for r in 0..n {
        design.row_mut(r)[..p].copy_from_slice(x.row(r));
        if with_intercept {
            design.row_mut(r)[p] = 1.0;
        }
    }
    let mut xtx = design.gram();
    let xty = design.transpose().mul_vec(y)?;
    // Relative ridge for numerical robustness against collinearity.
    let diag_scale: f64 = (0..cols)
        .map(|i| xtx.get(i, i))
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);
    for i in 0..cols {
        let v = xtx.get(i, i) + 1e-12 * diag_scale;
        xtx.set(i, i, v);
    }
    let beta = xtx.solve(&xty)?;

    let intercept = if with_intercept { beta[p] } else { 0.0 };
    let coefficients = beta[..p].to_vec();

    // R² on the training data.
    let my = mean(y);
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (r, &yr) in y.iter().enumerate().take(n) {
        let pred: f64 = x
            .row(r)
            .iter()
            .zip(&coefficients)
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + intercept;
        ss_res += (yr - pred) * (yr - pred);
        ss_tot += (yr - my) * (yr - my);
    }
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Ok(OlsFit {
        intercept,
        coefficients,
        r_squared,
    })
}

/// Variance inflation factor of column `target` of `x` against the remaining
/// columns: `VIF = 1 / (1 - R²)`. Capped at `1e6` to keep perfectly collinear
/// features finite; a constant target column yields `VIF = 1` (no inflation).
pub fn vif(x: &Matrix, target: usize) -> Result<f64> {
    let p = x.cols();
    if target >= p {
        return Err(LinalgError::DimensionMismatch {
            op: "vif",
            got: format!("target {target}"),
            expected: format!("< {p} columns"),
        });
    }
    if p < 2 {
        return Err(LinalgError::Empty("vif needs at least two features"));
    }
    let y = x.col(target);
    if variance_population(&y) == 0.0 {
        return Ok(1.0);
    }
    let others: Vec<usize> = (0..p).filter(|&c| c != target).collect();
    let design = x.select_cols(&others);
    let fit = ols(&design, &y, true)?;
    let r2 = fit.r_squared.min(1.0 - 1e-6);
    Ok((1.0 / (1.0 - r2)).min(1e6))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert_eq!(variance_population(&[1.0, 1.0, 1.0]), 0.0);
        assert!(
            (variance_sample(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 4.571428571).abs() < 1e-6
        );
        assert_eq!(variance_sample(&[1.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[], &[]).is_err());
    }

    #[test]
    fn ols_recovers_linear_model() {
        // y = 2 x0 - 3 x1 + 5
        let n = 50;
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let x0 = i as f64 * 0.1;
            let x1 = ((i * 7) % 13) as f64;
            rows.push(vec![x0, x1]);
            y.push(2.0 * x0 - 3.0 * x1 + 5.0);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = ols(&x, &y, true).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-6);
        assert!((fit.coefficients[1] + 3.0).abs() < 1e-6);
        assert!((fit.intercept - 5.0).abs() < 1e-5);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn ols_without_intercept() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![2.0, 4.0, 6.0];
        let fit = ols(&x, &y, false).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
        assert_eq!(fit.intercept, 0.0);
    }

    #[test]
    fn ols_r2_zero_for_pure_noise_mean_model() {
        // Predicting an uncorrelated target gives a low R².
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let y = vec![1.0, -1.0, 1.0, -1.0];
        let fit = ols(&x, &y, true).unwrap();
        assert!(fit.r_squared < 0.3);
    }

    #[test]
    fn vif_high_for_collinear_feature() {
        // Column 2 = column 0 + column 1 (perfectly collinear).
        let mut rows = Vec::new();
        for i in 0..30 {
            let a = (i as f64 * 0.7).sin();
            let b = (i as f64 * 0.3).cos();
            rows.push(vec![a, b, a + b]);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let v = vif(&x, 2).unwrap();
        assert!(v > 100.0, "collinear VIF should be large, got {v}");
    }

    #[test]
    fn vif_low_for_independent_features() {
        // Deterministic but decorrelated columns.
        let mut rows = Vec::new();
        let mut s = 12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 0..200 {
            rows.push(vec![next(), next(), next()]);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let v = vif(&x, 0).unwrap();
        assert!(v < 2.0, "independent VIF should be near 1, got {v}");
    }

    #[test]
    fn vif_constant_target_is_one() {
        let x = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]]).unwrap();
        assert_eq!(vif(&x, 0).unwrap(), 1.0);
    }

    #[test]
    fn vif_bad_args() {
        let x = Matrix::zeros(3, 2);
        assert!(vif(&x, 5).is_err());
        assert!(vif(&Matrix::zeros(3, 1), 0).is_err());
    }
}
