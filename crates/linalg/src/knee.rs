//! Knee-point detection on cumulative variance curves.
//!
//! Method 1 of DPZ's Algorithm 1: fit the cumulative TVE curve, normalize it
//! to the unit square, and find the first local maximum of the curvature
//!
//! ```text
//! K(x) = f''(x) / (1 + f'(x)²)^{3/2}
//! ```
//!
//! which marks where the gain in explained variance starts to flatten — the
//! paper's "optimal information retrieval point". A Kneedle-style difference
//! curve (Satopää et al.) is provided as a secondary detector and used for
//! cross-checking in tests.

use crate::fit::{fit_curve, FitKind};
use crate::Result;

/// Options for [`detect_knee`].
#[derive(Debug, Clone, Copy)]
pub struct KneeOptions {
    /// How to fit the curve before differentiating (Algorithm 1's `sf`).
    pub fit: FitKind,
    /// Curvature is evaluated on `oversample * len` uniform points; higher
    /// values localize the knee more precisely on smooth (polynomial) fits.
    pub oversample: usize,
}

impl Default for KneeOptions {
    fn default() -> Self {
        KneeOptions {
            fit: FitKind::Interp1d,
            oversample: 4,
        }
    }
}

/// Detect the knee of an increasing curve `y[0..n]` (sampled at
/// `x_i = i/(n-1)`), returning the **index** of the knee sample.
///
/// Returns `None` when the curve is too short (< 3 points) or flat. For DPZ
/// the input is the cumulative TVE over `k = 1..=M`, so a returned index `i`
/// means "keep `k = i + 1` components".
pub fn detect_knee(y: &[f64], options: KneeOptions) -> Result<Option<usize>> {
    let n = y.len();
    if n < 3 {
        return Ok(None);
    }
    let (ymin, ymax) = y
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = ymax - ymin;
    // `!(span > 0.0)` (rather than `span <= 0.0`) deliberately also catches
    // NaN spans from NaN inputs.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(span > 0.0) || !span.is_finite() {
        return Ok(None); // flat or pathological curve: no knee
    }
    // Normalize to the unit square (Algorithm 1, line 4).
    let norm: Vec<f64> = y.iter().map(|&v| (v - ymin) / span).collect();
    let curve = fit_curve(&norm, options.fit)?;

    // Sample the fitted curve, then differentiate with central differences at
    // the sampling scale. Oversampling only helps for the smooth polynomial
    // fit; a piecewise-linear fit has zero curvature between its knots, so it
    // must be differentiated exactly at the data resolution.
    let samples = match options.fit {
        FitKind::Interp1d => n,
        FitKind::Polynomial(_) => (n * options.oversample.max(1)).max(8),
    };
    let h = 1.0 / (samples - 1) as f64;
    let vals: Vec<f64> = (0..samples).map(|s| curve.value(s as f64 * h)).collect();
    let mut curvature = vec![0.0; samples];
    for s in 1..samples - 1 {
        let d1 = (vals[s + 1] - vals[s - 1]) / (2.0 * h);
        let d2 = (vals[s + 1] - 2.0 * vals[s] + vals[s - 1]) / (h * h);
        curvature[s] = d2.abs() / (1.0 + d1 * d1).powf(1.5);
    }

    let max_k = curvature.iter().cloned().fold(0.0, f64::max);
    if max_k < 1e-4 {
        return Ok(None); // straight line (up to rounding noise): no knee
    }
    // First *significant* local maximum of the curvature (Algorithm 1,
    // line 6). The significance floor rejects rounding-noise bumps on the
    // nearly-flat stretches before the bend.
    let floor = 0.25 * max_k;
    let mut pick = None;
    for s in 1..samples - 1 {
        let k = curvature[s];
        if k >= floor && k >= curvature[s - 1] && k >= curvature[s + 1] {
            pick = Some(s);
            break;
        }
    }
    let s = pick.unwrap_or_else(|| {
        curvature
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    });
    // Map the (possibly oversampled) position back to an input index.
    let x = s as f64 * h;
    let idx = (x * (n - 1) as f64).round() as usize;
    Ok(Some(idx.min(n - 1)))
}

/// Kneedle difference-curve detector: the knee is the `x` maximizing
/// `y_norm(x) - x` for a concave increasing curve. Used as an independent
/// sanity check on [`detect_knee`].
pub fn kneedle(y: &[f64]) -> Option<usize> {
    let n = y.len();
    if n < 3 {
        return None;
    }
    let (ymin, ymax) = y
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = ymax - ymin;
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // also rejects NaN
    if !(span > 0.0) {
        return None;
    }
    let mut best_idx = 0;
    let mut best_diff = f64::NEG_INFINITY;
    for (i, &v) in y.iter().enumerate() {
        let x = i as f64 / (n - 1) as f64;
        let diff = (v - ymin) / span - x;
        if diff > best_diff {
            best_diff = diff;
            best_idx = i;
        }
    }
    if best_diff <= 0.0 {
        None
    } else {
        Some(best_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Saturating-exponential curve with a controllable knee sharpness; the
    /// larger `rate`, the earlier/sharper the knee.
    fn saturating(n: usize, rate: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                1.0 - (-rate * x).exp()
            })
            .collect()
    }

    #[test]
    fn knee_of_sharp_saturation_is_early() {
        let y = saturating(100, 40.0);
        let idx = detect_knee(&y, KneeOptions::default()).unwrap().unwrap();
        assert!(idx < 20, "sharp knee should be early, got {idx}");
    }

    #[test]
    fn sharper_curves_knee_earlier() {
        let sharp = detect_knee(&saturating(100, 60.0), KneeOptions::default())
            .unwrap()
            .unwrap();
        let soft = detect_knee(&saturating(100, 6.0), KneeOptions::default())
            .unwrap()
            .unwrap();
        assert!(sharp < soft, "sharp {sharp} should be before soft {soft}");
    }

    #[test]
    fn straight_line_has_no_knee() {
        let y: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(detect_knee(&y, KneeOptions::default()).unwrap(), None);
    }

    #[test]
    fn flat_curve_has_no_knee() {
        let y = vec![0.5; 30];
        assert_eq!(detect_knee(&y, KneeOptions::default()).unwrap(), None);
        assert_eq!(kneedle(&y), None);
    }

    #[test]
    fn short_inputs_yield_none() {
        assert_eq!(
            detect_knee(&[0.0, 1.0], KneeOptions::default()).unwrap(),
            None
        );
        assert_eq!(kneedle(&[0.0, 1.0]), None);
    }

    #[test]
    fn polynomial_fit_also_finds_knee() {
        let y = saturating(80, 25.0);
        let opts = KneeOptions {
            fit: FitKind::Polynomial(7),
            oversample: 8,
        };
        let idx = detect_knee(&y, opts).unwrap().unwrap();
        assert!(idx < 40, "poly-fit knee unexpectedly late: {idx}");
    }

    #[test]
    fn kneedle_matches_analytic_optimum() {
        // For y = 1 - e^{-r x}, d/dx (y_norm - x) = 0 at
        // x* = ln(r / (1 - e^{-r})) / r.
        let r = 10.0;
        let n = 200;
        let y = saturating(n, r);
        let idx = kneedle(&y).unwrap();
        let x_star = ((r / (1.0 - (-r).exp())).ln()) / r;
        let expect = (x_star * (n - 1) as f64).round() as usize;
        assert!(
            (idx as i64 - expect as i64).abs() <= 2,
            "kneedle {idx} vs analytic {expect}"
        );
    }

    #[test]
    fn curvature_and_kneedle_agree_on_order_of_magnitude() {
        let y = saturating(120, 20.0);
        let a = detect_knee(&y, KneeOptions::default()).unwrap().unwrap();
        let b = kneedle(&y).unwrap();
        // Different definitions (max curvature vs max distance) but both must
        // land in the bend region, well before the plateau.
        assert!(a < 40 && b < 40, "a={a} b={b}");
    }

    #[test]
    fn tve_like_step_curve() {
        // A curve that jumps to ~1 after the 5th sample (rank-5 data):
        // knee must be within a couple of samples of index 4.
        let mut y = vec![0.0; 60];
        for (i, v) in y.iter_mut().enumerate() {
            *v = match i {
                0 => 0.55,
                1 => 0.8,
                2 => 0.92,
                3 => 0.975,
                4 => 0.999,
                _ => 0.9995 + 0.0005 * (i as f64 - 4.0) / 56.0,
            };
        }
        let idx = detect_knee(&y, KneeOptions::default()).unwrap().unwrap();
        assert!(idx <= 8, "knee should be near the jump, got {idx}");
    }
}
