//! Seeded randomized range-finder (Halko/Martinsson/Tropp-style) for the
//! PCA fast path.
//!
//! The classic DPZ stage-2 fit forms the `m x m` Gram/covariance matrix
//! (`O(n·m²)`) and Householder-tridiagonalizes it (`O(m³)`) even when the
//! TVE rule will keep only `k ≪ m` components. The range-finder skips both:
//! it sketches the data matrix with `s = k + p` probe vectors, refines the
//! sketch with subspace (power) iterations against the *implicit* covariance
//! `C = AᵀA/(n−1)` — two tall-skinny products per application, never an
//! `m x m` intermediate — and solves a small `s x s` Rayleigh–Ritz problem.
//! Total cost is `O(n·m·s)` per covariance application.
//!
//! ## Why the Ritz values make the TVE gate *exact*
//!
//! For the produced orthonormal basis `V` (rows of the returned seed), each
//! Ritz value is exactly `λ_i = v_iᵀ C v_i` — the variance the data carries
//! along that direction. A PCA round trip through any orthonormal basis
//! loses exactly the out-of-span energy, so a TVE computed from Ritz values
//! is the *true* captured-variance fraction of the chosen basis, even when
//! the basis is an imperfect approximation of the leading eigenspace. Ritz
//! values can only *under*-estimate the true eigenvalues, so rank selection
//! against them is conservative — never quality-losing.
//!
//! ## Determinism
//!
//! The probe matrix comes from a fixed xorshift seed; all products run
//! through the backend-parity-contracted kernels (`matmul_transb` /
//! `matmul_thin` / `dot` / `axpy`), every chain of which is independent of
//! thread count and bitwise identical across scalar/AVX2/NEON. Artifacts
//! built on this path are therefore reproducible byte-for-byte.

use crate::eigen::{orthonormalize_rows, sym_eigen, SymEigen};
use crate::{LinalgError, Matrix, Result};

/// Options controlling a randomized range-finder fit.
#[derive(Debug, Clone, Copy)]
pub struct RangeFinderOptions {
    /// Oversampling `p`: probe vectors beyond the requested rank. The
    /// Halko analysis wants 5–10; DPZ uses a little more because the Ritz
    /// tail doubles as the TVE-escalation spectrum estimate.
    pub oversample: usize,
    /// Subspace (power) iterations: applications of the implicit covariance
    /// after the initial sketch. One suffices for the fast-decaying spectra
    /// DCT-decorrelated data produces.
    pub power_iters: usize,
    /// Fixed xorshift seed for the probe matrix.
    pub seed: u64,
}

impl Default for RangeFinderOptions {
    fn default() -> Self {
        RangeFinderOptions {
            oversample: 12,
            power_iters: 1,
            seed: 0x5EED_0D12_F00D_CAFE,
        }
    }
}

/// A converged (transposed, orthonormal-rows) subspace from one randomized
/// fit, reusable as the starting basis for a statistically similar data
/// matrix — the cross-chunk warm start.
///
/// Opaque on purpose: callers hand it back to the next fit, nothing else.
#[derive(Debug, Clone)]
pub struct SubspaceSeed {
    /// `s x m`: row `i` is subspace direction `i`, energy-descending.
    qt: Matrix,
}

impl SubspaceSeed {
    /// Feature count the seed was fitted on; a warm start is only valid for
    /// data with the same width.
    pub fn n_features(&self) -> usize {
        self.qt.cols()
    }

    /// Number of subspace directions carried.
    pub fn rank(&self) -> usize {
        self.qt.rows()
    }

    /// Build a seed from the leading `k` columns of a component basis
    /// (`m x c`, columns energy-descending) — lets dense-solver fallbacks
    /// keep the warm chain alive.
    pub(crate) fn from_components(components: &Matrix, k: usize) -> SubspaceSeed {
        let k = k.min(components.cols());
        SubspaceSeed {
            qt: components.leading_cols(k).transpose(),
        }
    }
}

/// Output of [`randomized_covariance_eigen`]: leading eigenpairs plus the
/// converged subspace for warm starts.
pub(crate) struct RangeFinderEigen {
    /// Ritz pairs of `AᵀA/(n−1)`: `eigenvalues` descending (possibly with
    /// negative numerical dust), `eigenvectors` the `m x s` Ritz basis.
    pub eigen: SymEigen,
    /// The Ritz-rotated converged subspace, rows energy-descending.
    pub seed: SubspaceSeed,
    /// Projected data in the Ritz basis, transposed (`s x n`): row `i` is
    /// the score vector along Ritz direction `i`. Algebraically identical
    /// to `(A·V)ᵀ` but obtained from the already-computed sketch product
    /// (`rotᵀ·Y`, an `s²·n` product) instead of a fresh `n·m·s` projection
    /// — callers fitting PCA get their score matrix for free.
    pub scores_t: Matrix,
}

/// Leading `s` eigenpairs of the covariance `AᵀA/(n−1)` of the **centered**
/// data matrix `a` (`n x m`), without ever forming the `m x m` Gram.
///
/// `warm` seeds the first `min(warm.rank(), s)` probe rows from a previous
/// fit's converged subspace (ignored on feature-count mismatch); remaining
/// rows are filled from the fixed xorshift stream, so a cold call is fully
/// deterministic and a warm call is deterministic given the seed basis.
pub(crate) fn randomized_covariance_eigen(
    a: &Matrix,
    s: usize,
    opts: &RangeFinderOptions,
    warm: Option<&SubspaceSeed>,
) -> Result<RangeFinderEigen> {
    let (n, m) = a.shape();
    if n < 2 || m == 0 {
        return Err(LinalgError::Empty(
            "randomized_covariance_eigen needs >=2 samples and >=1 feature",
        ));
    }
    let s = s.clamp(1, m);

    // Probe matrix, transposed (`s x m` rows = probe vectors).
    let mut qt = Matrix::zeros(s, m);
    let mut filled = 0usize;
    if let Some(w) = warm {
        if w.n_features() == m {
            filled = w.rank().min(s);
            for r in 0..filled {
                qt.row_mut(r).copy_from_slice(w.qt.row(r));
            }
        }
    }
    let mut state = opts.seed | 1;
    for r in filled..s {
        for c in 0..m {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            qt.set(r, c, (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
        }
    }
    // The probe does not need orthonormal rows when a power pass follows:
    // the first covariance application is immediately re-orthonormalized,
    // so the up-front MGS (an `s²·m` cost) would be pure overhead. Only the
    // no-refinement configuration feeds the probe straight into the
    // Rayleigh–Ritz step, which does assume an orthonormal `Q`.
    if opts.power_iters == 0 {
        orthonormalize_rows(&mut qt)?;
    }

    // One explicit transpose up front buys streaming row-major access for
    // every covariance application below: `Qᵀ·Aᵀ` as `matmul_thin(Aᵀ)` runs
    // ~2.5x faster than the row-dot `matmul_transb(A)` at these tall-skinny
    // shapes (long fixed-chain accumulations instead of per-element short
    // dots), and the transpose cost is amortized over 2·power_iters + 1
    // applications.
    let at = a.transpose(); // m x n

    // Subspace refinement: each pass applies the implicit covariance once.
    // (C·Q)ᵀ = Qᵀ·Aᵀ·A up to the 1/(n−1) scale, which MGS normalizes away.
    for _ in 0..opts.power_iters {
        let yt = qt.matmul_thin(&at)?; // s x n  = (A·Q)ᵀ
        let mut zt = yt.matmul_thin(a)?; // s x m  = (AᵀA·Q)ᵀ
        orthonormalize_rows(&mut zt)?;
        qt = zt;
    }

    // Rayleigh–Ritz through a half-application: the small matrix
    // Qᵀ·C·Q = (A·Q)ᵀ(A·Q)/(n−1) needs only Y = A·Q.
    let yt = qt.matmul_thin(&at)?; // s x n
    let mut small = yt.matmul_transb(&yt)?; // s x s
    small.scale(1.0 / (n - 1) as f64);
    let SymEigen {
        eigenvalues,
        eigenvectors: rot,
    } = sym_eigen(&small)?;
    // Ritz vectors V = Q·rot, built transposed: Vᵀ = rotᵀ·Qᵀ. `rot` is
    // orthogonal and `qt` has orthonormal rows, so `vt` does too — it *is*
    // the warm-start seed, now sorted by captured energy. The same rotation
    // applied to Y gives the Ritz-basis scores: (A·V)ᵀ = rotᵀ·(A·Q)ᵀ.
    let rot_t = rot.transpose();
    let vt = rot_t.matmul(&qt)?;
    let scores_t = rot_t.matmul(&yt)?;
    let eigenvectors = vt.transpose();
    Ok(RangeFinderEigen {
        eigen: SymEigen {
            eigenvalues,
            eigenvectors,
        },
        seed: SubspaceSeed { qt: vt },
        scores_t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Centered two-factor data (mirrors the pca.rs fixture, pre-centered
    /// so the raw matrix is a valid `A` for the covariance identity).
    fn centered_synthetic(n: usize, m: usize, seed: u64) -> Matrix {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let load_a: Vec<f64> = (0..m).map(|j| (j as f64 * 0.4).sin()).collect();
        let load_b: Vec<f64> = (0..m).map(|j| (j as f64 * 0.9).cos()).collect();
        let mut x = Matrix::zeros(n, m);
        for r in 0..n {
            let (fa, fb) = (next() * 10.0, next() * 3.0);
            for j in 0..m {
                x.set(r, j, fa * load_a[j] + fb * load_b[j] + 0.01 * next());
            }
        }
        // Center columns.
        let mut mean = vec![0.0; m];
        for r in 0..n {
            for (acc, &v) in mean.iter_mut().zip(x.row(r)) {
                *acc += v;
            }
        }
        for v in &mut mean {
            *v /= n as f64;
        }
        for r in 0..n {
            for (v, &mu) in x.row_mut(r).iter_mut().zip(&mean) {
                *v -= mu;
            }
        }
        x
    }

    fn covariance(a: &Matrix) -> Matrix {
        let mut cov = a.gram();
        cov.scale(1.0 / (a.rows() - 1) as f64);
        cov
    }

    #[test]
    fn matches_dense_solver_on_low_rank_data() {
        let a = centered_synthetic(200, 24, 7);
        let dense = sym_eigen(&covariance(&a)).unwrap();
        let rf = randomized_covariance_eigen(&a, 6, &RangeFinderOptions::default(), None).unwrap();
        let lmax = dense.eigenvalues[0].max(1e-300);
        // Two dominant factors: the leading Ritz values must agree tightly.
        for i in 0..2 {
            let rel = (dense.eigenvalues[i] - rf.eigen.eigenvalues[i]).abs() / lmax;
            assert!(rel < 1e-8, "eigenvalue {i} off by {rel:.3e}");
        }
        // Ritz values never exceed the true spectrum (monotone bound).
        for i in 0..rf.eigen.eigenvalues.len() {
            assert!(
                rf.eigen.eigenvalues[i] <= dense.eigenvalues[i] + 1e-9 * lmax,
                "Ritz value {i} overshoots"
            );
        }
        // Eigenvectors align up to sign.
        for i in 0..2 {
            let v = rf.eigen.eigenvectors.col(i);
            let w = dense.eigenvectors.col(i);
            let dot: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
            assert!(dot.abs() > 1.0 - 1e-8, "component {i} misaligned: {dot}");
        }
    }

    #[test]
    fn ritz_basis_is_orthonormal() {
        let a = centered_synthetic(120, 20, 21);
        let rf = randomized_covariance_eigen(&a, 5, &RangeFinderOptions::default(), None).unwrap();
        let v = &rf.eigen.eigenvectors;
        let vtv = v.transpose().matmul(v).unwrap();
        for i in 0..vtv.rows() {
            for j in 0..vtv.cols() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (vtv.get(i, j) - want).abs() < 1e-10,
                    "VᵀV[{i},{j}] = {}",
                    vtv.get(i, j)
                );
            }
        }
    }

    #[test]
    fn fixed_seed_is_bitwise_deterministic() {
        let a = centered_synthetic(150, 32, 3);
        let opts = RangeFinderOptions::default();
        let x = randomized_covariance_eigen(&a, 8, &opts, None).unwrap();
        let y = randomized_covariance_eigen(&a, 8, &opts, None).unwrap();
        assert_eq!(
            x.eigen.eigenvectors.as_slice(),
            y.eigen.eigenvectors.as_slice()
        );
        assert_eq!(x.eigen.eigenvalues, y.eigen.eigenvalues);
        assert_eq!(x.seed.qt.as_slice(), y.seed.qt.as_slice());
    }

    #[test]
    fn warm_start_from_own_seed_reproduces_subspace() {
        let a = centered_synthetic(150, 28, 9);
        let opts = RangeFinderOptions::default();
        let cold = randomized_covariance_eigen(&a, 8, &opts, None).unwrap();
        let warm = randomized_covariance_eigen(&a, 8, &opts, Some(&cold.seed)).unwrap();
        let lmax = cold.eigen.eigenvalues[0].max(1e-300);
        for i in 0..2 {
            let rel = (cold.eigen.eigenvalues[i] - warm.eigen.eigenvalues[i]).abs() / lmax;
            assert!(rel < 1e-10, "warm eigenvalue {i} off by {rel:.3e}");
        }
    }

    #[test]
    fn warm_seed_with_wrong_width_is_ignored() {
        let a = centered_synthetic(100, 16, 5);
        let b = centered_synthetic(100, 24, 5);
        let opts = RangeFinderOptions::default();
        let seed16 = randomized_covariance_eigen(&a, 4, &opts, None)
            .unwrap()
            .seed;
        // Mismatched width: must behave exactly like a cold call.
        let cold = randomized_covariance_eigen(&b, 4, &opts, None).unwrap();
        let warm = randomized_covariance_eigen(&b, 4, &opts, Some(&seed16)).unwrap();
        assert_eq!(cold.eigen.eigenvalues, warm.eigen.eigenvalues);
        assert_eq!(
            cold.eigen.eigenvectors.as_slice(),
            warm.eigen.eigenvectors.as_slice()
        );
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(
            randomized_covariance_eigen(&Matrix::zeros(1, 4), 2, &Default::default(), None)
                .is_err()
        );
        assert!(
            randomized_covariance_eigen(&Matrix::zeros(10, 0), 2, &Default::default(), None)
                .is_err()
        );
    }

    #[test]
    fn constant_data_yields_zero_spectrum() {
        let a = Matrix::zeros(20, 8); // already "centered" constant data
        let rf = randomized_covariance_eigen(&a, 3, &Default::default(), None).unwrap();
        for &l in &rf.eigen.eigenvalues {
            assert!(l.abs() < 1e-12);
        }
    }
}
