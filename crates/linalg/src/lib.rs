//! # dpz-linalg
//!
//! Self-contained dense linear algebra and signal-processing substrate for the
//! DPZ compressor ([`dpz-core`](../dpz_core/index.html)).
//!
//! The DPZ paper (Zhang et al., CLUSTER 2021) relies on three numerical
//! building blocks that HPC codebases usually pull from LAPACK/FFTW/scipy:
//!
//! * a **DCT-II / DCT-III** pair for the stage-1 deterministic transform
//!   ([`dct`]), implemented on top of an in-house FFT ([`fft`]) with a naive
//!   `O(n²)` reference used for validation,
//! * a **symmetric eigensolver** for PCA ([`eigen`] — Householder
//!   tridiagonalization followed by implicit QL with shifts; [`jacobi`]
//!   provides an independent cyclic-Jacobi implementation used to cross-check
//!   it in tests),
//! * **PCA** itself ([`pca`]) plus the supporting statistics ([`stats`]),
//!   curve fitting ([`fit`]) and knee-point detection ([`knee`]) that drive
//!   the paper's k-selection machinery (Algorithm 1).
//!
//! Everything is written from scratch; there is no FFI and no external
//! numerical dependency. Matrices are dense, row-major [`Matrix`] values and
//! the hot paths (mat-mul, covariance) are parallelized with rayon.

#![warn(missing_docs)]

pub mod dct;
pub mod eigen;
pub mod fft;
pub mod fit;
pub mod jacobi;
pub mod knee;
pub mod matrix;
pub mod pca;
pub mod rangefinder;
pub mod stats;
pub mod svd;
pub mod wavelet;

pub use dct::{dct2, dct2_inplace, dct3, dct3_inplace, Dct1d, DctScratch};
pub use eigen::{sym_eigen, sym_eigen_select, sym_eigen_topk, SymEigen};
pub use fft::FftScratch;
pub use fit::{CurveFit, FitKind, Interp1d, PolyFit};
pub use knee::{detect_knee, KneeOptions};
pub use matrix::Matrix;
pub use pca::{Pca, PcaOptions, RandomizedFit};
pub use rangefinder::{RangeFinderOptions, SubspaceSeed};
pub use wavelet::{dwt_forward, dwt_inverse, Wavelet};

/// Errors surfaced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions the caller supplied, formatted `rows x cols`.
        got: String,
        /// Dimensions the operation expected.
        expected: String,
    },
    /// An iterative algorithm failed to converge within its iteration cap.
    NoConvergence {
        /// The algorithm that failed.
        algorithm: &'static str,
        /// The iteration budget that was exhausted.
        iterations: usize,
    },
    /// The input is singular or numerically rank-deficient.
    Singular(&'static str),
    /// The input is empty where a non-empty value is required.
    Empty(&'static str),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, got, expected } => {
                write!(
                    f,
                    "{op}: dimension mismatch (got {got}, expected {expected})"
                )
            }
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => {
                write!(
                    f,
                    "{algorithm} failed to converge after {iterations} iterations"
                )
            }
            LinalgError::Singular(what) => write!(f, "singular input in {what}"),
            LinalgError::Empty(what) => write!(f, "empty input in {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
