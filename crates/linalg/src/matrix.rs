//! Dense row-major `f64` matrix with the small set of operations the DPZ
//! pipeline needs: slicing by rows/columns, transpose, (parallel) matrix
//! multiplication, Gram/covariance products and a direct linear solver.

use crate::{LinalgError, Result};
use dpz_kernels::{blas, gemm};
use rayon::prelude::*;

/// Minimum number of rows in the output before `matmul` fans out to rayon.
/// Below this the per-task overhead outweighs the work.
const PAR_ROW_THRESHOLD: usize = 32;

/// A dense, row-major matrix of `f64`.
///
/// Storage is a single contiguous `Vec<f64>` of length `rows * cols`;
/// element `(r, c)` lives at index `r * cols + c`. The type is deliberately
/// small: DPZ only needs construction, transpose, products and column
/// statistics, so this is not a general linear-algebra interface.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::from_vec",
                got: format!("{} elements", data.len()),
                expected: format!("{rows}x{cols} = {} elements", rows * cols),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build a matrix from a slice of rows. All rows must share one length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty("Matrix::from_rows"));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::from_rows",
                got: "ragged rows".to_string(),
                expected: format!("all rows of length {cols}"),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor. Panics on out-of-bounds (debug-friendly; hot loops
    /// below use row slices instead).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter. Panics on out-of-bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Overwrite column `c` from a slice of length `rows`.
    pub fn set_col(&mut self, c: usize, values: &[f64]) {
        assert_eq!(values.len(), self.rows, "set_col length mismatch");
        for (r, &v) in values.iter().enumerate() {
            self.data[r * self.cols + c] = v;
        }
    }

    /// Return a new matrix containing the given columns, in order.
    pub fn select_cols(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (j, &c) in cols.iter().enumerate() {
                dst[j] = src[c];
            }
        }
        out
    }

    /// Return the submatrix of the first `k` columns.
    pub fn leading_cols(&self, k: usize) -> Matrix {
        assert!(k <= self.cols, "leading_cols: k={k} > cols={}", self.cols);
        let mut out = Matrix::zeros(self.rows, k);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[..k]);
        }
        out
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large inputs.
        const B: usize = 64;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Matrix product `self * rhs`, parallelized over output rows.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                got: format!("{}x{} * {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
                expected: "lhs.cols == rhs.rows".to_string(),
            });
        }
        let (n, k, m) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0; n * m];
        if n == 0 || m == 0 {
            return Matrix::from_vec(n, m, out);
        }

        // Pack B once into zero-padded column panels; the packed form is
        // shared read-only by every worker. Each strip then runs the
        // register-tiled microkernel (see `dpz_kernels::gemm`).
        let packed = gemm::PackedB::new(&rhs.data, k, m);
        if n >= PAR_ROW_THRESHOLD {
            let threads = rayon::current_num_threads().max(1);
            let strip = n.div_ceil(threads).next_multiple_of(gemm::MR).max(gemm::MR);
            out.par_chunks_mut(strip * m)
                .enumerate()
                .for_each(|(si, c_chunk)| {
                    let r0 = si * strip;
                    let rows = c_chunk.len() / m;
                    let a_chunk = &self.data[r0 * k..(r0 + rows) * k];
                    gemm::gemm_strip(c_chunk, a_chunk, rows, &packed);
                });
        } else {
            gemm::gemm_strip(&mut out, &self.data, n, &packed);
        }
        Matrix::from_vec(n, m, out)
    }

    /// Matrix product `self * rhs` for a *thin* left operand (few rows,
    /// e.g. a transposed subspace sketch): streams `rhs` row-by-row through
    /// the kernels' fused-accumulate panel ([`dpz_kernels::gemm::gemm_thin`])
    /// instead of packing it — packing an `n x m` operand costs a full extra
    /// pass that a rank-`s` product never amortizes.
    ///
    /// Deterministic and backend/thread-independent: every output element is
    /// a fixed ascending-`k` chain of parity-contracted `accum4`/`axpy`
    /// primitives, with no data-dependent partitioning.
    pub fn matmul_thin(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_thin",
                got: format!("{}x{} * {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
                expected: "lhs.cols == rhs.rows".to_string(),
            });
        }
        let (s, n, m) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0; s * m];
        if s > 0 && n > 0 && m > 0 {
            gemm::gemm_thin(&mut out, &self.data, s, &rhs.data, n, m);
        }
        Matrix::from_vec(s, m, out)
    }

    /// Matrix product with a transposed right-hand side: `self * rhsᵀ`,
    /// where `rhs` is stored row-major as an `m x k` matrix. Both operands
    /// stream along contiguous rows, so each output element is a single
    /// [`dpz_kernels::blas::dot`].
    pub fn matmul_transb(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_transb",
                got: format!("{}x{} * ({}x{})ᵀ", self.rows, self.cols, rhs.rows, rhs.cols),
                expected: "lhs.cols == rhs.cols".to_string(),
            });
        }
        let (n, k, m) = (self.rows, self.cols, rhs.rows);
        let mut out = vec![0.0; n * m];
        let body = |(r, out_row): (usize, &mut [f64])| {
            let lhs_row = &self.data[r * k..(r + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = blas::dot(lhs_row, &rhs.data[j * k..(j + 1) * k]);
            }
        };
        if n >= PAR_ROW_THRESHOLD {
            out.par_chunks_mut(m.max(1)).enumerate().for_each(body);
        } else {
            out.chunks_mut(m.max(1)).enumerate().for_each(body);
        }
        Matrix::from_vec(n, m, out)
    }

    /// Matrix-vector product `self * v`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_vec",
                got: format!("vector of {}", v.len()),
                expected: format!("vector of {}", self.cols),
            });
        }
        Ok((0..self.rows).map(|r| blas::dot(self.row(r), v)).collect())
    }

    /// Gram product `selfᵀ * self`, the `cols x cols` matrix of column inner
    /// products. This is the covariance kernel used by PCA; it is symmetric,
    /// so only the upper triangle is computed (in parallel) and mirrored.
    pub fn gram(&self) -> Matrix {
        let m = self.cols;
        let n = self.rows;
        let mut out = vec![0.0; m * m];

        // Parallelize over *input* row-strips, one per worker: each strip
        // accumulates a private partial upper triangle (balanced — every
        // strip does `strip_rows · m²/2` work and reads its rows exactly
        // once), and the partials are reduced element-wise at the end. The
        // previous scheme parallelized over output rows, which skewed the
        // load (row `i` costs `m - i`) and re-read the whole input per
        // worker.
        if m > 0 && n > 0 {
            let strips = rayon::current_num_threads().min(n);
            let strip_rows = n.div_ceil(strips);
            let partials: Vec<Vec<f64>> = self
                .data
                .par_chunks(strip_rows * m)
                .map(|rows| {
                    let mut part = vec![0.0; m * m];
                    // Rank-4 blocking over input rows: four rows scatter into
                    // each output row in one fused pass (`accum4`), so every
                    // `part` element is loaded/stored once per *four* rows
                    // instead of once per row.
                    let mut quads = rows.chunks_exact(4 * m);
                    for quad in quads.by_ref() {
                        let (r0, rest) = quad.split_at(m);
                        let (r1, rest) = rest.split_at(m);
                        let (r2, r3) = rest.split_at(m);
                        for i in 0..m {
                            let (a, b, c, d) = (r0[i], r1[i], r2[i], r3[i]);
                            if a == 0.0 && b == 0.0 && c == 0.0 && d == 0.0 {
                                continue;
                            }
                            blas::accum4(
                                &mut part[i * m + i..(i + 1) * m],
                                &r0[i..],
                                &r1[i..],
                                &r2[i..],
                                &r3[i..],
                                a,
                                b,
                                c,
                                d,
                            );
                        }
                    }
                    for row in quads.remainder().chunks_exact(m) {
                        for (i, &xi) in row.iter().enumerate() {
                            if xi == 0.0 {
                                continue;
                            }
                            // Upper-triangle row update as one contiguous
                            // fused axpy: part[i, i..] += xi * row[i..].
                            blas::axpy(&mut part[i * m + i..(i + 1) * m], &row[i..], xi);
                        }
                    }
                    part
                })
                .collect();
            for part in &partials {
                for (o, p) in out.iter_mut().zip(part) {
                    *o += p;
                }
            }
        }
        // Mirror the strict upper triangle into the lower one.
        for i in 0..m {
            for j in (i + 1)..m {
                out[j * m + i] = out[i * m + j];
            }
        }
        Matrix {
            rows: m,
            cols: m,
            data: out,
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element-wise difference against another matrix of the
    /// same shape. Handy in tests.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Solve the square linear system `self * x = b` by Gaussian elimination
    /// with partial pivoting. `self` is copied; `O(n³)`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "solve",
                got: format!("{}x{}", self.rows, self.cols),
                expected: "square matrix".to_string(),
            });
        }
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve",
                got: format!("rhs of {}", b.len()),
                expected: format!("rhs of {n}"),
            });
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot: find the largest magnitude entry in this column.
            let mut piv = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-300 {
                return Err(LinalgError::Singular("Matrix::solve"));
            }
            if piv != col {
                for c in 0..n {
                    a.swap(col * n + c, piv * n + c);
                }
                x.swap(col, piv);
            }
            let diag = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for c in (col + 1)..n {
                sum -= a[col * n + c] * x[c];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Element-wise subtraction `self - other` into a new matrix.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                got: format!(
                    "{}x{} - {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
                expected: "matching shapes".to_string(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a).unwrap(), a);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_parallel_path_matches_serial() {
        // 64 rows crosses PAR_ROW_THRESHOLD; compare against a hand-rolled
        // triple loop.
        let n = 64;
        let a =
            Matrix::from_vec(n, n, (0..n * n).map(|i| (i % 17) as f64 - 8.0).collect()).unwrap();
        let b =
            Matrix::from_vec(n, n, (0..n * n).map(|i| ((i * 7) % 13) as f64).collect()).unwrap();
        let c = a.matmul(&b).unwrap();
        for r in 0..n {
            for cix in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a.get(r, k) * b.get(k, cix);
                }
                assert!(approx(c.get(r, cix), s, 1e-9), "mismatch at ({r},{cix})");
            }
        }
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        for &(n, k, m) in &[(3usize, 5usize, 4usize), (40, 17, 33), (1, 1, 1)] {
            let a = Matrix::from_vec(n, k, (0..n * k).map(|i| (i % 11) as f64 - 5.0).collect())
                .unwrap();
            let b =
                Matrix::from_vec(m, k, (0..m * k).map(|i| ((i * 3) % 7) as f64).collect()).unwrap();
            let fast = a.matmul_transb(&b).unwrap();
            let slow = a.matmul(&b.transpose()).unwrap();
            assert!(fast.max_abs_diff(&slow) < 1e-12, "{n}x{k}x{m}");
        }
        assert!(Matrix::zeros(2, 3)
            .matmul_transb(&Matrix::zeros(2, 4))
            .is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(3, 5, (0..15).map(|i| i as f64).collect()).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(4, 2), a.get(2, 4));
    }

    #[test]
    fn transpose_large_blocked() {
        let a = Matrix::from_vec(130, 70, (0..130 * 70).map(|i| i as f64).collect()).unwrap();
        let t = a.transpose();
        for r in 0..130 {
            for c in 0..70 {
                assert_eq!(t.get(c, r), a.get(r, c));
            }
        }
    }

    #[test]
    fn gram_equals_at_a() {
        let a = Matrix::from_vec(
            4,
            3,
            vec![1., 2., 0., -1., 3., 2., 0.5, 0., 1., 2., -2., 4.],
        )
        .unwrap();
        let g = a.gram();
        let g_ref = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&g_ref) < 1e-12);
        // Symmetry.
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let v = vec![7.0, -2.0];
        let got = a.mul_vec(&v).unwrap();
        assert_eq!(got, vec![3.0, 13.0, 23.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_vec(3, 3, vec![4., 1., 0., 1., 3., -1., 0., -1., 2.]).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (g, t) in x.iter().zip(&x_true) {
            assert!(approx(*g, *t, 1e-10));
        }
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 2., 4.]).unwrap();
        assert_eq!(
            a.solve(&[1.0, 2.0]),
            Err(LinalgError::Singular("Matrix::solve"))
        );
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0., 1., 1., 0.]).unwrap();
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn select_and_leading_cols() {
        let a = Matrix::from_vec(2, 4, vec![0., 1., 2., 3., 10., 11., 12., 13.]).unwrap();
        let s = a.select_cols(&[3, 0]);
        assert_eq!(s.as_slice(), &[3., 0., 13., 10.]);
        let l = a.leading_cols(2);
        assert_eq!(l.as_slice(), &[0., 1., 10., 11.]);
    }

    #[test]
    fn col_get_set_round_trip() {
        let mut a = Matrix::zeros(3, 2);
        a.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(a.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(a.col(0), vec![0.0; 3]);
    }

    #[test]
    fn frobenius_norm_simple() {
        let a = Matrix::from_vec(2, 2, vec![3., 0., 0., 4.]).unwrap();
        assert!(approx(a.frobenius_norm(), 5.0, 1e-12));
    }

    #[test]
    fn sub_shapes() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.sub(&b).is_err());
        let c = Matrix::from_vec(2, 2, vec![5., 5., 5., 5.]).unwrap();
        let d = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(c.sub(&d).unwrap().as_slice(), &[4., 3., 2., 1.]);
    }
}
