//! Symmetric eigendecomposition.
//!
//! PCA (stage 2 of DPZ) needs all eigenpairs of the `M x M` covariance matrix
//! of the block data. We use the classic dense two-phase approach:
//!
//! 1. **Householder tridiagonalization** (`tred2`-style): orthogonal
//!    similarity transforms reduce the symmetric input to a tridiagonal
//!    matrix while accumulating the transform.
//! 2. **Implicit QL with Wilkinson shifts** (`tql2`-style): iteratively
//!    drives the off-diagonal to zero, rotating the accumulated basis so its
//!    columns converge to eigenvectors.
//!
//! Total cost is `O(n³)` with a small constant; for DPZ's block counts
//! (`M ≤ ~2048`) this completes in well under a second in release builds.
//! [`crate::jacobi`] provides an independent cyclic-Jacobi solver used to
//! cross-validate this implementation in tests.

use crate::{LinalgError, Matrix, Result};
use dpz_kernels::blas;

/// Maximum QL iterations per eigenvalue before giving up.
const MAX_QL_ITERATIONS: usize = 64;

/// Result of a symmetric eigendecomposition.
///
/// Eigenvalues are sorted in **descending** order (PCA convention: component
/// 0 explains the most variance); `eigenvectors` holds the matching unit
/// eigenvectors as *columns*, so `input ≈ V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, largest first.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors as columns, ordered to match `eigenvalues`.
    pub eigenvectors: Matrix,
}

/// `sqrt(a² + b²)` without destructive underflow or overflow.
#[inline]
fn pythag(a: f64, b: f64) -> f64 {
    let (absa, absb) = (a.abs(), b.abs());
    if absa > absb {
        let r = absb / absa;
        absa * (1.0 + r * r).sqrt()
    } else if absb == 0.0 {
        0.0
    } else {
        let r = absa / absb;
        absb * (1.0 + r * r).sqrt()
    }
}

#[inline]
fn sign_like(magnitude: f64, sign_of: f64) -> f64 {
    if sign_of >= 0.0 {
        magnitude.abs()
    } else {
        -magnitude.abs()
    }
}

/// Householder reduction of symmetric `z` (modified in place, becoming the
/// accumulated orthogonal transform) to tridiagonal form with diagonal `d`
/// and off-diagonal `e` (`e[0]` unused).
///
/// The classic tred2 formulation walks *columns* of the lower triangle in its
/// inner loops (strided access). Both hot phases here are interchanged to
/// operate on contiguous rows so they can run through the `dpz-kernels`
/// level-1 primitives:
///
/// * the projection `p = A·u / h` is computed as a symmetric matvec over
///   lower-triangle rows (`dot` for the at-or-below-diagonal part, `axpy`
///   scattering each row's contribution to earlier entries);
/// * the rank-2 update `A ← A − u·pᵀ − p·uᵀ` runs row-by-row via `update2`;
/// * the transform accumulation `Z ← Z · (I − u·uᵀ/h)` gathers `g = Zᵀu`
///   with row `axpy`s and applies the outer-product update with row `axpy`s
///   (all `g[j]` are read from the pre-update `Z`, so the interchange is
///   alias-free).
#[allow(clippy::needless_range_loop)]
fn tridiagonalize(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = z.rows();
    householder_reduce(z, d, e, true);
    // Accumulate the Householder transforms into z.
    let mut ubuf = vec![0.0f64; n];
    let mut gbuf = vec![0.0f64; n];
    for i in 0..n {
        if d[i] != 0.0 {
            let u = &mut ubuf[..i];
            u.copy_from_slice(&z.row(i)[..i]);
            // g = Z[..i, ..i]ᵀ · u gathered from contiguous rows. Every g[j]
            // depends only on columns 0..i of rows 0..i, none of which are
            // written until the update pass below, so computing the full
            // gather first is exactly equivalent to the column-major
            // original.
            let g = &mut gbuf[..i];
            g.fill(0.0);
            for k in 0..i {
                blas::axpy(g, &z.row(k)[..i], u[k]);
            }
            for k in 0..i {
                let zki = z.get(k, i);
                blas::axpy(&mut z.row_mut(k)[..i], g, -zki);
            }
        }
        d[i] = z.get(i, i);
        z.set(i, i, 1.0);
        for j in 0..i {
            z.set(j, i, 0.0);
            z.set(i, j, 0.0);
        }
    }
}

/// The reduction phase of [`tridiagonalize`], without accumulating the
/// orthogonal transform. On return the lower triangle of `z` holds the
/// (scaled) Householder vectors — row `i`, entries `..i`, is the vector for
/// step `i` — `d[i]` holds the step's `h = uᵀu/2`-style normalizer (`0` for
/// skipped steps), and `e` the tridiagonal off-diagonal (`e[i]` couples
/// `i-1` and `i`; `e[0]` unused). The tridiagonal *diagonal* is left on the
/// matrix diagonal (`z[i][i]`), since `d` is carrying the normalizers.
///
/// Keeping the reflectors instead of the accumulated basis is the classic
/// `tred1` trade: the reduction alone is ~half the flops of `tred2`, and a
/// caller that only needs `k ≪ n` eigenvectors can back-transform just those
/// through the reflectors in `O(k·n²)` — see [`sym_eigen_select`].
/// When `store_v` is set, the strict upper triangle additionally receives
/// `v = u/h` column-by-column — required only by the accumulation phase of
/// the full solver ([`tridiagonalize`]). The selective solver back-transforms
/// through the rows alone, and the column stores are strided (one cache line
/// per element), so skipping them is a measurable win.
#[allow(clippy::needless_range_loop)]
fn householder_reduce(z: &mut Matrix, d: &mut [f64], e: &mut [f64], store_v: bool) {
    let n = z.rows();
    // Scratch: `ubuf` holds the current step's scaled Householder vector;
    // `uprev`/`gprev` carry the previous step's *deferred* rank-2 update
    // (`row_j -= uprev[j]·gprev + gprev[j]·uprev`), and `pbuf` accumulates
    // the current step's matvec. Deferring the update lets the next step
    // apply it row-by-row inside its own matvec pass, so every step makes a
    // single pass over the lower triangle instead of two (the triangle
    // outgrows L1 quickly; this is the dominant cost of the reduction).
    let mut ubuf = vec![0.0f64; n];
    let mut uprev = vec![0.0f64; n];
    let mut gprev = vec![0.0f64; n];
    let mut pbuf = vec![0.0f64; n];
    // Rows `0..pending` still owe the deferred rank-2 update (0 = none).
    // Only one update is ever outstanding: a non-degenerate step drains the
    // previous one over the whole triangle before deferring its own.
    let mut pending = 0usize;
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            if pending > i {
                // Row `i` is the deepest row covered by the deferred update;
                // bring it current before deriving this step's reflector.
                let row_i = &mut z.row_mut(i)[..=i];
                blas::update2(row_i, &gprev[..=i], &uprev[..=i], uprev[i], gprev[i]);
                pending = i;
            }
            let scale: f64 = (0..i).map(|k| z.get(i, k).abs()).sum();
            if scale == 0.0 {
                // Degenerate step: no reflector. Rows below may still owe
                // the deferred update; `pending` carries it forward.
                e[i] = z.get(i, l);
            } else {
                for k in 0..i {
                    let v = z.get(i, k) / scale;
                    z.set(i, k, v);
                    h += v * v;
                }
                let f = z.get(i, l);
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z.set(i, l, f - g);
                let u = &mut ubuf[..i];
                u.copy_from_slice(&z.row(i)[..i]);
                if store_v {
                    for j in 0..i {
                        z.set(j, i, u[j] / h);
                    }
                }
                // One pass over the lower triangle: finish the previous
                // step's rank-2 update on row j, then immediately fold the
                // row into this step's symmetric matvec while it is hot:
                // p[j] = Σ_{k≤j} A[j][k]·u[k]  (dot over row j)
                //      + Σ_{k>j} A[k][j]·u[k]  (row k scatters into p[..k]),
                // both directions fused via `dot_axpy` so each row is loaded
                // once.
                pbuf[..i].fill(0.0);
                for j in 0..i {
                    if j < pending {
                        let row_j = &mut z.row_mut(j)[..=j];
                        blas::update2(row_j, &gprev[..=j], &uprev[..=j], uprev[j], gprev[j]);
                    }
                    let row_j = &z.row(j)[..=j];
                    let partial = blas::dot_axpy(&mut pbuf[..j], &row_j[..j], &u[..j], u[j]);
                    pbuf[j] += partial + row_j[j] * u[j];
                }
                let mut fsum = 0.0;
                for j in 0..i {
                    pbuf[j] /= h;
                    fsum += pbuf[j] * u[j];
                }
                // Defer this step's rank-2 update; the next step (or the
                // final flush) applies it before each row is next read.
                let hh = fsum / (h + h);
                for j in 0..i {
                    gprev[j] = pbuf[j] - hh * u[j];
                }
                uprev[..i].copy_from_slice(u);
                pending = i;
            }
        } else {
            // i == 1: row 1 may still owe the deferred update before its
            // off-diagonal entry is read.
            if pending > 1 {
                let row_1 = &mut z.row_mut(1)[..=1];
                blas::update2(row_1, &gprev[..=1], &uprev[..=1], uprev[1], gprev[1]);
                pending = 1;
            }
            e[i] = z.get(i, l);
        }
        d[i] = h;
    }
    // The 1x1 corner may still owe the deferred update — callers read the
    // tridiagonal diagonal off `z` afterwards.
    if pending > 0 {
        let row_0 = &mut z.row_mut(0)[..=0];
        blas::update2(row_0, &gprev[..=0], &uprev[..=0], uprev[0], gprev[0]);
    }
    d[0] = 0.0;
    e[0] = 0.0;
}

/// Implicit QL with shifts on the tridiagonal `(d, e)`, rotating the **rows**
/// of `zt` (the transposed accumulated basis) into eigenvectors. On success
/// `d` holds eigenvalues (unsorted) and row `i` of `zt` is the eigenvector
/// for `d[i]`.
///
/// Operating on the transpose turns each Givens rotation into a fused pass
/// over two contiguous rows ([`blas::rot2`]) instead of a strided
/// column-pair walk — the dominant cost of the QL phase for the matrix
/// sizes PCA feeds in.
#[allow(clippy::needless_range_loop)]
fn ql_implicit(d: &mut [f64], e: &mut [f64], zt: &mut Matrix) -> Result<()> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a negligible off-diagonal element delimiting a block.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERATIONS {
                return Err(LinalgError::NoConvergence {
                    algorithm: "implicit QL (sym_eigen)",
                    iterations: MAX_QL_ITERATIONS,
                });
            }
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + sign_like(r, g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by deflating.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Apply the rotation to eigenvector rows i, i+1 (adjacent
                // and contiguous in the row-major transpose).
                let (row_i, row_i1) = zt.as_mut_slice()[i * n..(i + 2) * n].split_at_mut(n);
                blas::rot2(row_i, row_i1, c, s);
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Full eigendecomposition of a symmetric matrix.
///
/// Only the lower triangle strictly needs to be meaningful, but callers in
/// this workspace always pass exactly symmetric matrices. Returns eigenpairs
/// sorted by descending eigenvalue.
pub fn sym_eigen(a: &Matrix) -> Result<SymEigen> {
    let n = a.rows();
    if a.rows() != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "sym_eigen",
            got: format!("{}x{}", a.rows(), a.cols()),
            expected: "square symmetric matrix".to_string(),
        });
    }
    if n == 0 {
        return Ok(SymEigen {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
        });
    }
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tridiagonalize(&mut z, &mut d, &mut e);
    // QL runs on the transpose so each Givens rotation touches two
    // contiguous rows instead of two strided columns.
    let mut zt = z.transpose();
    ql_implicit(&mut d, &mut e, &mut zt)?;

    // Sort descending by eigenvalue, gathering eigenvector rows of the
    // transpose back into columns of the result.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (c, &idx) in order.iter().enumerate() {
        let src = zt.row(idx);
        for (r, &v) in src.iter().enumerate() {
            eigenvectors.set(r, c, v);
        }
    }
    Ok(SymEigen {
        eigenvalues,
        eigenvectors,
    })
}

/// Implicit QL with shifts computing **eigenvalues only** — [`ql_implicit`]
/// minus the rotation of the accumulated basis, dropping the `O(n³)`
/// eigenvector work and leaving an `O(n²)` total. On success `d` holds the
/// (unsorted) eigenvalues of the tridiagonal `(d, e)`.
fn ql_values(d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERATIONS {
                return Err(LinalgError::NoConvergence {
                    algorithm: "implicit QL (sym_eigen_select, values)",
                    iterations: MAX_QL_ITERATIONS,
                });
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + sign_like(r, g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// One solve of `(T − λI)·x = rhs` for the symmetric tridiagonal `T` with
/// diagonal `diag` and off-diagonal `off` (`off[i]` couples `i` and `i+1`),
/// by Gaussian elimination with partial pivoting (bandwidth grows to two
/// superdiagonals, the classic `tinvit` factorization). `rhs` is consumed
/// in place and replaced by the solution; near-singular pivots — expected,
/// since λ is an eigenvalue — are replaced by `eps` so the solve blows up
/// *along the eigenvector*, which is exactly what inverse iteration wants.
///
/// `a`/`b`/`c` are caller-provided scratch for the three stored diagonals.
#[allow(clippy::too_many_arguments)]
fn solve_tridiag_shifted(
    diag: &[f64],
    off: &[f64],
    lambda: f64,
    eps: f64,
    x: &mut [f64],
    a: &mut [f64],
    b: &mut [f64],
    c: &mut [f64],
) {
    let n = diag.len();
    if n == 1 {
        let p = diag[0] - lambda;
        let p = if p.abs() < eps { sign_like(eps, p) } else { p };
        x[0] /= p;
        return;
    }
    let mut u = diag[0] - lambda;
    let mut v = off[0];
    for i in 1..n {
        let s = off[i - 1];
        if s.abs() > u.abs() {
            // Pivot: swap rows i-1 and i before eliminating.
            let xu = if s != 0.0 { u / s } else { 0.0 };
            a[i - 1] = s;
            b[i - 1] = diag[i] - lambda;
            c[i - 1] = if i + 1 < n { off[i] } else { 0.0 };
            x.swap(i - 1, i);
            x[i] -= xu * x[i - 1];
            u = v - xu * b[i - 1];
            v = -xu * c[i - 1];
        } else {
            let xu = if u != 0.0 { s / u } else { 0.0 };
            a[i - 1] = u;
            b[i - 1] = v;
            c[i - 1] = 0.0;
            x[i] -= xu * x[i - 1];
            u = diag[i] - lambda - xu * v;
            v = if i + 1 < n { off[i] } else { 0.0 };
        }
    }
    a[n - 1] = if u.abs() < eps { sign_like(eps, u) } else { u };
    b[n - 1] = 0.0;
    for i in (0..n).rev() {
        let mut t = x[i];
        if i + 1 < n {
            t -= b[i] * x[i + 1];
        }
        if i + 2 < n {
            t -= c[i] * x[i + 2];
        }
        let p = a[i];
        let p = if p.abs() < eps { sign_like(eps, p) } else { p };
        x[i] = t / p;
    }
}

/// Selective eigendecomposition: the **full spectrum** plus eigenvectors for
/// only the `k` leading eigenvalues, where `k` is chosen by the caller *after
/// seeing every eigenvalue*.
///
/// This is the exact-TVE fast path for PCA at moderate `m`: the paper's
/// TVE rule needs the complete (sorted) spectrum to pick `k`, but only `k`
/// eigenvectors are ever used. The full `tred2 + tql2` solve pays `O(n³)`
/// twice over (transform accumulation, then rotating `n` vectors through
/// every QL sweep); here the split is
///
/// 1. Householder reduction keeping the raw reflectors (`~n³/3` avoided),
/// 2. eigenvalues-only implicit QL (`O(n²)`),
/// 3. inverse iteration on the tridiagonal for the `k` selected values
///    (`O(k·n)` per vector, with modified-Gram–Schmidt re-orthogonalization
///    inside clusters of near-equal eigenvalues),
/// 4. back-transform of those `k` vectors through the reflectors
///    (`O(k·n²)`).
///
/// `select` receives the eigenvalues sorted descending and returns how many
/// leading eigenvectors to compute (clamped to `n`). Returns the sorted
/// spectrum and the selected eigenpairs in [`SymEigen`] layout.
pub fn sym_eigen_select<F>(a: &Matrix, select: F) -> Result<(Vec<f64>, SymEigen)>
where
    F: FnOnce(&[f64]) -> usize,
{
    let n = a.rows();
    if a.rows() != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "sym_eigen_select",
            got: format!("{}x{}", a.rows(), a.cols()),
            expected: "square symmetric matrix".to_string(),
        });
    }
    if n == 0 {
        return Ok((
            vec![],
            SymEigen {
                eigenvalues: vec![],
                eigenvectors: Matrix::zeros(0, 0),
            },
        ));
    }
    let mut z = a.clone();
    let mut hs = vec![0.0; n];
    let mut e = vec![0.0; n];
    householder_reduce(&mut z, &mut hs, &mut e, false);
    // The tridiagonal: diagonal is left on the reduced matrix, `e[i]`
    // couples i-1 and i. Re-index the off-diagonal so off[i] couples
    // (i, i+1) for the inverse-iteration solver.
    let diag: Vec<f64> = (0..n).map(|i| z.get(i, i)).collect();
    let off: Vec<f64> = (0..n - 1).map(|i| e[i + 1]).collect();

    let mut dq = diag.clone();
    let mut eq = e.clone();
    ql_values(&mut dq, &mut eq)?;
    dq.sort_by(|x, y| y.partial_cmp(x).unwrap_or(std::cmp::Ordering::Equal));
    let spectrum = dq;

    let k = select(&spectrum).min(n);
    if k == 0 {
        return Ok((
            spectrum,
            SymEigen {
                eigenvalues: vec![],
                eigenvectors: Matrix::zeros(n, 0),
            },
        ));
    }

    // Inverse iteration in the tridiagonal basis. `vt` holds the vectors as
    // rows (contiguous for the MGS passes); they are back-transformed and
    // gathered into columns at the end.
    let tnorm = diag
        .iter()
        .map(|v| v.abs())
        .chain(off.iter().map(|v| v.abs()))
        .fold(0.0f64, f64::max)
        .max(1e-300);
    // Floored at the smallest normal so 1/eps stays finite even for an
    // (effectively) zero input matrix.
    let eps = (f64::EPSILON * tnorm).max(f64::MIN_POSITIVE);
    // Eigenvalues closer than this are treated as one cluster: their
    // tridiagonal eigenvectors must be explicitly re-orthogonalized, and the
    // shifts nudged apart so the solves don't all converge to the same
    // direction.
    let cluster_gap = 1e-8 * tnorm;
    let mut vt = Matrix::zeros(k, n);
    let mut a_s = vec![0.0; n];
    let mut b_s = vec![0.0; n];
    let mut c_s = vec![0.0; n];
    let mut cluster_start = 0usize;
    let mut prev_shift = f64::INFINITY;
    for j in 0..k {
        if j > 0 && (spectrum[j - 1] - spectrum[j]).abs() > cluster_gap {
            cluster_start = j;
        }
        // Separate shifts inside a cluster (tinvit's eps-perturbation).
        let mut shift = spectrum[j];
        if j > cluster_start && shift > prev_shift - eps {
            shift = prev_shift - eps;
        }
        prev_shift = shift;
        let mut attempt = 0usize;
        loop {
            {
                let x = vt.row_mut(j);
                // A deterministic start that is generic (no hidden
                // orthogonality to any eigenvector) and *distinct per
                // vector*: cluster-mates sharing one seed would differ only
                // by cancellation noise after the MGS projection.
                for (i, v) in x.iter_mut().enumerate() {
                    *v = 1.0 + ((i * (j + 1) + attempt * 7) % 13) as f64 * 0.0625;
                }
            }
            for _pass in 0..2 {
                {
                    let x = vt.row_mut(j);
                    solve_tridiag_shifted(&diag, &off, shift, eps, x, &mut a_s, &mut b_s, &mut c_s);
                    let amax = x.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
                    let inv = 1.0 / amax;
                    for v in x.iter_mut() {
                        *v *= inv;
                    }
                }
                // Project out the cluster-mates computed so far
                // (re-orthogonalized: "twice is enough").
                let (done, rest) = vt.as_mut_slice().split_at_mut(j * n);
                let x = &mut rest[..n];
                for _mgs in 0..2 {
                    for p in cluster_start..j {
                        let prow = &done[p * n..(p + 1) * n];
                        let proj = blas::dot(x, prow);
                        blas::axpy(x, prow, -proj);
                    }
                }
            }
            let x = vt.row_mut(j);
            let norm = blas::dot(x, x).sqrt();
            if norm > 1e-150 {
                let inv = 1.0 / norm;
                for v in x.iter_mut() {
                    *v *= inv;
                }
                break;
            }
            attempt += 1;
            if attempt > n {
                return Err(LinalgError::NoConvergence {
                    algorithm: "inverse iteration (sym_eigen_select)",
                    iterations: attempt,
                });
            }
        }
    }

    // Back-transform through the Householder reflectors: the reduction built
    // T = Qᵀ·A·Q with Q = P_{n-1}···P_1, so an eigenvector w of T maps to
    // Q·w applied reflector-by-reflector in ascending step order. Each
    // reflector is rank-one on the leading `i` coordinates: two fused
    // level-1 passes per (vector, step).
    for j in 0..k {
        let w = vt.row_mut(j);
        for i in 1..n {
            let h = hs[i];
            if h != 0.0 {
                let u = &z.row(i)[..i];
                let s = blas::dot(u, &w[..i]) / h;
                blas::axpy(&mut w[..i], u, -s);
            }
        }
    }
    let mut eigenvectors = Matrix::zeros(n, k);
    for j in 0..k {
        let src = vt.row(j);
        for (r, &v) in src.iter().enumerate() {
            eigenvectors.set(r, j, v);
        }
    }
    Ok((
        spectrum.clone(),
        SymEigen {
            eigenvalues: spectrum[..k].to_vec(),
            eigenvectors,
        },
    ))
}

/// Truncated eigendecomposition: the `k` largest-magnitude eigenpairs via
/// orthogonal (subspace) iteration with a Rayleigh–Ritz projection.
///
/// This is DPZ's sampling fast path: once the sampling strategy has
/// estimated `k ≪ M`, the full `O(M³)` solve is replaced by
/// `O(M²·k)`-per-iteration subspace iteration. Intended for positive
/// semi-definite inputs (covariance matrices), where the largest-magnitude
/// eigenvalues are also the largest.
pub fn sym_eigen_topk(a: &Matrix, k: usize, max_iters: usize) -> Result<SymEigen> {
    let m = a.rows();
    if a.rows() != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "sym_eigen_topk",
            got: format!("{}x{}", a.rows(), a.cols()),
            expected: "square symmetric matrix".to_string(),
        });
    }
    let k = k.min(m);
    if k == 0 || m == 0 {
        return Ok(SymEigen {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(m, 0),
        });
    }
    // Deterministic pseudo-random starting subspace, stored transposed: row
    // `c` of `qt` is subspace vector `c`, so every inner-loop access below
    // (orthonormalization, norm estimates) is a contiguous row.
    let mut qt = Matrix::zeros(k, m);
    let mut state = 0x0123_4567_89AB_CDEFu64;
    for r in 0..k {
        for c in 0..m {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            qt.set(r, c, (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
        }
    }
    orthonormalize_rows(&mut qt)?;

    let mut prev = vec![f64::INFINITY; k];
    for _ in 0..max_iters.max(1) {
        // (A·Q)ᵀ = Qᵀ·A for symmetric A, so the transposed iterate is one
        // row-major mat-mul with the packed GEMM path.
        let mut zt = qt.matmul(a)?;
        // Convergence estimate from the un-normalized image: once the
        // subspace has settled, |A·q_i| approaches |lambda_i|. Reusing `zt`
        // avoids a second mat-mul per iteration.
        let mut est = vec![0.0; k];
        for (c, e) in est.iter_mut().enumerate() {
            let row = zt.row(c);
            *e = blas::dot(row, row).sqrt();
        }
        orthonormalize_rows(&mut zt)?;
        qt = zt;
        let delta = est
            .iter()
            .zip(&prev)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let scale = est.iter().map(|v| v.abs()).fold(1e-300, f64::max);
        prev = est;
        if delta <= 1e-10 * scale {
            break;
        }
    }
    // Rayleigh–Ritz: solve the small projected problem exactly.
    let aqt = qt.matmul(a)?; // k x m = QᵀA
    let small = aqt.matmul_transb(&qt)?; // QᵀAQ, k x k symmetric
    let SymEigen {
        eigenvalues,
        eigenvectors: rot,
    } = sym_eigen(&small)?;
    // V = Q·rot, built transposed as Vᵀ = rotᵀ·Qᵀ.
    let vt = rot.transpose().matmul(&qt)?;
    let eigenvectors = vt.transpose();
    Ok(SymEigen {
        eigenvalues,
        eigenvectors,
    })
}

/// In-place modified Gram–Schmidt orthonormalization of the **rows** of `q`
/// (the transposed subspace layout used by [`sym_eigen_topk`]).
///
/// Rows that collapse numerically are replaced by a unit basis vector that
/// is itself orthogonalized against the rows already processed (cycling to
/// the next basis vector if the projection collapses too) so the output is
/// always orthonormal. Replacing with a *raw* basis vector — what this
/// routine previously did in column form — breaks orthogonality and lets
/// Rayleigh–Ritz values overshoot the true spectrum on (near) low-rank
/// inputs.
pub(crate) fn orthonormalize_rows(q: &mut Matrix) -> Result<()> {
    let (k, m) = q.shape();
    for r in 0..k {
        let mut attempts = 0usize;
        'direction: loop {
            let (done, rest) = q.as_mut_slice().split_at_mut(r * m);
            let row = &mut rest[..m];
            // Projection with re-orthogonalization ("twice is enough"): a
            // pass that removes most of the norm signals cancellation, so
            // the residual's direction is unreliable — project again until
            // the norm stabilizes. A single pass here is exactly the bug
            // that let Ritz values overshoot lambda_max on low-rank inputs.
            let mut norm = blas::dot(row, row).sqrt();
            if norm >= 1e-150 {
                for _pass in 0..3 {
                    for p in 0..r {
                        let prow = &done[p * m..(p + 1) * m];
                        let proj = blas::dot(row, prow);
                        blas::axpy(row, prow, -proj);
                    }
                    let after = blas::dot(row, row).sqrt();
                    if after < 1e-150 {
                        break;
                    }
                    if after >= 0.5 * norm {
                        let inv = 1.0 / after;
                        for v in row.iter_mut() {
                            *v *= inv;
                        }
                        break 'direction;
                    }
                    norm = after;
                }
            }
            if attempts >= m {
                // k ≤ m rows can always be completed from the m basis
                // vectors; hitting this means the caller asked for more
                // rows than the ambient dimension.
                return Err(LinalgError::NoConvergence {
                    algorithm: "orthonormalize_rows (sym_eigen_topk)",
                    iterations: attempts,
                });
            }
            // Degenerate direction: seed with the next untried basis vector
            // and loop back to orthogonalize it against rows 0..r.
            for (i, v) in row.iter_mut().enumerate() {
                *v = if i == (r + attempts) % m { 1.0 } else { 0.0 };
            }
            attempts += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_from(vals: &[f64], n: usize) -> Matrix {
        Matrix::from_vec(n, n, vals.to_vec()).unwrap()
    }

    /// Deterministic pseudo-random symmetric matrix.
    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        m
    }

    fn check_decomposition(a: &Matrix, eig: &SymEigen, tol: f64) {
        let n = a.rows();
        // A v = lambda v for each pair.
        for j in 0..n {
            let v = eig.eigenvectors.col(j);
            let av = a.mul_vec(&v).unwrap();
            for i in 0..n {
                assert!(
                    (av[i] - eig.eigenvalues[j] * v[i]).abs() < tol,
                    "residual too large for eigenpair {j}"
                );
            }
        }
        // Orthonormal columns.
        let vtv = eig
            .eigenvectors
            .transpose()
            .matmul(&eig.eigenvectors)
            .unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(n)) < tol);
    }

    #[test]
    fn diagonal_matrix() {
        let a = sym_from(&[3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0], 3);
        let eig = sym_eigen(&a).unwrap();
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 1.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = sym_from(&[2.0, 1.0, 1.0, 2.0], 2);
        let eig = sym_eigen(&a).unwrap();
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = random_symmetric(12, 7);
        let eig = sym_eigen(&a).unwrap();
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn random_matrices_decompose() {
        for (n, seed) in [(1usize, 1u64), (2, 2), (5, 3), (16, 4), (40, 5)] {
            let a = random_symmetric(n, seed);
            let eig = sym_eigen(&a).unwrap();
            check_decomposition(&a, &eig, 1e-8 * (n as f64));
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = random_symmetric(20, 11);
        let eig = sym_eigen(&a).unwrap();
        let trace: f64 = (0..20).map(|i| a.get(i, i)).sum();
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn reconstruction_v_lambda_vt() {
        let a = random_symmetric(10, 21);
        let eig = sym_eigen(&a).unwrap();
        let n = 10;
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam.set(i, i, eig.eigenvalues[i]);
        }
        let recon = eig
            .eigenvectors
            .matmul(&lam)
            .unwrap()
            .matmul(&eig.eigenvectors.transpose())
            .unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn positive_semidefinite_gram_has_nonnegative_spectrum() {
        // Gram matrices (what PCA feeds in) must have lambda >= 0.
        let x = random_symmetric(15, 33);
        let g = x.gram();
        let eig = sym_eigen(&g).unwrap();
        for &l in &eig.eigenvalues {
            assert!(l > -1e-9, "negative eigenvalue {l} from a Gram matrix");
        }
    }

    #[test]
    fn repeated_eigenvalues_identity() {
        let a = Matrix::identity(6);
        let eig = sym_eigen(&a).unwrap();
        for &l in &eig.eigenvalues {
            assert!((l - 1.0).abs() < 1e-12);
        }
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn rejects_non_square() {
        assert!(sym_eigen(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn empty_matrix() {
        let eig = sym_eigen(&Matrix::zeros(0, 0)).unwrap();
        assert!(eig.eigenvalues.is_empty());
    }

    #[test]
    fn topk_matches_full_solver_on_psd() {
        // Gram matrix (PSD) with a clear spectral gap.
        let x = random_symmetric(20, 55);
        let g = x.gram();
        let full = sym_eigen(&g).unwrap();
        let top = sym_eigen_topk(&g, 4, 300).unwrap();
        for i in 0..4 {
            let rel =
                (full.eigenvalues[i] - top.eigenvalues[i]).abs() / full.eigenvalues[0].max(1e-300);
            assert!(
                rel < 1e-6,
                "eigenvalue {i}: {} vs {}",
                full.eigenvalues[i],
                top.eigenvalues[i]
            );
        }
        // Eigenvectors agree up to sign.
        for i in 0..4 {
            let a = full.eigenvectors.col(i);
            let b = top.eigenvectors.col(i);
            let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(
                dot.abs() > 0.999,
                "eigenvector {i} misaligned: |dot| = {}",
                dot.abs()
            );
        }
    }

    #[test]
    fn topk_never_overshoots_on_low_rank_input() {
        // Rank-4 PSD matrix with k past the rank: the degenerate subspace
        // directions must be re-orthogonalized, not just reset to raw basis
        // vectors, or Rayleigh–Ritz values can exceed the true lambda_max.
        let n = 24;
        let mut x = Matrix::zeros(4, n);
        let mut state = 99u64;
        for r in 0..4 {
            for c in 0..n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                x.set(r, c, (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
            }
        }
        let g = x.gram(); // n x n, rank <= 4
        let full = sym_eigen(&g).unwrap();
        let top = sym_eigen_topk(&g, 8, 200).unwrap();
        let lmax = full.eigenvalues[0];
        for (i, &l) in top.eigenvalues.iter().enumerate() {
            assert!(
                l <= lmax * (1.0 + 1e-9) + 1e-12,
                "Ritz value {i} = {l} overshoots lambda_max = {lmax}"
            );
        }
        for i in 0..4 {
            let rel = (full.eigenvalues[i] - top.eigenvalues[i]).abs() / lmax.max(1e-300);
            assert!(rel < 1e-8, "eigenvalue {i} mismatch");
        }
        // Orthonormal output even past the numerical rank.
        let vtv = top
            .eigenvectors
            .transpose()
            .matmul(&top.eigenvectors)
            .unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(8)) < 1e-9);
    }

    #[test]
    fn topk_handles_k_larger_than_n() {
        let a = random_symmetric(5, 77);
        let g = a.gram();
        let eig = sym_eigen_topk(&g, 10, 100).unwrap();
        assert_eq!(eig.eigenvalues.len(), 5);
    }

    #[test]
    fn topk_zero_k() {
        let a = Matrix::identity(4);
        let eig = sym_eigen_topk(&a, 0, 10).unwrap();
        assert!(eig.eigenvalues.is_empty());
        assert_eq!(eig.eigenvectors.shape(), (4, 0));
    }

    #[test]
    fn select_matches_full_solver() {
        for (n, seed) in [(2usize, 9u64), (7, 10), (20, 11), (45, 12)] {
            let a = random_symmetric(n, seed);
            let full = sym_eigen(&a).unwrap();
            let k = (n / 2).max(1);
            let (spectrum, top) = sym_eigen_select(&a, |vals| {
                assert_eq!(vals.len(), n);
                k
            })
            .unwrap();
            let scale = spectrum[0].abs().max(spectrum[n - 1].abs()).max(1e-300);
            for (i, &l) in spectrum.iter().enumerate() {
                assert!(
                    (l - full.eigenvalues[i]).abs() < 1e-10 * scale,
                    "spectrum[{i}] mismatch: {} vs {}",
                    l,
                    full.eigenvalues[i]
                );
            }
            assert_eq!(top.eigenvalues.len(), k);
            assert_eq!(top.eigenvectors.shape(), (n, k));
            // Residual check: A v = lambda v for every selected pair.
            for j in 0..k {
                let v = top.eigenvectors.col(j);
                let av = a.mul_vec(&v).unwrap();
                for i in 0..n {
                    assert!(
                        (av[i] - top.eigenvalues[j] * v[i]).abs() < 1e-8 * scale.max(1.0),
                        "residual too large for selected pair {j} (n={n})"
                    );
                }
            }
            // Selected vectors are orthonormal.
            let vtv = top
                .eigenvectors
                .transpose()
                .matmul(&top.eigenvectors)
                .unwrap();
            assert!(vtv.max_abs_diff(&Matrix::identity(k)) < 1e-9);
        }
    }

    #[test]
    fn select_handles_repeated_eigenvalues() {
        // Identity: every eigenvalue is 1; the cluster logic must still
        // produce an orthonormal set.
        let a = Matrix::identity(8);
        let (spectrum, top) = sym_eigen_select(&a, |_| 5).unwrap();
        for &l in &spectrum {
            assert!((l - 1.0).abs() < 1e-12);
        }
        let vtv = top
            .eigenvectors
            .transpose()
            .matmul(&top.eigenvectors)
            .unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(5)) < 1e-8);

        // Block-repeated spectrum from a PSD gram of duplicated rows.
        let mut x = Matrix::zeros(3, 12);
        let mut state = 5u64;
        for r in 0..3 {
            for c in 0..12 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                x.set(r, c, (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
            }
        }
        let g = x.gram();
        let full = sym_eigen(&g).unwrap();
        let (spectrum, top) = sym_eigen_select(&g, |_| 6).unwrap();
        for (i, &l) in spectrum.iter().enumerate() {
            assert!((l - full.eigenvalues[i]).abs() < 1e-10);
        }
        let vtv = top
            .eigenvectors
            .transpose()
            .matmul(&top.eigenvectors)
            .unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(6)) < 1e-8);
    }

    #[test]
    fn select_zero_k_and_empty() {
        let a = random_symmetric(6, 42);
        let (spectrum, top) = sym_eigen_select(&a, |_| 0).unwrap();
        assert_eq!(spectrum.len(), 6);
        assert!(top.eigenvalues.is_empty());
        assert_eq!(top.eigenvectors.shape(), (6, 0));
        let (s, e) = sym_eigen_select(&Matrix::zeros(0, 0), |_| 3).unwrap();
        assert!(s.is_empty());
        assert!(e.eigenvalues.is_empty());
    }

    #[test]
    fn select_clamps_oversized_k() {
        let a = random_symmetric(5, 77);
        let (_, top) = sym_eigen_select(&a, |_| 50).unwrap();
        assert_eq!(top.eigenvalues.len(), 5);
        check_decomposition(
            &a,
            &SymEigen {
                eigenvalues: top.eigenvalues.clone(),
                eigenvectors: top.eigenvectors.clone(),
            },
            1e-8,
        );
    }

    #[test]
    fn agrees_with_jacobi() {
        // Cross-check the QL solver against the independent Jacobi solver.
        for seed in [101u64, 202, 303] {
            let a = random_symmetric(18, seed);
            let ql = sym_eigen(&a).unwrap();
            let jac = crate::jacobi::jacobi_eigen(&a, 200).unwrap();
            for (x, y) in ql.eigenvalues.iter().zip(&jac.eigenvalues) {
                assert!((x - y).abs() < 1e-8, "eigenvalue mismatch {x} vs {y}");
            }
        }
    }
}
