//! Orthonormal discrete wavelet transforms (Haar and Daubechies-4).
//!
//! Section III-B2 of the DPZ paper notes that PCA can run in *any*
//! orthogonal transform domain — "PCA in other transform domains (e.g.,
//! wavelet transforms) should also work if the coefficients show normality,
//! high information preservation, and can be mathematically proved for
//! direct implementation." This module provides that alternative stage-1
//! transform: periodic, orthonormal DWTs whose transform matrices satisfy
//! `Aᵀ = A⁻¹`, so the PCA-in-transform-domain identity (Eq. 3–6) holds
//! verbatim.
//!
//! Multi-level analysis recursively transforms the approximation band; the
//! coefficient layout after `L` levels is
//! `[approx_L | detail_L | detail_{L-1} | … | detail_1]`, so low-frequency
//! content concentrates at the front — the same energy-compaction shape the
//! DCT gives DPZ.

use crate::{LinalgError, Result};

/// Wavelet family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wavelet {
    /// Haar: 2-tap, the simplest orthonormal wavelet.
    Haar,
    /// Daubechies-4: 4-tap, smoother basis with better compaction on
    /// piecewise-smooth signals.
    Db4,
}

impl Wavelet {
    /// Low-pass analysis filter taps.
    fn lowpass(self) -> &'static [f64] {
        match self {
            Wavelet::Haar => &HAAR_LO,
            Wavelet::Db4 => &DB4_LO,
        }
    }
}

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;
static HAAR_LO: [f64; 2] = [FRAC_1_SQRT_2, FRAC_1_SQRT_2];
// Daubechies-4 analysis low-pass (orthonormal normalization).
static DB4_LO: [f64; 4] = [
    0.482962913144690,
    0.836516303737469,
    0.224143868041857,
    -0.129409522550921,
];

/// One analysis level: `data` (even length) becomes
/// `[approx | detail]`, each of half length, using periodic extension.
fn analyze_level(data: &[f64], wavelet: Wavelet, out: &mut [f64]) {
    let n = data.len();
    debug_assert!(n.is_multiple_of(2) && out.len() == n);
    let lo = wavelet.lowpass();
    let taps = lo.len();
    let half = n / 2;
    for i in 0..half {
        let mut a = 0.0;
        let mut d = 0.0;
        for (t, &l) in lo.iter().enumerate() {
            let idx = (2 * i + t) % n;
            a += l * data[idx];
            // High-pass taps by the quadrature mirror relation:
            // g[t] = (-1)^t * h[taps-1-t].
            let g = if t % 2 == 0 {
                lo[taps - 1 - t]
            } else {
                -lo[taps - 1 - t]
            };
            d += g * data[idx];
        }
        out[i] = a;
        out[half + i] = d;
    }
}

/// One synthesis level: invert [`analyze_level`].
fn synthesize_level(coeffs: &[f64], wavelet: Wavelet, out: &mut [f64]) {
    let n = coeffs.len();
    debug_assert!(n.is_multiple_of(2) && out.len() == n);
    let lo = wavelet.lowpass();
    let taps = lo.len();
    let half = n / 2;
    out.iter_mut().for_each(|v| *v = 0.0);
    for i in 0..half {
        let a = coeffs[i];
        let d = coeffs[half + i];
        for (t, &l) in lo.iter().enumerate() {
            let g = if t % 2 == 0 {
                lo[taps - 1 - t]
            } else {
                -lo[taps - 1 - t]
            };
            let idx = (2 * i + t) % n;
            out[idx] += l * a + g * d;
        }
    }
}

/// Multi-level forward DWT in place. `data.len()` must be divisible by
/// `2^levels`; `levels == 0` is a no-op.
pub fn dwt_forward(data: &mut [f64], wavelet: Wavelet, levels: usize) -> Result<()> {
    let n = data.len();
    if levels == 0 {
        return Ok(());
    }
    if n == 0 || !n.is_multiple_of(1 << levels) {
        return Err(LinalgError::DimensionMismatch {
            op: "dwt_forward",
            got: format!("length {n}"),
            expected: format!("multiple of 2^{levels}"),
        });
    }
    let mut scratch = vec![0.0; n];
    let mut len = n;
    for _ in 0..levels {
        analyze_level(&data[..len], wavelet, &mut scratch[..len]);
        data[..len].copy_from_slice(&scratch[..len]);
        len /= 2;
    }
    Ok(())
}

/// Multi-level inverse DWT in place (exact inverse of [`dwt_forward`]).
pub fn dwt_inverse(data: &mut [f64], wavelet: Wavelet, levels: usize) -> Result<()> {
    let n = data.len();
    if levels == 0 {
        return Ok(());
    }
    if n == 0 || !n.is_multiple_of(1 << levels) {
        return Err(LinalgError::DimensionMismatch {
            op: "dwt_inverse",
            got: format!("length {n}"),
            expected: format!("multiple of 2^{levels}"),
        });
    }
    let mut scratch = vec![0.0; n];
    let mut len = n >> (levels - 1);
    for _ in 0..levels {
        synthesize_level(&data[..len], wavelet, &mut scratch[..len]);
        data[..len].copy_from_slice(&scratch[..len]);
        len *= 2;
    }
    Ok(())
}

/// Largest level count usable for a given length (so every analysis level
/// sees an even length), capped at `max_levels`.
pub fn max_levels_for(len: usize, max_levels: usize) -> usize {
    let mut levels = 0;
    let mut l = len;
    while levels < max_levels && l >= 2 && l.is_multiple_of(2) {
        levels += 1;
        l /= 2;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.05).sin() * 3.0 + (i as f64 * 0.011).cos())
            .collect()
    }

    #[test]
    fn round_trip_all_wavelets_and_levels() {
        for wavelet in [Wavelet::Haar, Wavelet::Db4] {
            for levels in 0..=4 {
                let original = signal(64);
                let mut buf = original.clone();
                dwt_forward(&mut buf, wavelet, levels).unwrap();
                dwt_inverse(&mut buf, wavelet, levels).unwrap();
                for (a, b) in original.iter().zip(&buf) {
                    assert!(
                        (a - b).abs() < 1e-10,
                        "{wavelet:?} levels {levels}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn energy_preserved_orthonormal() {
        for wavelet in [Wavelet::Haar, Wavelet::Db4] {
            let original = signal(128);
            let e0: f64 = original.iter().map(|v| v * v).sum();
            let mut buf = original.clone();
            dwt_forward(&mut buf, wavelet, 3).unwrap();
            let e1: f64 = buf.iter().map(|v| v * v).sum();
            assert!((e0 - e1).abs() < 1e-9 * e0, "{wavelet:?}: {e0} vs {e1}");
        }
    }

    #[test]
    fn haar_constant_signal_compacts_to_dc() {
        let mut buf = vec![5.0; 32];
        dwt_forward(&mut buf, Wavelet::Haar, 5).unwrap();
        // All energy in the single approximation coefficient: 5 * sqrt(32).
        assert!((buf[0] - 5.0 * 32f64.sqrt()).abs() < 1e-9);
        for v in &buf[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn db4_kills_linear_ramps() {
        // Db4 has two vanishing moments: detail coefficients of a linear
        // ramp vanish (away from the periodic wrap-around).
        let n = 64;
        let mut buf: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 + 1.0).collect();
        dwt_forward(&mut buf, Wavelet::Db4, 1).unwrap();
        let details = &buf[n / 2..];
        // All interior detail coefficients ~ 0; the wrap-around ones are not.
        let interior = &details[1..n / 2 - 1];
        for (i, v) in interior.iter().enumerate() {
            assert!(v.abs() < 1e-9, "detail {i} = {v}");
        }
    }

    #[test]
    fn smooth_signal_energy_compaction() {
        let mut buf = signal(256);
        let total: f64 = buf.iter().map(|v| v * v).sum();
        dwt_forward(&mut buf, Wavelet::Db4, 3).unwrap();
        let head: f64 = buf[..64].iter().map(|v| v * v).sum();
        assert!(head / total > 0.99, "head energy {}", head / total);
    }

    #[test]
    fn rejects_bad_lengths() {
        let mut buf = vec![0.0; 12];
        assert!(dwt_forward(&mut buf, Wavelet::Haar, 3).is_err()); // 12 % 8 != 0
        assert!(dwt_forward(&mut buf, Wavelet::Haar, 2).is_ok());
        let mut empty: Vec<f64> = vec![];
        assert!(dwt_forward(&mut empty, Wavelet::Haar, 1).is_err());
    }

    #[test]
    fn zero_levels_is_noop() {
        let original = signal(10);
        let mut buf = original.clone();
        dwt_forward(&mut buf, Wavelet::Db4, 0).unwrap();
        assert_eq!(buf, original);
    }

    #[test]
    fn max_levels_helper() {
        assert_eq!(max_levels_for(64, 10), 6);
        assert_eq!(max_levels_for(64, 3), 3);
        assert_eq!(max_levels_for(48, 10), 4); // 48 = 16*3
        assert_eq!(max_levels_for(7, 10), 0);
        assert_eq!(max_levels_for(0, 10), 0);
    }

    #[test]
    fn db4_filter_is_orthonormal() {
        // Sum of squares = 1; shifted-by-2 inner product = 0.
        let h = &DB4_LO;
        let norm: f64 = h.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-12);
        let shift2: f64 = h[0] * h[2] + h[1] * h[3];
        assert!(shift2.abs() < 1e-12);
        // Low-pass DC gain = sqrt(2).
        let dc: f64 = h.iter().sum();
        assert!((dc - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
