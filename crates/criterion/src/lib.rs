//! A vendored, std-only stand-in for the subset of [criterion]'s API this
//! workspace's benchmarks use. The build environment has no access to
//! crates.io, so the real criterion cannot be fetched; this shim keeps the
//! bench sources compiling and produces honest (if statistically simpler)
//! wall-clock numbers: per benchmark it runs a short warm-up, then times
//! `sample_size` batches and reports the median batch time plus derived
//! throughput.
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::Instant;

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter rendering.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Throughput hint used to derive rate numbers from batch times.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median seconds per iteration, filled by [`Bencher::iter`].
    median: f64,
    samples: usize,
}

impl Bencher {
    /// Time `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call keeps cold-start effects out of the samples.
        std::hint::black_box(f());
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        self.median = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            median: 0.0,
            samples: sample_override().unwrap_or(self.sample_size),
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.1} MB/s", n as f64 / 1e6 / b.median.max(1e-12))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.1} Melem/s", n as f64 / 1e6 / b.median.max(1e-12))
            }
            None => String::new(),
        };
        println!("{}/{label}: {}{rate}", self.name, format_seconds(b.median));
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(&mut self, id: impl Into<LabelOrId>, mut f: impl FnMut(&mut Bencher)) {
        let label = id.into().label;
        self.run(&label, &mut f);
    }

    /// Benchmark a closure that receives an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<LabelOrId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = id.into().label;
        self.run(&label, &mut |b| f(b, input));
    }

    /// End the group (report separator).
    pub fn finish(self) {}
}

/// Either a plain `&str` label or a [`BenchmarkId`].
pub struct LabelOrId {
    label: String,
}

impl From<&str> for LabelOrId {
    fn from(s: &str) -> LabelOrId {
        LabelOrId {
            label: s.to_string(),
        }
    }
}

impl From<String> for LabelOrId {
    fn from(s: String) -> LabelOrId {
        LabelOrId { label: s }
    }
}

impl From<BenchmarkId> for LabelOrId {
    fn from(id: BenchmarkId) -> LabelOrId {
        LabelOrId { label: id.label }
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.run(label, &mut f);
    }
}

/// CI smoke override: `DPZ_BENCH_SAMPLES=N` caps every benchmark at `N`
/// timed samples regardless of the source's `sample_size`, so a bench run
/// can double as a fast "does it still execute" check.
fn sample_override() -> Option<usize> {
    std::env::var("DPZ_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Collect benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
    }

    #[test]
    fn format_spans_units() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" µs"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
    }

    #[test]
    fn sample_override_parses_strictly() {
        std::env::set_var("DPZ_BENCH_SAMPLES", "2");
        assert_eq!(sample_override(), Some(2));
        std::env::set_var("DPZ_BENCH_SAMPLES", "0");
        assert_eq!(sample_override(), None);
        std::env::set_var("DPZ_BENCH_SAMPLES", "lots");
        assert_eq!(sample_override(), None);
        std::env::remove_var("DPZ_BENCH_SAMPLES");
        assert_eq!(sample_override(), None);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
        assert_eq!(BenchmarkId::new("dct", 512).label, "dct/512");
    }
}
