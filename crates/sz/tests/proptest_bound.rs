//! Property tests: the SZ pointwise error bound must hold for arbitrary
//! finite inputs, shapes and predictors, and the decoder must never panic.

use dpz_sz::{compress, decompress, Predictor, SzConfig};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        (16usize..400).prop_map(|n| vec![n]),
        ((3usize..24), (3usize..24)).prop_map(|(a, b)| vec![a, b]),
        ((2usize..10), (2usize..10), (2usize..10)).prop_map(|(a, b, c)| vec![a, b, c]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bound_holds_for_any_input(
        dims in dims_strategy(),
        seed in any::<u64>(),
        eb_exp in -5i32..-1,
        predictor_pick in 0u8..2,
    ) {
        let n: usize = dims.iter().product();
        let mut s = seed | 1;
        let data: Vec<f32> = (0..n)
            .map(|i| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                ((i as f64 * 0.1).sin() * 5.0 + noise) as f32
            })
            .collect();
        let eb = 10f64.powi(eb_exp);
        let predictor = if predictor_pick == 0 { Predictor::Lorenzo } else { Predictor::Auto };
        let cfg = SzConfig::with_error_bound(eb).with_predictor(predictor);
        let packed = compress(&data, &dims, &cfg);
        let (out, got_dims) = decompress(&packed).unwrap();
        prop_assert_eq!(got_dims, dims);
        for (a, b) in data.iter().zip(&out) {
            prop_assert!((f64::from(*a) - f64::from(*b)).abs() <= eb * (1.0 + 1e-9));
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decompress(&bytes);
    }

    #[test]
    fn bit_flips_never_panic(seed in any::<u64>(), flip in any::<usize>()) {
        let mut s = seed | 1;
        let data: Vec<f32> = (0..500)
            .map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64) as f32
            })
            .collect();
        let mut packed = compress(&data, &[500], &SzConfig::with_error_bound(1e-3));
        let n = packed.len();
        packed[flip % n] ^= 1 << (flip % 8);
        let _ = decompress(&packed);
    }
}
