//! Block-wise linear-regression prediction (the second predictor of
//! SZ 2.0, "Error-Controlled Lossy Compression Optimized for High
//! Compression Ratios of Scientific Datasets", Liang et al. 2018).
//!
//! For each cubic block the encoder fits a hyperplane
//! `f(i,j,k) = b0 + b1·i + b2·j + b3·k` to the original values by
//! closed-form least squares (the design is a regular grid, so the normal
//! equations are diagonal after centering the coordinates). The residual
//! against the plane is usually much smaller than the Lorenzo residual on
//! smooth-but-tilted data, and — unlike Lorenzo — the prediction does not
//! chain through reconstructed neighbors, so errors do not propagate.
//!
//! The codec picks per block between Lorenzo and regression by comparing
//! estimated mean absolute residuals on the original data (the same
//! selection rule SZ 2.0 uses).

/// Side length of a regression block along each dimension.
pub const BLOCK_SIDE: usize = 8;

/// Block side per dimensionality: the 4 coefficients cost 16 bytes, so
/// low-dimensional blocks must be long enough to amortize them (SZ 2.0
/// likewise uses regression only where the block volume carries it).
pub fn block_side(ndims: usize) -> usize {
    match ndims {
        1 => 128,
        2 => 12,
        _ => BLOCK_SIDE,
    }
}

/// Only prefer regression when it wins by a clear margin: switching costs
/// 16 coefficient bytes and forfeits cross-block Lorenzo context.
pub const SELECTION_MARGIN: f64 = 0.8;

/// Fitted hyperplane coefficients `b0 + b1·i + b2·j + b3·k` over local
/// block coordinates (unused trailing coefficients are zero for lower
/// dimensionalities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneFit {
    /// Intercept at the block origin.
    pub b0: f32,
    /// Slope along the slowest-varying axis.
    pub b1: f32,
    /// Slope along the middle axis (0 for 1-D).
    pub b2: f32,
    /// Slope along the fastest axis (0 for 1-D/2-D).
    pub b3: f32,
}

impl PlaneFit {
    /// Predicted value at local coordinates `(i, j, k)`.
    #[inline]
    pub fn predict(&self, i: usize, j: usize, k: usize) -> f64 {
        f64::from(self.b0)
            + f64::from(self.b1) * i as f64
            + f64::from(self.b2) * j as f64
            + f64::from(self.b3) * k as f64
    }
}

/// Closed-form least-squares plane fit over a block of local extent
/// `(li, lj, lk)` (use 1 for absent dimensions). `values` is indexed
/// `(i·lj + j)·lk + k` and must have length `li·lj·lk`.
///
/// On a regular grid the centered coordinates are orthogonal regressors, so
/// each slope is simply `cov(axis, value) / var(axis)`.
pub fn fit_plane(values: &[f64], li: usize, lj: usize, lk: usize) -> PlaneFit {
    debug_assert_eq!(values.len(), li * lj * lk);
    let n = values.len() as f64;
    let mean: f64 = values.iter().sum::<f64>() / n;
    let (ci, cj, ck) = (
        (li as f64 - 1.0) / 2.0,
        (lj as f64 - 1.0) / 2.0,
        (lk as f64 - 1.0) / 2.0,
    );

    let mut cov = [0.0f64; 3];
    let mut var = [0.0f64; 3];
    for i in 0..li {
        let di = i as f64 - ci;
        for j in 0..lj {
            let dj = j as f64 - cj;
            for k in 0..lk {
                let dk = k as f64 - ck;
                let dv = values[(i * lj + j) * lk + k] - mean;
                cov[0] += di * dv;
                cov[1] += dj * dv;
                cov[2] += dk * dv;
                var[0] += di * di;
                var[1] += dj * dj;
                var[2] += dk * dk;
            }
        }
    }
    let slope = |c: f64, v: f64| if v > 0.0 { c / v } else { 0.0 };
    let b1 = slope(cov[0], var[0]);
    let b2 = slope(cov[1], var[1]);
    let b3 = slope(cov[2], var[2]);
    // Re-express the centered fit with the block origin as reference.
    let b0 = mean - b1 * ci - b2 * cj - b3 * ck;
    PlaneFit {
        b0: b0 as f32,
        b1: b1 as f32,
        b2: b2 as f32,
        b3: b3 as f32,
    }
}

/// Mean absolute residual of a plane fit over the block.
pub fn plane_mae(values: &[f64], li: usize, lj: usize, lk: usize, fit: &PlaneFit) -> f64 {
    let mut acc = 0.0;
    for i in 0..li {
        for j in 0..lj {
            for k in 0..lk {
                acc += (values[(i * lj + j) * lk + k] - fit.predict(i, j, k)).abs();
            }
        }
    }
    acc / values.len() as f64
}

/// Crude Lorenzo-residual estimate on *original* values (as SZ 2.0 does for
/// its predictor selection): mean absolute first difference along the
/// fastest axis, which upper-bounds the 1-D Lorenzo residual and tracks the
/// multi-dimensional one closely on smooth data.
pub fn lorenzo_mae_estimate(values: &[f64], li: usize, lj: usize, lk: usize) -> f64 {
    let mut acc = 0.0;
    let mut count = 0usize;
    for i in 0..li {
        for j in 0..lj {
            for k in 1..lk {
                let a = values[(i * lj + j) * lk + k];
                let b = values[(i * lj + j) * lk + k - 1];
                acc += (a - b).abs();
                count += 1;
            }
        }
    }
    if count == 0 {
        // Degenerate 1-wide fastest axis: fall back to the middle axis.
        for i in 0..li {
            for j in 1..lj {
                for k in 0..lk {
                    let a = values[(i * lj + j) * lk + k];
                    let b = values[(i * lj + (j - 1)) * lk + k];
                    acc += (a - b).abs();
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        f64::INFINITY // single point: any predictor is exact anyway
    } else {
        acc / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_block(li: usize, lj: usize, lk: usize, c: [f64; 4]) -> Vec<f64> {
        let mut out = Vec::with_capacity(li * lj * lk);
        for i in 0..li {
            for j in 0..lj {
                for k in 0..lk {
                    out.push(c[0] + c[1] * i as f64 + c[2] * j as f64 + c[3] * k as f64);
                }
            }
        }
        out
    }

    #[test]
    fn exact_plane_recovered_3d() {
        let coefs = [5.0, 0.25, -0.5, 1.5];
        let block = plane_block(8, 8, 8, coefs);
        let fit = fit_plane(&block, 8, 8, 8);
        assert!((f64::from(fit.b0) - 5.0).abs() < 1e-5);
        assert!((f64::from(fit.b1) - 0.25).abs() < 1e-6);
        assert!((f64::from(fit.b2) + 0.5).abs() < 1e-6);
        assert!((f64::from(fit.b3) - 1.5).abs() < 1e-6);
        assert!(plane_mae(&block, 8, 8, 8, &fit) < 1e-5);
    }

    #[test]
    fn exact_plane_recovered_2d_and_1d() {
        let block2 = plane_block(6, 7, 1, [1.0, 2.0, -3.0, 0.0]);
        let fit2 = fit_plane(&block2, 6, 7, 1);
        assert!(plane_mae(&block2, 6, 7, 1, &fit2) < 1e-5);
        assert_eq!(fit2.b3, 0.0);

        let block1 = plane_block(1, 1, 8, [0.5, 0.0, 0.0, 0.75]);
        let fit1 = fit_plane(&block1, 1, 1, 8);
        assert!(plane_mae(&block1, 1, 1, 8, &fit1) < 1e-6);
    }

    #[test]
    fn tilted_smooth_block_prefers_regression() {
        // Steep plane: Lorenzo's first-difference residual equals the slope,
        // regression's residual is ~0.
        let block = plane_block(8, 8, 8, [0.0, 0.0, 0.0, 10.0]);
        let fit = fit_plane(&block, 8, 8, 8);
        let reg = plane_mae(&block, 8, 8, 8, &fit);
        let lor = lorenzo_mae_estimate(&block, 8, 8, 8);
        assert!(reg < lor / 100.0, "reg {reg} vs lorenzo {lor}");
    }

    #[test]
    fn constant_block_both_near_zero() {
        let block = vec![3.0; 64];
        let fit = fit_plane(&block, 4, 4, 4);
        assert!(plane_mae(&block, 4, 4, 4, &fit) < 1e-12);
        assert!(lorenzo_mae_estimate(&block, 4, 4, 4) < 1e-12);
    }

    #[test]
    fn oscillating_block_prefers_lorenzo_estimate_comparison() {
        // High-frequency sign flips: the plane fit is hopeless (residual ~
        // amplitude); Lorenzo's estimate is ~2x amplitude. Selection between
        // the two is close — just verify both are finite and sane.
        let block: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = fit_plane(&block, 4, 4, 4);
        let reg = plane_mae(&block, 4, 4, 4, &fit);
        let lor = lorenzo_mae_estimate(&block, 4, 4, 4);
        assert!(reg.is_finite() && lor.is_finite());
        assert!(reg > 0.5 && lor > 0.5);
    }

    #[test]
    fn single_point_block() {
        let fit = fit_plane(&[42.0], 1, 1, 1);
        assert_eq!(f64::from(fit.b0), 42.0);
        assert_eq!(lorenzo_mae_estimate(&[42.0], 1, 1, 1), f64::INFINITY);
    }
}
