//! Linear-scaling quantization of prediction residuals (SZ's
//! "error-controlled quantization").
//!
//! Residual `r = x − pred` maps to code `m = round(r / (2·eb))`; the decoder
//! reconstructs `pred + m·2·eb`, which differs from `x` by at most `eb`.
//! Codes outside `(-radius, radius)` — or reconstructions whose `f32`
//! rounding would break the bound — are escaped as exact outliers.

/// Outcome of quantizing one residual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Quantized {
    /// In-range: the symbol to entropy-code (`code = m + radius`, so the
    /// outlier escape 0 never collides; valid symbols are `1..2·radius`).
    Code(u32),
    /// Out-of-range: store the original value verbatim.
    Outlier,
}

/// Residual quantizer with bin width `2·eb`.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    eb: f64,
    radius: i64,
}

impl Quantizer {
    /// Create a quantizer; `eb > 0`, `radius >= 2`.
    pub fn new(error_bound: f64, radius: u32) -> Quantizer {
        assert!(error_bound > 0.0 && error_bound.is_finite());
        assert!(radius >= 2);
        Quantizer {
            eb: error_bound,
            radius: i64::from(radius),
        }
    }

    /// Number of entropy-coder symbols (`2·radius`; symbol 0 = outlier).
    pub fn alphabet_size(&self) -> usize {
        (2 * self.radius) as usize
    }

    /// Quantize `value` against `pred`, returning the decision and the
    /// reconstructed value the decoder will see.
    #[inline]
    pub fn quantize(&self, value: f64, pred: f64) -> (Quantized, f64) {
        let diff = value - pred;
        let m = (diff / (2.0 * self.eb)).round();
        if !m.is_finite() || m.abs() >= self.radius as f64 {
            return (Quantized::Outlier, value);
        }
        let m = m as i64;
        let recon = pred + (m as f64) * 2.0 * self.eb;
        // The decoder stores f32; make sure the rounded value still honors
        // the bound, otherwise escape.
        let recon_f32 = recon as f32;
        if (f64::from(recon_f32) - value).abs() > self.eb {
            return (Quantized::Outlier, value);
        }
        (
            Quantized::Code((m + self.radius) as u32),
            f64::from(recon_f32),
        )
    }

    /// Decoder side: reconstruct from a symbol (`1..2·radius`).
    #[inline]
    pub fn reconstruct(&self, symbol: u32, pred: f64) -> f64 {
        let m = i64::from(symbol) - self.radius;
        f64::from((pred + (m as f64) * 2.0 * self.eb) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_value_meets_bound() {
        let q = Quantizer::new(0.01, 1 << 10);
        let pred = 5.0;
        for value in [5.0, 5.004, 4.98, 5.5, 4.5] {
            let (decision, recon) = q.quantize(value, pred);
            match decision {
                Quantized::Code(sym) => {
                    assert!((recon - value).abs() <= 0.01 + 1e-12);
                    assert!((q.reconstruct(sym, pred) - recon).abs() < 1e-12);
                }
                Quantized::Outlier => panic!("{value} should be in range"),
            }
        }
    }

    #[test]
    fn far_value_is_outlier() {
        let q = Quantizer::new(1e-6, 4);
        let (decision, recon) = q.quantize(100.0, 0.0);
        assert_eq!(decision, Quantized::Outlier);
        assert_eq!(recon, 100.0);
    }

    #[test]
    fn code_zero_never_produced() {
        // Symbol 0 is the outlier escape; the smallest in-range code is 1.
        let q = Quantizer::new(0.5, 4);
        for value in [-3.4f64, -3.0, -2.0, 0.0, 2.0, 3.0] {
            if let (Quantized::Code(sym), _) = q.quantize(value, 0.0) {
                assert!((1..8).contains(&sym), "symbol {sym} for {value}");
            }
        }
    }

    #[test]
    fn encoder_decoder_symmetry() {
        let q = Quantizer::new(0.003, 1 << 12);
        let pred = -2.25;
        let value = -2.2501;
        if let (Quantized::Code(sym), recon_enc) = q.quantize(value, pred) {
            assert_eq!(q.reconstruct(sym, pred), recon_enc);
        } else {
            panic!("expected in-range");
        }
    }

    #[test]
    fn nan_becomes_outlier() {
        let q = Quantizer::new(0.01, 8);
        let (decision, _) = q.quantize(f64::NAN, 0.0);
        assert_eq!(decision, Quantized::Outlier);
    }

    #[test]
    fn f32_rounding_guard() {
        // Huge magnitude + tiny bound: f32 rounding would violate the bound,
        // so quantize must escape.
        let q = Quantizer::new(1e-7, 1 << 15);
        let value = 1e9f64 + 0.5;
        let (decision, _) = q.quantize(value, 1e9);
        assert_eq!(decision, Quantized::Outlier);
    }
}
