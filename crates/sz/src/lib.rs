//! # dpz-sz
//!
//! An SZ-style error-bounded lossy compressor — the prediction-based
//! baseline the DPZ paper compares against (SZ v2.0). Re-implemented from
//! the published algorithm:
//!
//! 1. **Lorenzo prediction** ([`lorenzo`]): each value is predicted from its
//!    already-reconstructed causal neighbors (1-D: previous value; 2-D:
//!    `N + W − NW`; 3-D: the 7-neighbor inclusion–exclusion stencil).
//! 2. **Linear-scaling quantization** ([`quantizer`]): the prediction
//!    residual is quantized to an integer code with bin width `2·eb`, which
//!    guarantees the absolute pointwise bound `|x − x̂| ≤ eb`. Residuals
//!    outside the code radius become verbatim outliers.
//! 3. **Entropy coding** ([`codec`]): quantization codes are Huffman-coded
//!    (reusing the canonical Huffman substrate from `dpz-deflate`) and the
//!    table/outliers are DEFLATE-compressed.
//!
//! The guarantee `|x − x̂| ≤ eb` holds for every element and is enforced by
//! property tests; prediction always uses *reconstructed* values so encoder
//! and decoder stay in lockstep.

#![warn(missing_docs)]

pub mod codec;
pub mod lorenzo;
pub mod quantizer;
pub mod regression;

use dpz_deflate::DeflateError;

/// Prediction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predictor {
    /// Lorenzo prediction everywhere (SZ 1.4's scheme).
    Lorenzo,
    /// SZ 2.0's hybrid: per 8³ block, choose between Lorenzo and a
    /// least-squares hyperplane fit by comparing estimated residuals.
    Auto,
}

/// Configuration for SZ compression.
#[derive(Debug, Clone, Copy)]
pub struct SzConfig {
    /// Absolute pointwise error bound (`> 0`).
    pub error_bound: f64,
    /// Quantization code radius; codes span `(-radius, radius)`. Larger
    /// radii catch more residuals at the cost of a bigger alphabet.
    pub quant_radius: u32,
    /// Prediction strategy.
    pub predictor: Predictor,
}

impl SzConfig {
    /// Error-bounded config with the default radius (2^15, SZ's default)
    /// and pure Lorenzo prediction.
    pub fn with_error_bound(error_bound: f64) -> SzConfig {
        assert!(error_bound > 0.0, "error bound must be positive");
        SzConfig {
            error_bound,
            quant_radius: 1 << 15,
            predictor: Predictor::Lorenzo,
        }
    }

    /// Switch the prediction strategy.
    pub fn with_predictor(mut self, predictor: Predictor) -> SzConfig {
        self.predictor = predictor;
        self
    }
}

/// Errors from SZ decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SzError {
    /// Malformed container.
    Corrupt(&'static str),
    /// Failure in the embedded DEFLATE payloads.
    Deflate(DeflateError),
}

impl std::fmt::Display for SzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzError::Corrupt(w) => write!(f, "corrupt SZ stream: {w}"),
            SzError::Deflate(e) => write!(f, "SZ payload: {e}"),
        }
    }
}

impl std::error::Error for SzError {}

impl From<DeflateError> for SzError {
    fn from(e: DeflateError) -> Self {
        SzError::Deflate(e)
    }
}

pub use codec::{compress, decompress};

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_2d(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| {
                let r = (i / cols) as f32;
                let c = (i % cols) as f32;
                (0.05 * r).sin() * (0.07 * c).cos() * 50.0
            })
            .collect()
    }

    #[test]
    fn error_bound_respected_2d() {
        let data = wave_2d(64, 64);
        for eb in [1e-1, 1e-2, 1e-3] {
            let cfg = SzConfig::with_error_bound(eb);
            let packed = compress(&data, &[64, 64], &cfg);
            let (out, dims) = decompress(&packed).unwrap();
            assert_eq!(dims, vec![64, 64]);
            for (a, b) in data.iter().zip(&out) {
                assert!(
                    (f64::from(*a) - f64::from(*b)).abs() <= eb * 1.0000001,
                    "bound {eb} violated: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data = wave_2d(128, 128);
        let cfg = SzConfig::with_error_bound(1e-2);
        let packed = compress(&data, &[128, 128], &cfg);
        let cr = (data.len() * 4) as f64 / packed.len() as f64;
        assert!(cr > 4.0, "smooth field should compress >4x, got {cr:.2}");
    }

    #[test]
    fn tighter_bound_costs_more_bits() {
        let data = wave_2d(96, 96);
        let loose = compress(&data, &[96, 96], &SzConfig::with_error_bound(1e-1)).len();
        let tight = compress(&data, &[96, 96], &SzConfig::with_error_bound(1e-4)).len();
        assert!(tight > loose, "tight {tight} should exceed loose {loose}");
    }

    #[test]
    #[should_panic(expected = "error bound must be positive")]
    fn rejects_nonpositive_bound() {
        SzConfig::with_error_bound(0.0);
    }
}
