//! Lorenzo predictors over 1-D/2-D/3-D grids.
//!
//! The Lorenzo predictor estimates a value from its already-visited causal
//! neighbors with alternating-sign inclusion–exclusion over the unit cube
//! corner at the current point. Out-of-range neighbors contribute 0, so the
//! very first element is predicted as 0 (SZ's convention).

/// Grid shape wrapper that dispatches the right stencil.
#[derive(Debug, Clone)]
pub struct Grid {
    dims: Vec<usize>,
}

impl Grid {
    /// Create a grid; 1, 2 or 3 dimensions are supported.
    pub fn new(dims: &[usize]) -> Grid {
        assert!(
            (1..=3).contains(&dims.len()),
            "Lorenzo prediction supports 1-3 dimensions, got {}",
            dims.len()
        );
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension");
        Grid {
            dims: dims.to_vec(),
        }
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the grid has no points (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensions, slowest-varying first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Predict the value at flat index `idx` from reconstructed values in
    /// `recon[..idx]` (values at and after `idx` are never read).
    #[inline]
    pub fn predict(&self, recon: &[f64], idx: usize) -> f64 {
        match self.dims.len() {
            1 => {
                if idx == 0 {
                    0.0
                } else {
                    recon[idx - 1]
                }
            }
            2 => {
                let cols = self.dims[1];
                let (r, c) = (idx / cols, idx % cols);
                let at = |rr: usize, cc: usize| recon[rr * cols + cc];
                match (r, c) {
                    (0, 0) => 0.0,
                    (0, _) => at(0, c - 1),
                    (_, 0) => at(r - 1, 0),
                    _ => at(r, c - 1) + at(r - 1, c) - at(r - 1, c - 1),
                }
            }
            _ => {
                let (d1, d2) = (self.dims[1], self.dims[2]);
                let plane = d1 * d2;
                let (i, rem) = (idx / plane, idx % plane);
                let (j, k) = (rem / d2, rem % d2);
                let at = |ii: usize, jj: usize, kk: usize| recon[(ii * d1 + jj) * d2 + kk];
                let gi = i > 0;
                let gj = j > 0;
                let gk = k > 0;
                let mut p = 0.0;
                // Inclusion–exclusion over the 7 causal corners.
                if gk {
                    p += at(i, j, k - 1);
                }
                if gj {
                    p += at(i, j - 1, k);
                }
                if gi {
                    p += at(i - 1, j, k);
                }
                if gj && gk {
                    p -= at(i, j - 1, k - 1);
                }
                if gi && gk {
                    p -= at(i - 1, j, k - 1);
                }
                if gi && gj {
                    p -= at(i - 1, j - 1, k);
                }
                if gi && gj && gk {
                    p += at(i - 1, j - 1, k - 1);
                }
                p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_element_predicted_zero() {
        for dims in [vec![5], vec![3, 3], vec![2, 2, 2]] {
            let g = Grid::new(&dims);
            assert_eq!(g.predict(&vec![9.0; g.len()], 0), 0.0);
        }
    }

    #[test]
    fn linear_1d_is_predicted_with_constant_residual() {
        // 1-D Lorenzo = previous value, so a linear ramp has residual = slope.
        let g = Grid::new(&[10]);
        let recon: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        for i in 1..10 {
            assert_eq!(recon[i] - g.predict(&recon, i), 2.0);
        }
    }

    #[test]
    fn bilinear_2d_exactly_predicted() {
        // f(r,c) = a + b r + c c' is reproduced exactly by N + W - NW.
        let (rows, cols) = (6, 7);
        let g = Grid::new(&[rows, cols]);
        let f = |r: usize, c: usize| 3.0 + 2.0 * r as f64 - 1.5 * c as f64;
        let recon: Vec<f64> = (0..rows * cols).map(|i| f(i / cols, i % cols)).collect();
        for r in 1..rows {
            for c in 1..cols {
                let idx = r * cols + c;
                assert!((g.predict(&recon, idx) - f(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trilinear_3d_exactly_predicted() {
        let (a, b, c) = (4usize, 5usize, 3usize);
        let g = Grid::new(&[a, b, c]);
        let f =
            |i: usize, j: usize, k: usize| 1.0 + 0.5 * i as f64 + 0.25 * j as f64 - 0.75 * k as f64;
        let recon: Vec<f64> = (0..a * b * c)
            .map(|idx| {
                let (i, rem) = (idx / (b * c), idx % (b * c));
                f(i, rem / c, rem % c)
            })
            .collect();
        for i in 1..a {
            for j in 1..b {
                for k in 1..c {
                    let idx = (i * b + j) * c + k;
                    assert!(
                        (g.predict(&recon, idx) - f(i, j, k)).abs() < 1e-12,
                        "at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_faces_fall_back_gracefully() {
        let g = Grid::new(&[3, 3, 3]);
        let recon = vec![1.0; 27];
        // Constant field: all predictions on interior and faces equal 1
        // (inclusion-exclusion of a constant is the constant), except origin.
        for idx in 1..27 {
            assert!((g.predict(&recon, idx) - 1.0).abs() < 1e-12, "idx {idx}");
        }
    }

    #[test]
    #[should_panic(expected = "supports 1-3 dimensions")]
    fn rejects_4d() {
        Grid::new(&[2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn rejects_zero_dim() {
        Grid::new(&[4, 0]);
    }
}
