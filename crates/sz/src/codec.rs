//! SZ container: predict → quantize → Huffman-code, with DEFLATE-packed
//! side channels (code-length table, outliers, and — in `Auto` predictor
//! mode — per-block selectors and regression coefficients).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "SZR1" | ndims u8 | dims u64×ndims | eb f64 | radius u32
//! | predictor u8
//! | [predictor == 1]: deflated selectors (u64 count, u64 len + bytes)
//!                     deflated coefficients (u64 count, u64 len + bytes)
//! | deflated code-length table (u64 len + bytes)
//! | Huffman bitstream (u64 len + bytes)   — one symbol per value
//! | deflated outliers (u64 count, u64 len + bytes) — f32 LE in scan order
//! ```
//!
//! `predictor == 0` quantizes in flat raster order with Lorenzo prediction;
//! `predictor == 1` (SZ 2.0's hybrid) walks 8^d blocks in raster order,
//! choosing per block between Lorenzo and a least-squares hyperplane.
//! Block raster order keeps every Lorenzo neighbor causal, so the two
//! predictors interleave safely.

use crate::lorenzo::Grid;
use crate::quantizer::{Quantized, Quantizer};
use crate::regression::{
    block_side, fit_plane, lorenzo_mae_estimate, plane_mae, PlaneFit, SELECTION_MARGIN,
};
use crate::{Predictor, SzConfig, SzError};
use dpz_deflate::bitio::{BitReader, BitWriter};
use dpz_deflate::huffman::{build_code_lengths, Decoder, Encoder};
use dpz_deflate::{compress_with_level, decompress_bounded, CompressionLevel};

const MAGIC: &[u8; 4] = b"SZR1";
/// Largest radius keeping symbols within the `u16` decoder alphabet.
const MAX_RADIUS: u32 = 1 << 15;

/// Outcome of the prediction pass.
struct Predicted {
    /// One quantizer symbol per value, in the coder's traversal order.
    symbols: Vec<u32>,
    /// Escaped values, in the same traversal order.
    outliers: Vec<f32>,
    /// Per-block predictor choice (Auto mode only): 1 = regression.
    selectors: Vec<u8>,
    /// Plane coefficients for regression blocks, 4 per selected block.
    coefficients: Vec<f32>,
}

/// Normalize dims to exactly three extents (leading 1s for lower dims).
fn extents3(dims: &[usize]) -> [usize; 3] {
    match dims.len() {
        1 => [1, 1, dims[0]],
        2 => [1, dims[0], dims[1]],
        _ => [dims[0], dims[1], dims[2]],
    }
}

/// Flat index for global coordinates under `extents3` layout.
#[inline]
fn flat(e: &[usize; 3], i: usize, j: usize, k: usize) -> usize {
    (i * e[1] + j) * e[2] + k
}

/// Flat Lorenzo pass over the whole array (predictor byte 0).
fn predict_lorenzo(data: &[f32], grid: &Grid, q: &Quantizer) -> Predicted {
    let n = data.len();
    let mut recon = vec![0.0f64; n];
    let mut symbols = Vec::with_capacity(n);
    let mut outliers = Vec::new();
    for idx in 0..n {
        let pred = grid.predict(&recon, idx);
        let (decision, r) = q.quantize(f64::from(data[idx]), pred);
        match decision {
            Quantized::Code(sym) => symbols.push(sym),
            Quantized::Outlier => {
                symbols.push(0);
                outliers.push(data[idx]);
            }
        }
        recon[idx] = r;
    }
    Predicted {
        symbols,
        outliers,
        selectors: Vec::new(),
        coefficients: Vec::new(),
    }
}

/// Hybrid block pass (predictor byte 1). The decoder must replay the exact
/// same traversal, so the iteration here is the format.
fn predict_blockwise(data: &[f32], dims: &[usize], grid: &Grid, q: &Quantizer) -> Predicted {
    let e = extents3(dims);
    let n = data.len();
    let mut recon = vec![0.0f64; n];
    let mut symbols = Vec::with_capacity(n);
    let mut outliers = Vec::new();
    let mut selectors = Vec::new();
    let mut coefficients = Vec::new();
    let side = block_side(dims.len());
    let mut block = Vec::with_capacity(side * side.min(e[1]) * side.min(e[0]));

    for bi in (0..e[0]).step_by(side) {
        for bj in (0..e[1]).step_by(side) {
            for bk in (0..e[2]).step_by(side) {
                let li = side.min(e[0] - bi);
                let lj = side.min(e[1] - bj);
                let lk = side.min(e[2] - bk);
                // Gather the original block values.
                block.clear();
                for i in 0..li {
                    for j in 0..lj {
                        for k in 0..lk {
                            block.push(f64::from(data[flat(&e, bi + i, bj + j, bk + k)]));
                        }
                    }
                }
                // Predictor selection on original data (SZ 2.0 rule).
                let fit = fit_plane(&block, li, lj, lk);
                let use_regression = plane_mae(&block, li, lj, lk, &fit)
                    < SELECTION_MARGIN * lorenzo_mae_estimate(&block, li, lj, lk);
                selectors.push(u8::from(use_regression));
                if use_regression {
                    coefficients.extend_from_slice(&[fit.b0, fit.b1, fit.b2, fit.b3]);
                }
                // Quantize the block in local raster order.
                for i in 0..li {
                    for j in 0..lj {
                        for k in 0..lk {
                            let idx = flat(&e, bi + i, bj + j, bk + k);
                            let pred = if use_regression {
                                fit.predict(i, j, k)
                            } else {
                                grid.predict(&recon, idx)
                            };
                            let (decision, r) = q.quantize(f64::from(data[idx]), pred);
                            match decision {
                                Quantized::Code(sym) => symbols.push(sym),
                                Quantized::Outlier => {
                                    symbols.push(0);
                                    outliers.push(data[idx]);
                                }
                            }
                            recon[idx] = r;
                        }
                    }
                }
            }
        }
    }
    Predicted {
        symbols,
        outliers,
        selectors,
        coefficients,
    }
}

/// Compress `data` with shape `dims` under `cfg`.
///
/// Guarantees `|data[i] − decompress(...)[i]| ≤ cfg.error_bound` for every
/// element, with either predictor.
pub fn compress(data: &[f32], dims: &[usize], cfg: &SzConfig) -> Vec<u8> {
    let _span = dpz_telemetry::span!("sz.compress");
    let grid = Grid::new(dims);
    assert_eq!(grid.len(), data.len(), "dims do not match data length");
    assert!(
        cfg.quant_radius <= MAX_RADIUS,
        "radius too large for u16 alphabet"
    );
    let q = Quantizer::new(cfg.error_bound, cfg.quant_radius);

    let predicted = match cfg.predictor {
        Predictor::Lorenzo => predict_lorenzo(data, &grid, &q),
        Predictor::Auto => predict_blockwise(data, dims, &grid, &q),
    };

    // Entropy-code the symbol stream.
    let alphabet = q.alphabet_size();
    let mut freqs = vec![0u64; alphabet];
    for &s in &predicted.symbols {
        freqs[s as usize] += 1;
    }
    // 24-bit depth limit: unlike DEFLATE's 15-bit format constraint, the SZ
    // symbol stream is free-form, and the 2·radius = 65536-symbol alphabet
    // cannot even fit in 15 bits when more than 2^15 symbols occur.
    let lengths = build_code_lengths(&freqs, 24);
    let encoder = Encoder::from_lengths(&lengths);
    let mut bits = BitWriter::new();
    for &s in &predicted.symbols {
        encoder.write(&mut bits, s as usize);
    }
    let bitstream = bits.finish();

    let packed_lengths = compress_with_level(&lengths, CompressionLevel::Default);
    let outlier_bytes: Vec<u8> = predicted
        .outliers
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    let packed_outliers = compress_with_level(&outlier_bytes, CompressionLevel::Default);

    // Assemble the container.
    let mut out = Vec::with_capacity(bitstream.len() + packed_lengths.len() + 64);
    out.extend_from_slice(MAGIC);
    out.push(dims.len() as u8);
    for &d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(&cfg.error_bound.to_le_bytes());
    out.extend_from_slice(&cfg.quant_radius.to_le_bytes());
    out.push(match cfg.predictor {
        Predictor::Lorenzo => 0,
        Predictor::Auto => 1,
    });
    if cfg.predictor == Predictor::Auto {
        let packed_sel = compress_with_level(&predicted.selectors, CompressionLevel::Default);
        out.extend_from_slice(&(predicted.selectors.len() as u64).to_le_bytes());
        out.extend_from_slice(&(packed_sel.len() as u64).to_le_bytes());
        out.extend_from_slice(&packed_sel);
        let coef_bytes: Vec<u8> = predicted
            .coefficients
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let packed_coef = compress_with_level(&coef_bytes, CompressionLevel::Default);
        out.extend_from_slice(&(predicted.coefficients.len() as u64).to_le_bytes());
        out.extend_from_slice(&(packed_coef.len() as u64).to_le_bytes());
        out.extend_from_slice(&packed_coef);
    }
    out.extend_from_slice(&(packed_lengths.len() as u64).to_le_bytes());
    out.extend_from_slice(&packed_lengths);
    out.extend_from_slice(&(bitstream.len() as u64).to_le_bytes());
    out.extend_from_slice(&bitstream);
    out.extend_from_slice(&(predicted.outliers.len() as u64).to_le_bytes());
    out.extend_from_slice(&(packed_outliers.len() as u64).to_le_bytes());
    out.extend_from_slice(&packed_outliers);

    let reg = dpz_telemetry::global();
    let labels = [("codec", "sz"), ("op", "compress")];
    reg.counter_with("dpz_bytes_in_total", &labels)
        .add(data.len() as u64 * 4);
    reg.counter_with("dpz_bytes_out_total", &labels)
        .add(out.len() as u64);
    reg.counter_with("dpz_outliers_total", &[("codec", "sz")])
        .add(predicted.outliers.len() as u64);
    out
}

/// Cursor helpers for the flat container format.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SzError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SzError::Corrupt("truncated stream"))?;
        if end > self.buf.len() {
            return Err(SzError::Corrupt("truncated stream"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SzError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SzError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SzError> {
        let b = self.take(8)?;
        let v = u64::from_le_bytes(b.try_into().unwrap());
        // Reject sizes beyond the address space up front so later `as usize`
        // casts can never truncate.
        if usize::try_from(v).is_err() {
            return Err(SzError::Corrupt("size overflows usize"));
        }
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64, SzError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().unwrap()))
    }
}

/// Shared decode state: pulls the next symbol and resolves it to a value.
struct SymbolReader<'a> {
    decoder: Decoder,
    bits: BitReader<'a>,
    outliers: std::vec::IntoIter<f32>,
    q: Quantizer,
}

impl SymbolReader<'_> {
    /// Decode the next value given its prediction.
    fn next_value(&mut self, pred: f64) -> Result<f64, SzError> {
        let sym = self.decoder.read(&mut self.bits)? as u32;
        if sym == 0 {
            let v = self
                .outliers
                .next()
                .ok_or(SzError::Corrupt("missing outlier value"))?;
            Ok(f64::from(v))
        } else {
            Ok(self.q.reconstruct(sym, pred))
        }
    }
}

/// Decompress an SZ stream, returning the values and their dimensions.
pub fn decompress(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>), SzError> {
    let _span = dpz_telemetry::span!("sz.decompress");
    let result = decompress_inner(bytes);
    if result.is_err() {
        dpz_telemetry::global()
            .counter_with("dpz_decode_rejects_total", &[("codec", "sz")])
            .inc();
    }
    result
}

fn decompress_inner(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>), SzError> {
    let mut cur = Cursor { buf: bytes, pos: 0 };
    if cur.take(4)? != MAGIC {
        return Err(SzError::Corrupt("bad magic"));
    }
    let ndims = cur.u8()? as usize;
    if !(1..=3).contains(&ndims) {
        return Err(SzError::Corrupt("unsupported dimensionality"));
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        dims.push(cur.u64()? as usize);
    }
    // Validate the shape before it reaches `Grid::new` (which asserts) or
    // sizes any allocation: non-zero extents, checked product, and a
    // plausibility cap — every value costs at least one Huffman bit, so `n`
    // can never exceed 8× the container length. A header declaring more is
    // corrupt, and rejecting it here bounds every later allocation.
    if dims.contains(&0) {
        return Err(SzError::Corrupt("zero dimension"));
    }
    let n = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(SzError::Corrupt("dims overflow"))?;
    if n > bytes.len().saturating_mul(8) {
        return Err(SzError::Corrupt("implausible value count"));
    }
    let eb = cur.f64()?;
    // `!(eb > 0.0)` rather than `eb <= 0.0`: NaN must also be rejected.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(eb > 0.0) || !eb.is_finite() {
        return Err(SzError::Corrupt("invalid error bound"));
    }
    let radius = cur.u32()?;
    if !(2..=MAX_RADIUS).contains(&radius) {
        return Err(SzError::Corrupt("invalid radius"));
    }
    let predictor = match cur.u8()? {
        0 => Predictor::Lorenzo,
        1 => Predictor::Auto,
        _ => return Err(SzError::Corrupt("unknown predictor")),
    };
    let (selectors, coefficients) = if predictor == Predictor::Auto {
        let n_sel = cur.u64()? as usize;
        // One selector per block, at least one value per block.
        if n_sel > n {
            return Err(SzError::Corrupt("implausible selector count"));
        }
        let len_sel = cur.u64()? as usize;
        let selectors = decompress_bounded(cur.take(len_sel)?, n_sel)?;
        if selectors.len() != n_sel {
            return Err(SzError::Corrupt("selector count mismatch"));
        }
        let n_coef = cur.u64()? as usize;
        // Four plane coefficients per regression block, at most.
        if n_coef > n_sel.saturating_mul(4) {
            return Err(SzError::Corrupt("implausible coefficient count"));
        }
        let expected_coef = n_coef
            .checked_mul(4)
            .ok_or(SzError::Corrupt("coefficient size overflow"))?;
        let len_coef = cur.u64()? as usize;
        let coef_bytes = decompress_bounded(cur.take(len_coef)?, expected_coef)?;
        if coef_bytes.len() != expected_coef {
            return Err(SzError::Corrupt("coefficient payload mismatch"));
        }
        let coefficients: Vec<f32> = coef_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        (selectors, coefficients)
    } else {
        (Vec::new(), Vec::new())
    };

    let len_lengths = cur.u64()? as usize;
    let lengths = decompress_bounded(cur.take(len_lengths)?, 2 * radius as usize)?;
    if lengths.len() != 2 * radius as usize {
        return Err(SzError::Corrupt("code-length table size mismatch"));
    }
    let len_bits = cur.u64()? as usize;
    let bitstream = cur.take(len_bits)?;
    let n_outliers = cur.u64()? as usize;
    // Outliers are escaped values, so there can never be more than `n`.
    if n_outliers > n {
        return Err(SzError::Corrupt("implausible outlier count"));
    }
    let expected_outliers = n_outliers
        .checked_mul(4)
        .ok_or(SzError::Corrupt("outlier size overflow"))?;
    let len_outliers = cur.u64()? as usize;
    let outlier_bytes = decompress_bounded(cur.take(len_outliers)?, expected_outliers)?;
    if outlier_bytes.len() != expected_outliers {
        return Err(SzError::Corrupt("outlier payload size mismatch"));
    }
    let outliers: Vec<f32> = outlier_bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();

    let grid = Grid::new(&dims);
    let mut reader = SymbolReader {
        decoder: Decoder::from_lengths(&lengths)?,
        bits: BitReader::new(bitstream),
        outliers: outliers.into_iter(),
        q: Quantizer::new(eb, radius),
    };

    let mut recon = vec![0.0f64; n];
    match predictor {
        Predictor::Lorenzo => {
            for idx in 0..n {
                let pred = grid.predict(&recon, idx);
                recon[idx] = reader.next_value(pred)?;
            }
        }
        Predictor::Auto => {
            let e = extents3(&dims);
            let side = block_side(dims.len());
            let mut sel_iter = selectors.iter();
            let mut coef_iter = coefficients.chunks_exact(4);
            for bi in (0..e[0]).step_by(side) {
                for bj in (0..e[1]).step_by(side) {
                    for bk in (0..e[2]).step_by(side) {
                        let li = side.min(e[0] - bi);
                        let lj = side.min(e[1] - bj);
                        let lk = side.min(e[2] - bk);
                        let use_regression = *sel_iter
                            .next()
                            .ok_or(SzError::Corrupt("missing block selector"))?
                            != 0;
                        let fit = if use_regression {
                            let c = coef_iter
                                .next()
                                .ok_or(SzError::Corrupt("missing coefficients"))?;
                            Some(PlaneFit {
                                b0: c[0],
                                b1: c[1],
                                b2: c[2],
                                b3: c[3],
                            })
                        } else {
                            None
                        };
                        for i in 0..li {
                            for j in 0..lj {
                                for k in 0..lk {
                                    let idx = flat(&e, bi + i, bj + j, bk + k);
                                    let pred = match &fit {
                                        Some(f) => f.predict(i, j, k),
                                        None => grid.predict(&recon, idx),
                                    };
                                    recon[idx] = reader.next_value(pred)?;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let out: Vec<f32> = recon.iter().map(|&v| v as f32).collect();
    let reg = dpz_telemetry::global();
    let labels = [("codec", "sz"), ("op", "decompress")];
    reg.counter_with("dpz_bytes_in_total", &labels)
        .add(bytes.len() as u64);
    reg.counter_with("dpz_bytes_out_total", &labels)
        .add(out.len() as u64 * 4);
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bound_with(
        data: &[f32],
        dims: &[usize],
        eb: f64,
        predictor: Predictor,
    ) -> (usize, usize) {
        let cfg = SzConfig {
            error_bound: eb,
            quant_radius: 1 << 15,
            predictor,
        };
        let packed = compress(data, dims, &cfg);
        let (out, got_dims) = decompress(&packed).unwrap();
        assert_eq!(got_dims, dims);
        assert_eq!(out.len(), data.len());
        for (i, (a, b)) in data.iter().zip(&out).enumerate() {
            let err = (f64::from(*a) - f64::from(*b)).abs();
            assert!(err <= eb * (1.0 + 1e-9), "idx {i}: err {err} > eb {eb}");
        }
        (data.len() * 4, packed.len())
    }

    fn check_bound(data: &[f32], dims: &[usize], eb: f64) -> (usize, usize) {
        check_bound_with(data, dims, eb, Predictor::Lorenzo)
    }

    #[test]
    fn bound_held_1d() {
        let data: Vec<f32> = (0..10_000)
            .map(|i| (i as f32 * 0.001).sin() * 10.0)
            .collect();
        check_bound(&data, &[10_000], 1e-3);
    }

    #[test]
    fn bound_held_3d() {
        let n = 16;
        let data: Vec<f32> = (0..n * n * n)
            .map(|i| {
                let x = (i / (n * n)) as f32;
                let y = ((i / n) % n) as f32;
                let z = (i % n) as f32;
                (0.3 * x).sin() + (0.2 * y).cos() + 0.1 * z
            })
            .collect();
        check_bound(&data, &[n, n, n], 1e-4);
    }

    #[test]
    fn bound_held_with_auto_predictor_all_dims() {
        for (dims, len) in [
            (vec![5000usize], 5000),
            (vec![50, 60], 3000),
            (vec![12, 13, 14], 2184),
        ] {
            let data: Vec<f32> = (0..len)
                .map(|i| (i as f32 * 0.01).sin() * 5.0 + i as f32 * 0.002)
                .collect();
            check_bound_with(&data, &dims, 1e-3, Predictor::Auto);
        }
    }

    #[test]
    fn regression_wins_on_tilted_planes() {
        // A steep linear ramp in 2-D: the hyperplane predictor nails it, so
        // Auto must not be (much) larger than Lorenzo and the residual
        // symbols should collapse to a single code.
        let (rows, cols) = (64, 64);
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i / cols) as f32) * 3.0 + ((i % cols) as f32) * 7.0)
            .collect();
        let (_, auto_size) = check_bound_with(&data, &[rows, cols], 1e-3, Predictor::Auto);
        let (_, lorenzo_size) = check_bound(&data, &[rows, cols], 1e-3);
        assert!(
            auto_size <= lorenzo_size + 256,
            "auto {auto_size} should not exceed lorenzo {lorenzo_size} on a plane"
        );
    }

    #[test]
    fn compresses_smooth_3d() {
        let n = 24;
        let data: Vec<f32> = (0..n * n * n)
            .map(|i| ((i % 97) as f32 * 0.01).sin())
            .collect();
        let (orig, packed) = check_bound(&data, &[n, n, n], 1e-2);
        assert!(packed < orig, "no reduction: {orig} -> {packed}");
    }

    #[test]
    fn handles_constant_field() {
        let data = vec![3.25f32; 4096];
        let (_, packed) = check_bound(&data, &[64, 64], 1e-5);
        assert!(packed < 2048, "constant field should be tiny, got {packed}");
    }

    #[test]
    fn handles_extreme_values_as_outliers() {
        let mut data = vec![0.0f32; 1000];
        data[500] = 3.0e38; // near f32 max: forces outlier path
        data[501] = -3.0e38;
        check_bound(&data, &[1000], 1e-6);
        check_bound_with(&data, &[1000], 1e-6, Predictor::Auto);
    }

    #[test]
    fn dense_alphabet_regression() {
        // A random walk with steps spanning the full quantizer range makes
        // more than 2^15 distinct codes appear — the case that overflows a
        // 15-bit Huffman depth limit (regression for the Kraft panic).
        let eb = 1e-6;
        let mut s = 0xBEEFu64;
        let mut x = 0.0f64;
        let data: Vec<f32> = (0..300_000)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let u = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                x += u * 2.0 * eb * 60_000.0;
                x as f32
            })
            .collect();
        check_bound(&data, &[300_000], eb);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decompress(b"not an sz stream at all").is_err());
        assert!(decompress(b"SZ").is_err());
    }

    #[test]
    fn rejects_truncation() {
        let data: Vec<f32> = (0..500).map(|i| i as f32).collect();
        let packed = compress(&data, &[500], &SzConfig::with_error_bound(1e-3));
        for cut in [4, 10, packed.len() / 2] {
            assert!(decompress(&packed[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rejects_truncation_auto_mode() {
        let data: Vec<f32> = (0..900).map(|i| (i as f32 * 0.1).cos()).collect();
        let cfg = SzConfig::with_error_bound(1e-3).with_predictor(Predictor::Auto);
        let packed = compress(&data, &[30, 30], &cfg);
        for cut in [5, 40, packed.len() / 2] {
            assert!(decompress(&packed[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    #[should_panic(expected = "dims do not match")]
    fn shape_mismatch_panics() {
        compress(&[1.0, 2.0], &[3], &SzConfig::with_error_bound(0.1));
    }
}
