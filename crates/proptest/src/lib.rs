//! A vendored, std-only stand-in for the subset of [proptest]'s API this
//! workspace uses. The build environment has no access to crates.io, so the
//! real proptest cannot be fetched; this shim keeps the same test source
//! (`proptest!`, strategies built from ranges/tuples/`collection::vec`,
//! `any::<T>()`, `prop_map`, `prop_oneof!`, `prop_assert*!`) and runs each
//! property as a deterministic multi-case loop.
//!
//! Differences from the real crate, by design: no shrinking (a failing case
//! panics with its assertion message), and generation is plain uniform
//! sampling from a per-test seeded xorshift generator, so failures are
//! reproducible run to run.
//!
//! [proptest]: https://docs.rs/proptest

pub mod rng {
    //! Deterministic pseudo-random source for case generation.

    /// xorshift64* generator seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one `(test, case)` pair — deterministic across runs.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            // splitmix64 finalizer so nearby cases diverge.
            h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            TestRng {
                state: (h ^ (h >> 31)) | 1,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::rng::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Build from the macro's boxed arms.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty integer range strategy");
                    let span = (hi - lo) as u128;
                    let draw = if span > u128::from(u64::MAX) {
                        (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64()))
                            % span
                    } else {
                        u128::from(rng.below(span as u64))
                    };
                    (lo + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    let v = self.start as f64
                        + rng.unit_f64() * (self.end as f64 - self.start as f64);
                    // Clamp away from the exclusive upper bound.
                    let v = v as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+ ))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Full-range generation for primitive types (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generate any value of `T` (primitives only in this shim).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! `proptest::collection::vec` — vectors with strategy-driven lengths.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Length specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vector of `size` values drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod config {
    //! Per-test runner configuration.

    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Everything test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests: an optional `#![proptest_config(..)]` followed by
/// `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            (<$crate::config::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::config::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::rng::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property (no shrinking in this shim — plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::Union::new(arms)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::rng::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-5i32..-1), &mut rng);
            assert!((-5..-1).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let u = Strategy::generate(&(3usize..4), &mut rng);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_case("vec", 1);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0u8..10, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
        let exact = Strategy::generate(&crate::collection::vec(0u8..2, 4), &mut rng);
        assert_eq!(exact.len(), 4);
    }

    #[test]
    fn determinism_per_case() {
        let mut a = TestRng::for_case("same", 7);
        let mut b = TestRng::for_case("same", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("same", 8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(
            n in 1usize..50,
            pair in (0u8..4, -1.0f64..1.0),
            pick in prop_oneof![(0u32..1).prop_map(|_| 1u32), (0u32..1).prop_map(|_| 2u32)],
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!(pair.0 < 4);
            prop_assert!((-1.0..1.0).contains(&pair.1));
            prop_assert_eq!(pick == 1 || pick == 2, true);
        }
    }
}
