//! Behavioral tests for the persistent pool: nesting, panic propagation,
//! ordering, and reuse. Integration tests compile the shim without
//! `cfg(test)`, so the pool here has its production sizing policy; the
//! builder pins it to 4 workers so the assertions are host-independent.

use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pin the shared global pool to 4 workers (idempotent across tests in this
/// binary; `build_global` is Ok when the pool already has the same size).
fn pool4() {
    rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build_global()
        .expect("pool size agreed across tests");
}

#[test]
fn nested_par_calls_do_not_deadlock() {
    pool4();
    let total = AtomicUsize::new(0);
    let outer: Vec<usize> = (0..16).collect();
    outer.par_iter().for_each(|&i| {
        // A worker blocking on this inner scope must help run queued tasks,
        // otherwise 16 outer tasks on 4 workers deadlock.
        let inner: Vec<usize> = (0..8).collect();
        inner.par_iter().for_each(|&j| {
            total.fetch_add(i * 100 + j, Ordering::Relaxed);
        });
    });
    let expect: usize = (0..16).flat_map(|i| (0..8).map(move |j| i * 100 + j)).sum();
    assert_eq!(total.load(Ordering::Relaxed), expect);
}

#[test]
fn doubly_nested_collect_preserves_order() {
    pool4();
    let data: Vec<usize> = (0..64).collect();
    let result: Vec<Vec<usize>> = data
        .par_iter()
        .map(|&i| {
            let row: Vec<usize> = (0..8).collect();
            row.par_iter().map(|&j| i * 10 + j).collect()
        })
        .collect();
    for (i, row) in result.iter().enumerate() {
        let expect: Vec<usize> = (0..8).map(|j| i * 10 + j).collect();
        assert_eq!(row, &expect);
    }
}

#[test]
fn panic_propagates_and_pool_survives() {
    pool4();
    let items: Vec<usize> = (0..32).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        items.par_iter().for_each(|&i| {
            if i == 17 {
                panic!("task 17 exploded");
            }
        });
    }));
    let payload = result.expect_err("panic must reach the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("non-str payload");
    assert!(msg.contains("exploded"), "unexpected payload: {msg}");

    // The pool must stay fully usable after a task panic.
    for _ in 0..4 {
        let v: Vec<usize> = (0..100).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}

#[test]
fn enumerate_matches_input_positions() {
    pool4();
    let mut data = vec![0usize; 177];
    data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
        for v in chunk.iter_mut() {
            *v = i;
        }
    });
    for (pos, v) in data.iter().enumerate() {
        assert_eq!(*v, pos / 10);
    }
}

#[test]
fn reported_thread_count_is_pool_size() {
    pool4();
    assert_eq!(rayon::current_num_threads(), 4);
    let stats = rayon::pool_stats();
    assert_eq!(stats.threads, 4);
}

#[test]
fn stats_grow_with_work() {
    pool4();
    let before = rayon::pool_stats().tasks_executed;
    let v: Vec<usize> = (0..1000).collect();
    let s: usize = v.par_iter().map(|&x| x).collect::<Vec<_>>().iter().sum();
    assert_eq!(s, 499_500);
    assert!(rayon::pool_stats().tasks_executed > before);
}
