//! `DPZ_THREADS=1` must force a fully sequential, deterministic pool.
//!
//! This lives in its own integration-test binary (fresh process) with a
//! single test, so the env var is set before anything touches the global
//! pool and no other test races the initialization.

use rayon::prelude::*;
use std::sync::Mutex;

#[test]
fn dpz_threads_1_is_sequential_and_deterministic() {
    std::env::set_var("DPZ_THREADS", "1");
    assert_eq!(rayon::current_num_threads(), 1);
    assert_eq!(rayon::pool_stats().threads, 1);

    // Everything runs inline on the calling thread, in submission order.
    let caller = std::thread::current().id();
    let order = Mutex::new(Vec::new());
    let items: Vec<usize> = (0..50).collect();
    items.par_iter().for_each(|&i| {
        assert_eq!(std::thread::current().id(), caller);
        order.lock().unwrap().push(i);
    });
    assert_eq!(*order.lock().unwrap(), (0..50).collect::<Vec<_>>());

    // collect keeps input order, trivially.
    let sq: Vec<usize> = items.par_iter().map(|&x| x * x).collect();
    assert_eq!(sq, (0..50).map(|x| x * x).collect::<Vec<_>>());

    // The builder cannot resize an initialized pool.
    let err = rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build_global()
        .expect_err("resize after init must fail");
    assert!(err.to_string().contains("already initialized"));
}
