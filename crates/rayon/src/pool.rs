//! Persistent work-stealing thread pool backing the `par_*` adapters.
//!
//! The pool is created lazily on first use and lives for the rest of the
//! process. Each worker owns a deque (a "chandelier" of per-worker queues):
//! tasks are pushed round-robin, a worker pops its own queue from the front
//! and, when that runs dry, steals from the *back* of a sibling's queue so
//! contiguous work stays with its owner. Implemented std-only — `Mutex`ed
//! `VecDeque`s rather than lock-free Chase–Lev deques — because the tasks the
//! shim schedules are coarse (one per worker strip), so queue-lock cost is
//! noise next to task cost.
//!
//! Sizing: `ThreadPoolBuilder::num_threads` (rayon-compatible) wins, then the
//! `DPZ_THREADS` environment variable, then `available_parallelism`. A
//! one-thread pool spawns no workers at all: every `par_*` call degenerates to
//! deterministic, sequential, in-place execution on the caller's thread.
//!
//! Blocking semantics: a thread that submits a scope of tasks *helps* — while
//! waiting for its scope to finish it pops and runs pool tasks, so nested
//! `par_*` calls from inside a worker cannot deadlock. Panics inside a task
//! are caught, carried to the scope owner and re-thrown there; the worker
//! thread survives and the pool stays usable.
//!
//! The pool publishes `dpz_pool_threads`, `dpz_pool_tasks_total` and
//! `dpz_pool_steals_total` to the global `dpz_telemetry` registry so the
//! fig8/fig9 harnesses can attribute throughput to pool activity.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A unit of work queued on the pool.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle worker sleeps before re-scanning the queues. Producers
/// notify on every push, so this is only a lost-wakeup backstop.
const IDLE_PARK: Duration = Duration::from_millis(50);

/// Counters and size of the global pool, for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool runs (1 means fully sequential).
    pub threads: usize,
    /// Tasks executed since pool creation.
    pub tasks_executed: u64,
    /// Tasks taken from a sibling worker's queue.
    pub steals: u64,
}

/// State shared between workers, producers and helping waiters.
struct Shared {
    /// One deque per worker; producers push round-robin.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Pushed-but-not-yet-taken task count (sleep heuristic only).
    pending: AtomicUsize,
    /// Paired with `wake`: guards the sleep decision against lost wakeups.
    sleep: Mutex<()>,
    wake: Condvar,
    /// Round-robin cursor for queue selection.
    next: AtomicUsize,
    tasks_total: AtomicU64,
    steals_total: AtomicU64,
}

impl Shared {
    /// Pop a task for worker `id`: own queue first (front), then steal from
    /// siblings (back).
    fn take(&self, id: usize) -> Option<Task> {
        if let Some(t) = self.queues[id].lock().expect("queue lock").pop_front() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(t);
        }
        let k = self.queues.len();
        for off in 1..k {
            let q = (id + off) % k;
            if let Some(t) = self.queues[q].lock().expect("queue lock").pop_back() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                self.steals_total.fetch_add(1, Ordering::Relaxed);
                telemetry().steals.inc();
                dpz_telemetry::trace::instant_with("pool.steal", &[("victim", q as f64)]);
                return Some(t);
            }
        }
        None
    }

    /// Pop any available task (used by helping waiters, which have no home
    /// queue). Front pops so helpers drain in submission order.
    fn take_any(&self) -> Option<Task> {
        for q in &self.queues {
            if let Some(t) = q.lock().expect("queue lock").pop_front() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(t);
            }
        }
        None
    }

    fn run(&self, task: Task) {
        self.tasks_total.fetch_add(1, Ordering::Relaxed);
        telemetry().tasks.inc();
        if dpz_telemetry::trace::journal_enabled() {
            let t0 = std::time::Instant::now();
            task();
            dpz_telemetry::trace::complete("pool.task", t0.elapsed().as_nanos() as u64, &[]);
        } else {
            task();
        }
    }
}

/// Telemetry handles, resolved once so the hot path only bumps atomics.
struct PoolTelemetry {
    tasks: Arc<dpz_telemetry::Counter>,
    steals: Arc<dpz_telemetry::Counter>,
}

fn telemetry() -> &'static PoolTelemetry {
    static T: OnceLock<PoolTelemetry> = OnceLock::new();
    T.get_or_init(|| {
        let reg = dpz_telemetry::global();
        PoolTelemetry {
            tasks: reg.counter("dpz_pool_tasks_total"),
            steals: reg.counter("dpz_pool_steals_total"),
        }
    })
}

/// The persistent pool. One global instance; tests may build private ones.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
}

impl ThreadPool {
    /// Build a pool with `threads` workers. `threads <= 1` spawns no OS
    /// threads: all work runs inline on the submitting thread.
    pub(crate) fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            next: AtomicUsize::new(0),
            tasks_total: AtomicU64::new(0),
            steals_total: AtomicU64::new(0),
        });
        if threads > 1 {
            for id in 0..threads {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dpz-rayon-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawn pool worker");
            }
        }
        ThreadPool { shared, threads }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execution counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads,
            tasks_executed: self.shared.tasks_total.load(Ordering::Relaxed),
            steals: self.shared.steals_total.load(Ordering::Relaxed),
        }
    }

    /// Queue a ready task and wake a sleeper.
    fn push(&self, task: Task) {
        let k = self.shared.queues.len();
        let q = self.shared.next.fetch_add(1, Ordering::Relaxed) % k;
        self.shared.queues[q]
            .lock()
            .expect("queue lock")
            .push_back(task);
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        // Take the sleep lock so a worker between its "pending == 0" check
        // and its wait cannot miss this notification.
        let _g = self.shared.sleep.lock().expect("sleep lock");
        self.shared.wake.notify_all();
    }

    /// Run `tasks`, which may borrow from the caller's stack, to completion.
    /// The caller blocks — helping execute queued work in the meantime — so
    /// every borrow outlives every task. Panics from tasks are re-thrown
    /// here once all tasks have settled.
    pub(crate) fn scope<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        if self.threads <= 1 {
            // Sequential pool: run in submission order on this thread.
            for t in tasks {
                t();
            }
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        for t in tasks {
            // SAFETY: `scope` does not return until `latch` reports every
            // task finished (wait below), so the `'scope` borrows captured
            // by `t` are live for the task's whole execution.
            let t: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(t) };
            let latch = Arc::clone(&latch);
            self.push(Box::new(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(t)) {
                    latch.record_panic(payload);
                }
                latch.complete_one();
            }));
        }
        // Help: run pool tasks (ours or anyone's) while the scope drains.
        while !latch.is_done() {
            match self.shared.take_any() {
                Some(task) => self.shared.run(task),
                None => latch.wait_brief(),
            }
        }
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    loop {
        match shared.take(id) {
            Some(task) => shared.run(task),
            None => {
                let idle_from =
                    dpz_telemetry::trace::journal_enabled().then(std::time::Instant::now);
                let guard = shared.sleep.lock().expect("sleep lock");
                if shared.pending.load(Ordering::Acquire) == 0 {
                    let _ = shared
                        .wake
                        .wait_timeout(guard, IDLE_PARK)
                        .expect("sleep wait");
                    // Idle windows render as their own spans in the worker's
                    // timeline lane, so utilization gaps are visible.
                    if let Some(t0) = idle_from {
                        dpz_telemetry::trace::complete(
                            "pool.idle",
                            t0.elapsed().as_nanos() as u64,
                            &[],
                        );
                    }
                }
            }
        }
    }
}

/// Completion latch for one scope: counts tasks down and carries the first
/// panic payload back to the scope owner.
struct Latch {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: AtomicUsize::new(count),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().expect("panic lock");
        // First panic wins, like rayon.
        slot.get_or_insert(payload);
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().expect("panic lock").take()
    }

    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self.done.lock().expect("done lock");
            *done = true;
            self.cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Sleep until completion or a short timeout (helper re-scans queues
    /// afterwards, so the timeout only bounds idle latency).
    fn wait_brief(&self) {
        let done = self.done.lock().expect("done lock");
        if !*done {
            let _ = self
                .cv
                .wait_timeout(done, Duration::from_millis(1))
                .expect("latch wait");
        }
    }
}

/// `num_threads` override installed by [`ThreadPoolBuilder::build_global`]
/// before the pool exists.
static REQUESTED: Mutex<Option<usize>> = Mutex::new(None);
static POOL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool, created on first use.
pub(crate) fn global_pool() -> &'static ThreadPool {
    POOL.get_or_init(|| {
        let threads = resolve_threads();
        let pool = ThreadPool::new(threads);
        dpz_telemetry::global()
            .gauge("dpz_pool_threads")
            .set(threads as f64);
        pool
    })
}

/// Worker-count policy: builder override, then `DPZ_THREADS`, then hardware.
fn resolve_threads() -> usize {
    if let Some(n) = *REQUESTED.lock().expect("requested lock") {
        return n.max(1);
    }
    if let Some(n) = env_threads(std::env::var("DPZ_THREADS").ok().as_deref()) {
        return n;
    }
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Only this crate's own unit tests keep the historical >= 2 floor, so
    // concurrency is still exercised on single-core CI machines; everyone
    // else gets the true hardware width.
    #[cfg(test)]
    {
        hw.max(2)
    }
    #[cfg(not(test))]
    {
        hw
    }
}

/// Parse a `DPZ_THREADS` value: positive integers only.
pub(crate) fn env_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Number of workers in the global pool (its true size — a one-core machine
/// without overrides reports 1, not the former floor of 2).
pub fn current_num_threads() -> usize {
    global_pool().threads()
}

/// Counters of the global pool.
pub fn pool_stats() -> PoolStats {
    global_pool().stats()
}

/// Error from [`ThreadPoolBuilder::build_global`]: the pool was already
/// running with a different size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPoolBuildError {
    current: usize,
    requested: usize,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "global thread pool already initialized with {} threads (requested {})",
            self.current, self.requested
        )
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// rayon-compatible global pool configuration.
///
/// ```
/// rayon::ThreadPoolBuilder::new().num_threads(2).build_global().ok();
/// ```
#[derive(Debug, Default, Clone)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with every knob at its default.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Request an exact worker count (0 keeps the automatic policy).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Install this configuration as the global pool. Succeeds if the pool
    /// is not built yet, or is already running at the requested size;
    /// errors otherwise (the pool cannot be resized once threads exist).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        if let Some(n) = self.num_threads {
            if let Some(pool) = POOL.get() {
                if pool.threads() != n {
                    return Err(ThreadPoolBuildError {
                        current: pool.threads(),
                        requested: n,
                    });
                }
                return Ok(());
            }
            *REQUESTED.lock().expect("requested lock") = Some(n);
        }
        let _ = global_pool();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn env_threads_parses_strictly() {
        assert_eq!(env_threads(Some("4")), Some(4));
        assert_eq!(env_threads(Some(" 8 ")), Some(8));
        assert_eq!(env_threads(Some("0")), None);
        assert_eq!(env_threads(Some("-2")), None);
        assert_eq!(env_threads(Some("lots")), None);
        assert_eq!(env_threads(None), None);
    }

    #[test]
    fn single_thread_pool_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let seen = Mutex::new(Vec::new());
        let caller = std::thread::current().id();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|i| {
                let seen = &seen;
                Box::new(move || {
                    assert_eq!(std::thread::current().id(), caller);
                    seen.lock().unwrap().push(i);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(tasks);
        assert_eq!(*seen.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn pool_executes_every_task_and_counts() {
        let pool = ThreadPool::new(3);
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(tasks);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        let stats = pool.stats();
        assert_eq!(stats.threads, 3);
        assert!(stats.tasks_executed >= 64);
    }

    #[test]
    fn builder_zero_keeps_automatic_policy() {
        let b = ThreadPoolBuilder::new().num_threads(0);
        assert_eq!(b.num_threads, None);
    }
}
