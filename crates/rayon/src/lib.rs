//! A vendored, std-only stand-in for the subset of [rayon]'s API this
//! workspace uses. The build environment has no access to crates.io, so the
//! real rayon cannot be fetched; this shim keeps the same call sites
//! (`par_chunks`, `par_chunks_mut`, `par_iter`, `map`, `enumerate`,
//! `for_each`, `collect`) and runs them on a persistent work-stealing
//! thread pool (the internal `pool` module) instead of spawning scoped OS threads on
//! every call.
//!
//! Work is split into contiguous groups, one per worker, so ordering
//! semantics match rayon's indexed parallel iterators: `collect` preserves
//! input order and `enumerate` numbers items by their original position.
//! Worker count follows `ThreadPoolBuilder::num_threads`, then the
//! `DPZ_THREADS` environment variable, then `available_parallelism`.
//!
//! [rayon]: https://docs.rs/rayon

mod pool;

pub use pool::{
    current_num_threads, pool_stats, PoolStats, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

use std::mem::{ManuallyDrop, MaybeUninit};

/// Split `len` items into at most `current_num_threads()` contiguous
/// `(start, end)` groups.
fn groups(len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(len);
    let per = len.div_ceil(workers);
    (0..workers)
        .map(|w| (w * per, ((w + 1) * per).min(len)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Raw pointer wrapper so disjoint writers can share the output buffer.
/// Safety rests on the callers: each task writes only its own index range.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        SendPtr(self.0)
    }
}

/// Run `f` over every item of `items` on the global pool, preserving input
/// order in the returned vector.
fn par_map_vec<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let len = items.len();
    let plan = groups(len);
    if plan.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    // Hand each worker a contiguous, index-tagged run of the input and a
    // shared uninitialized output buffer; workers write disjoint ranges.
    let mut chunks: Vec<Vec<(usize, I)>> = Vec::with_capacity(plan.len());
    let mut it = items.into_iter().enumerate();
    for &(lo, hi) in &plan {
        chunks.push((&mut it).take(hi - lo).collect());
    }
    let mut out: Vec<MaybeUninit<O>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit<O> needs no initialization.
    unsafe { out.set_len(len) };
    let base = SendPtr(out.as_mut_ptr());
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
        .into_iter()
        .map(|chunk| {
            let base = base.clone();
            Box::new(move || {
                let base = base;
                for (i, x) in chunk {
                    let v = f(i, x);
                    // SAFETY: `i` is unique across all tasks (each input
                    // index appears in exactly one chunk) and in-bounds.
                    unsafe { base.0.add(i).write(MaybeUninit::new(v)) };
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    // If a task panics, `scope` re-throws here and `out` is dropped as
    // Vec<MaybeUninit<O>>: the written elements leak rather than double-free
    // or read uninitialized memory — safe, if unfortunate.
    pool::global_pool().scope(tasks);
    // SAFETY: every index 0..len was written exactly once by some task and
    // scope() returned without panicking, so all elements are initialized.
    unsafe {
        let mut out = ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr().cast::<O>(), out.len(), out.capacity())
    }
}

/// Run two closures, potentially in parallel, and return both results.
///
/// Mirrors rayon's `join`: `b` is queued on the pool while the calling
/// thread runs `a`, then the caller *helps* drain pool tasks until `b`
/// settles — so nested joins issued from inside workers cannot deadlock.
/// On a one-thread pool both closures simply run sequentially in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
            vec![Box::new(|| ra = Some(a())), Box::new(|| rb = Some(b()))];
        pool::global_pool().scope(tasks);
    }
    // scope() re-throws task panics, so reaching here means both ran.
    (
        ra.expect("join closure a completed"),
        rb.expect("join closure b completed"),
    )
}

/// Parallel iterator over owned items (produced by the slice adapters).
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Map every item through `f` (runs when the iterator is consumed).
    pub fn map<O, F>(self, f: F) -> ParMap<I, F>
    where
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Pair every item with its input position.
    pub fn enumerate(self) -> ParEnumerate<I> {
        ParEnumerate { items: self.items }
    }

    /// Apply `f` to every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        par_map_vec(self.items, |_, x| f(x));
    }

    /// Collect the items in input order.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Mapped parallel iterator.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, O, F> ParMap<I, F>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    /// Run the map in parallel and collect results in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        par_map_vec(self.items, |_, x| (self.f)(x))
            .into_iter()
            .collect()
    }

    /// Run the map in parallel for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(O) + Sync,
    {
        let f = &self.f;
        par_map_vec(self.items, move |_, x| g(f(x)));
    }
}

/// Enumerated parallel iterator.
pub struct ParEnumerate<I> {
    items: Vec<I>,
}

impl<I: Send> ParEnumerate<I> {
    /// Apply `f` to every `(index, item)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, I)) + Sync,
    {
        par_map_vec(self.items, |i, x| f((i, x)));
    }

    /// Collect `(index, item)` pairs in input order.
    pub fn collect<C: FromIterator<(usize, I)>>(self) -> C {
        self.items.into_iter().enumerate().collect()
    }
}

/// The traits client code brings into scope with `use rayon::prelude::*`.
pub mod prelude {
    use super::ParIter;

    /// `par_chunks` / shared-slice parallelism.
    pub trait ParallelSlice<T: Sync + Send> {
        /// Parallel iterator over `size`-element chunks.
        fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
        /// Parallel iterator over individual elements.
        fn par_iter(&self) -> ParIter<&T>;
    }

    impl<T: Sync + Send> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
            assert!(size > 0, "chunk size must be positive");
            ParIter {
                items: self.chunks(size).collect(),
            }
        }

        fn par_iter(&self) -> ParIter<&T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    /// `par_chunks_mut` / exclusive-slice parallelism.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over `size`-element mutable chunks.
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
            assert!(size > 0, "chunk size must be positive");
            ParIter {
                items: self.chunks_mut(size).collect(),
            }
        }
    }

    /// `par_iter` on owned collections taken by reference.
    pub trait IntoParallelRefIterator<'a> {
        /// The item type yielded by the parallel iterator.
        type Item: Send;
        /// Parallel iterator over shared references.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;

        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    /// `into_par_iter` on owned collections: the iterator takes ownership of
    /// the items, so `map` closures receive them by value.
    pub trait IntoParallelIterator {
        /// The item type yielded by the parallel iterator.
        type Item: Send;
        /// Consume `self` into a parallel iterator over owned items.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;

        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    pub use super::{ParEnumerate, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_map_collect_preserves_order() {
        let data: Vec<u32> = (0..1000).collect();
        let sums: Vec<u64> = data
            .par_chunks(7)
            .map(|c| c.iter().map(|&v| u64::from(v)).sum())
            .collect();
        let expect: Vec<u64> = data
            .chunks(7)
            .map(|c| c.iter().map(|&v| u64::from(v)).sum())
            .collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn par_chunks_mut_enumerate_writes_every_chunk() {
        let mut data = vec![0usize; 64];
        data.par_chunks_mut(8).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 8);
        }
    }

    #[test]
    fn par_iter_visits_everything() {
        let items: Vec<usize> = (0..257).collect();
        let hits = AtomicUsize::new(0);
        items.par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn thread_count_reported() {
        // Unit tests keep the historical >= 2 floor (see pool::resolve_threads).
        assert!(super::current_num_threads() >= 2);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 6 * 7, || "done".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "done");
    }

    #[test]
    fn join_nests_without_deadlock() {
        // Joins issued from inside join closures must help-drain the pool
        // rather than block a worker that holds queued tasks.
        let (outer, _) = super::join(
            || {
                let (x, y) = super::join(|| 1usize, || 2usize);
                x + y
            },
            || {
                let (x, y) = super::join(|| 10usize, || 20usize);
                x + y
            },
        );
        assert_eq!(outer, 3);
    }

    #[test]
    fn into_par_iter_maps_owned_items_in_order() {
        let strings: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = strings.into_par_iter().map(|s| s.len()).collect();
        let expect: Vec<usize> = (0..100).map(|i: i32| i.to_string().len()).collect();
        assert_eq!(lens, expect);
    }

    #[test]
    fn repeated_calls_reuse_the_pool() {
        // Many back-to-back par calls must not exhaust anything; tasks_total
        // strictly grows.
        let before = super::pool_stats().tasks_executed;
        for _ in 0..32 {
            let v: Vec<usize> = (0..64).collect();
            let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
            assert_eq!(doubled[63], 126);
        }
        let after = super::pool_stats().tasks_executed;
        assert!(after >= before);
        assert!(super::pool_stats().threads >= 2);
    }
}
