//! # dpz-deflate
//!
//! A from-scratch implementation of the DEFLATE compressed data format
//! (RFC 1951) and the zlib container (RFC 1950), replacing the `zlib`
//! dependency the DPZ paper uses as its final lossless stage.
//!
//! Pipeline:
//!
//! * [`lz77`] — hash-chain string matching with one-step lazy evaluation
//!   (window 32 KiB, matches 3..=258 bytes),
//! * [`huffman`] — canonical, length-limited Huffman code construction and a
//!   canonical decoder,
//! * [`deflate`] — block encoder choosing per block between *stored*, *fixed
//!   Huffman* and *dynamic Huffman* representations,
//! * [`inflate`] — the full decoder,
//! * [`zlib`] — header/Adler-32 framing plus the top-level
//!   [`compress`]/[`decompress`] entry points,
//! * [`tans`] — an interleaved tabled-ANS coder, the alternative entropy
//!   backend for DPZ container sections (no string matcher, near-entropy
//!   rates on skewed index streams, branch-free decode loop).
//!
//! The API mirrors what DPZ needs: compress a byte buffer, get the bytes
//! back verbatim. Round-trip fidelity is enforced by unit tests in every
//! module and by property tests over arbitrary inputs.

#![warn(missing_docs)]

pub mod bitio;
pub mod crc32;
pub mod deflate;
pub mod huffman;
pub mod inflate;
pub mod lz77;
pub mod tans;
pub mod zlib;

pub use crc32::crc32;
pub use deflate::CompressionLevel;
pub use zlib::{compress, compress_parallel, compress_with_level, decompress, decompress_bounded};

/// Errors produced while decoding a compressed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeflateError {
    /// The input ended in the middle of a structure.
    UnexpectedEof,
    /// A block header, code or symbol violated the format.
    Corrupt(&'static str),
    /// The zlib header is malformed or uses an unsupported method.
    BadHeader,
    /// The decompressed output would exceed the caller's declared bound —
    /// the decompression-bomb guard (see [`inflate::inflate_bounded`]).
    TooLarge {
        /// The output cap that was exceeded.
        limit: usize,
    },
    /// The Adler-32 checksum of the decompressed data does not match.
    ChecksumMismatch {
        /// Checksum stored in the stream trailer.
        expected: u32,
        /// Checksum computed over the decoded bytes.
        actual: u32,
    },
}

impl std::fmt::Display for DeflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeflateError::UnexpectedEof => write!(f, "unexpected end of compressed input"),
            DeflateError::Corrupt(what) => write!(f, "corrupt deflate stream: {what}"),
            DeflateError::BadHeader => write!(f, "bad zlib header"),
            DeflateError::TooLarge { limit } => {
                write!(
                    f,
                    "decompressed output exceeds the declared bound of {limit} bytes"
                )
            }
            DeflateError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "adler32 mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for DeflateError {}

/// Result alias for decode paths.
pub type Result<T> = std::result::Result<T, DeflateError>;

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    fn cases() -> Vec<Vec<u8>> {
        let mut v: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![42; 1],
            b"hello world".to_vec(),
            vec![0; 100_000],
            (0..=255u8).collect(),
            (0..50_000).map(|i| (i % 256) as u8).collect(),
            b"abcabcabcabcabcabcabcabcabcabc".to_vec(),
        ];
        // Pseudo-random hard-to-compress payload.
        let mut s = 0x12345678u64;
        v.push(
            (0..30_000)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s >> 24) as u8
                })
                .collect(),
        );
        // Text-like payload.
        v.push(
            "the quick brown fox jumps over the lazy dog. "
                .repeat(500)
                .into_bytes(),
        );
        v
    }

    #[test]
    fn compress_decompress_identity() {
        for (i, case) in cases().iter().enumerate() {
            let packed = compress(case);
            let unpacked = decompress(&packed).unwrap_or_else(|e| panic!("case {i}: {e}"));
            assert_eq!(&unpacked, case, "case {i} round trip failed");
        }
    }

    #[test]
    fn all_levels_round_trip() {
        let data = "abcdefg".repeat(4000).into_bytes();
        for level in [
            CompressionLevel::Store,
            CompressionLevel::Fast,
            CompressionLevel::Default,
            CompressionLevel::Best,
        ] {
            let packed = compress_with_level(&data, level);
            assert_eq!(decompress(&packed).unwrap(), data, "{level:?}");
        }
    }

    #[test]
    fn repetitive_data_actually_compresses() {
        let data = vec![7u8; 65_536];
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 50,
            "constant data should compress >50x, got {} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let packed = compress(b"some reasonably long input to compress");
        for cut in [0, 1, 2, packed.len() / 2, packed.len() - 1] {
            assert!(decompress(&packed[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut packed = compress(b"checksum guard");
        let n = packed.len();
        packed[n - 1] ^= 0xFF;
        match decompress(&packed) {
            Err(DeflateError::ChecksumMismatch { .. }) | Err(DeflateError::Corrupt(_)) => {}
            other => panic!("expected checksum/corrupt error, got {other:?}"),
        }
    }
}
