//! Tabled asymmetric numeral system (tANS) entropy coder — the alternative
//! lossless backend to DEFLATE for DPZ container sections.
//!
//! Unlike DEFLATE this stage has no string matcher: it is a pure
//! order-0 entropy coder, close to the Shannon bound for the byte
//! histogram, and its decode loop is two table lookups plus a bit read —
//! no code-length tree walk at all. Two interleaved states alternate over
//! the symbol stream so consecutive decode steps carry no data dependency,
//! which is what makes the loop superscalar-friendly.
//!
//! Stream layout (little-endian):
//!
//! ```text
//! u8 table_log (0 only for the empty stream)
//! u32 raw_len
//! if raw_len > 0:
//!   u16 state0 | u16 state1          (final encoder = initial decoder states)
//!   u16 npairs | npairs × (u8 sym, u16 freq)   (normalized, sum = 1<<table_log)
//!   bitstream…                        (LSB-first, read forward by the decoder)
//! ```
//!
//! Encoding walks the input backwards (the ANS state is a stack), records
//! each `(bits, nbits)` push, and writes the pushes in reverse so the
//! decoder consumes them in plain forward order with [`BitReader`].
//!
//! **Decode hardening contract** (same as `inflate`): no byte stream may
//! panic or force an oversized allocation. The frequency table is validated
//! to sum to exactly `1 << table_log` before any table is built, states are
//! range-checked against the table, and output length is bounded by the
//! caller's `limit`.

use crate::bitio::{BitReader, BitWriter};
use crate::{DeflateError, Result};

/// Largest table log the encoder emits and the decoder accepts.
pub const MAX_TABLE_LOG: u32 = 12;
/// Smallest table log for a non-empty stream.
pub const MIN_TABLE_LOG: u32 = 5;

#[inline]
fn floor_log2(v: u32) -> u32 {
    31 - v.leading_zeros()
}

/// Pick a table log for `len` input bytes over `distinct` symbols: small
/// inputs get small tables (header overhead), and the table must be able to
/// give every present symbol a nonzero slot.
fn choose_table_log(len: usize, distinct: u32) -> u32 {
    let for_len = usize::BITS - len.next_power_of_two().leading_zeros() - 1;
    let for_distinct = 32 - distinct.next_power_of_two().leading_zeros() - 1;
    for_len
        .min(MAX_TABLE_LOG)
        .max(for_distinct)
        .max(MIN_TABLE_LOG)
}

/// Largest-remainder normalization of `hist` to sum exactly `1 << table_log`,
/// with every present symbol kept at frequency >= 1.
fn normalize(hist: &[u64; 256], total: u64, table_log: u32) -> [u32; 256] {
    let l = 1u64 << table_log;
    let mut freq = [0u32; 256];
    let mut sum = 0u64;
    for s in 0..256 {
        if hist[s] == 0 {
            continue;
        }
        let f = ((hist[s] * l + total / 2) / total).max(1);
        freq[s] = f as u32;
        sum += f;
    }
    // Steal from / give to the most frequent symbols until the sum is exact.
    // The initial sum is within a few hundred of `l`, so this terminates in
    // at most that many O(256) scans.
    while sum > l {
        let s = (0..256)
            .filter(|&s| freq[s] > 1)
            .max_by_key(|&s| freq[s])
            .expect("sum > l implies a shrinkable symbol");
        freq[s] -= 1;
        sum -= 1;
    }
    while sum < l {
        let s = (0..256).max_by_key(|&s| freq[s]).unwrap();
        freq[s] += 1;
        sum += 1;
    }
    freq
}

/// Scatter each symbol's slots over the table with the FSE stride walk
/// (odd step over a power-of-two table visits every position once).
fn spread_symbols(freq: &[u32; 256], table_log: u32) -> Vec<u8> {
    let l = 1usize << table_log;
    let step = (l >> 1) + (l >> 3) + 3;
    let mask = l - 1;
    let mut spread = vec![0u8; l];
    let mut pos = 0usize;
    for (s, &f) in freq.iter().enumerate() {
        for _ in 0..f {
            spread[pos] = s as u8;
            pos = (pos + step) & mask;
        }
    }
    debug_assert_eq!(pos, 0);
    spread
}

/// Compress `data` with a 2-way interleaved tANS coder.
///
/// Frequencies come from the runtime-dispatched histogram kernel; the
/// output always round-trips through [`decompress_bounded`]. Incompressible
/// input can grow by the header size (~the frequency table) — the container
/// layer stores raw/packed sizes, so callers can see when that happened.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    if data.is_empty() {
        out.push(0); // table_log 0: empty-stream sentinel
        out.extend_from_slice(&0u32.to_le_bytes());
        return out;
    }

    let mut hist = [0u64; 256];
    dpz_kernels::checksum::byte_histogram(data, &mut hist);
    let distinct = hist.iter().filter(|&&c| c > 0).count() as u32;
    let table_log = choose_table_log(data.len(), distinct);
    let freq = normalize(&hist, data.len() as u64, table_log);
    let spread = spread_symbols(&freq, table_log);
    let l = 1u32 << table_log;

    // Encode tables. `first_slot[s]` offsets into `next_state`, which maps
    // (symbol, x_small - freq) -> the table state whose decode yields that
    // x_small; built by the same table-order scan the decoder uses, so the
    // two sides agree on slot ranks.
    let mut first_slot = [0u32; 257];
    for s in 0..256 {
        first_slot[s + 1] = first_slot[s] + freq[s];
    }
    let mut next_state = vec![0u16; l as usize];
    let mut fill = first_slot;
    for (i, &s) in spread.iter().enumerate() {
        let s = s as usize;
        next_state[fill[s] as usize] = (l + i as u32) as u16;
        fill[s] += 1;
    }

    // Backward pass: channel i&1, recording every bit push.
    let mut states = [l, l];
    let mut ops: Vec<(u16, u8)> = Vec::with_capacity(data.len());
    for (i, &b) in data.iter().enumerate().rev() {
        let s = b as usize;
        let f = freq[s];
        let max_bits = table_log - floor_log2(f);
        let x = states[i & 1];
        let nb = max_bits - u32::from(x < (f << max_bits));
        ops.push(((x & ((1 << nb) - 1)) as u16, nb as u8));
        states[i & 1] = u32::from(next_state[(first_slot[s] + (x >> nb) - f) as usize]);
    }

    out.push(table_log as u8);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(&(states[0] as u16).to_le_bytes());
    out.extend_from_slice(&(states[1] as u16).to_le_bytes());
    let npairs = freq.iter().filter(|&&f| f > 0).count() as u16;
    out.extend_from_slice(&npairs.to_le_bytes());
    for (s, &f) in freq.iter().enumerate() {
        if f > 0 {
            out.push(s as u8);
            out.extend_from_slice(&(f as u16).to_le_bytes());
        }
    }
    let mut w = BitWriter::new();
    for &(bits, nb) in ops.iter().rev() {
        w.write_bits(u32::from(bits), u32::from(nb));
    }
    out.extend_from_slice(&w.finish());
    out
}

/// One decode-table entry: emit `sym`, then `state = base + read(nbits)`.
#[derive(Clone, Copy)]
struct DEntry {
    sym: u8,
    nbits: u8,
    base: u16,
}

/// Decompress a tANS stream produced by [`compress`], refusing to emit more
/// than `limit` bytes ([`DeflateError::TooLarge`] — the bomb guard shared
/// with `inflate_bounded`).
pub fn decompress_bounded(data: &[u8], limit: usize) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8]> {
        let end = pos.checked_add(n).ok_or(DeflateError::UnexpectedEof)?;
        if end > data.len() {
            return Err(DeflateError::UnexpectedEof);
        }
        let s = &data[pos..end];
        pos = end;
        Ok(s)
    };

    let table_log = u32::from(take(1)?[0]);
    let raw_len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
    if raw_len == 0 {
        return if table_log == 0 {
            Ok(Vec::new())
        } else {
            Err(DeflateError::Corrupt("nonzero table for empty tans stream"))
        };
    }
    if raw_len > limit {
        return Err(DeflateError::TooLarge { limit });
    }
    if !(MIN_TABLE_LOG..=MAX_TABLE_LOG).contains(&table_log) {
        return Err(DeflateError::Corrupt("tans table log out of range"));
    }
    let l = 1u32 << table_log;

    let state0 = u32::from(u16::from_le_bytes(take(2)?.try_into().unwrap()));
    let state1 = u32::from(u16::from_le_bytes(take(2)?.try_into().unwrap()));
    for st in [state0, state1] {
        if !(l..2 * l).contains(&st) {
            return Err(DeflateError::Corrupt("tans state out of range"));
        }
    }

    let npairs = usize::from(u16::from_le_bytes(take(2)?.try_into().unwrap()));
    if npairs == 0 || npairs > 256 {
        return Err(DeflateError::Corrupt("tans frequency table size"));
    }
    let mut freq = [0u32; 256];
    let mut sum = 0u64;
    let mut last_sym: i32 = -1;
    for _ in 0..npairs {
        let pair = take(3)?;
        let sym = i32::from(pair[0]);
        if sym <= last_sym {
            return Err(DeflateError::Corrupt("tans frequency table not canonical"));
        }
        last_sym = sym;
        let f = u32::from(u16::from_le_bytes([pair[1], pair[2]]));
        if f == 0 {
            return Err(DeflateError::Corrupt("zero frequency in tans table"));
        }
        freq[sym as usize] = f;
        sum += u64::from(f);
    }
    if sum != u64::from(l) {
        return Err(DeflateError::Corrupt(
            "tans frequencies do not sum to table",
        ));
    }

    // Build the decode table in table order: the k-th slot of symbol `s`
    // (table order) decodes to x_small = freq[s] + k, mirroring the
    // encoder's `next_state` construction.
    let spread = spread_symbols(&freq, table_log);
    let mut dtable = vec![
        DEntry {
            sym: 0,
            nbits: 0,
            base: 0
        };
        l as usize
    ];
    let mut x_small = freq;
    for (i, &s) in spread.iter().enumerate() {
        let xs = x_small[s as usize];
        x_small[s as usize] += 1;
        let nb = table_log - floor_log2(xs);
        dtable[i] = DEntry {
            sym: s,
            nbits: nb as u8,
            base: (xs << nb) as u16,
        };
    }

    let mut r = BitReader::new(&data[pos..]);
    let mut out = Vec::with_capacity(raw_len);
    let mut st = [state0, state1];
    // Two independent chains: step i uses channel i&1, so the pair of
    // lookups in each unrolled iteration overlap in the pipeline.
    let mut i = 0usize;
    while i + 2 <= raw_len {
        let e0 = dtable[(st[0] - l) as usize];
        let e1 = dtable[(st[1] - l) as usize];
        out.push(e0.sym);
        out.push(e1.sym);
        st[0] = u32::from(e0.base) + r.read_bits(u32::from(e0.nbits))?;
        st[1] = u32::from(e1.base) + r.read_bits(u32::from(e1.nbits))?;
        i += 2;
    }
    if i < raw_len {
        let e = dtable[(st[i & 1] - l) as usize];
        out.push(e.sym);
        st[i & 1] = u32::from(e.base) + r.read_bits(u32::from(e.nbits))?;
    }
    // Both chains started at the base state `l` on the encode side, so a
    // healthy stream must return there — a free whole-stream integrity check.
    if st != [l, l] {
        return Err(DeflateError::Corrupt("tans stream does not close"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cases() -> Vec<Vec<u8>> {
        let mut v: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![42; 1],
            vec![7; 65_536],
            b"hello world".to_vec(),
            (0..=255u8).collect(),
            (0..50_000).map(|i| (i % 256) as u8).collect(),
            (0..10_000).map(|i| ((i * i) % 251) as u8).collect(),
        ];
        let mut s = 0xDEADBEEFu64;
        v.push(
            (0..30_000)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s >> 24) as u8
                })
                .collect(),
        );
        // Skewed distribution: mostly zeros, occasional bytes — index
        // streams look like this.
        v.push(
            (0..40_000)
                .map(|i: u32| {
                    if i.is_multiple_of(17) {
                        (i % 5) as u8 + 1
                    } else {
                        0
                    }
                })
                .collect(),
        );
        v
    }

    #[test]
    fn round_trip_identity() {
        for (i, case) in cases().iter().enumerate() {
            let packed = compress(case);
            let unpacked =
                decompress_bounded(&packed, case.len()).unwrap_or_else(|e| panic!("case {i}: {e}"));
            assert_eq!(&unpacked, case, "case {i}");
        }
    }

    #[test]
    fn skewed_data_compresses_near_entropy() {
        // 90% zeros, 10% spread over 16 symbols: H ≈ 0.8 bits/byte. tANS
        // should land within ~15% of that; DEFLATE's fixed trees cannot.
        let data: Vec<u8> = (0..100_000u32)
            .map(|i| if i % 10 == 0 { (i % 16) as u8 + 1 } else { 0 })
            .collect();
        let packed = compress(&data);
        let bits_per_byte = packed.len() as f64 * 8.0 / data.len() as f64;
        assert!(
            bits_per_byte < 1.1,
            "expected < 1.1 bits/byte, got {bits_per_byte:.3}"
        );
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let data: Vec<u8> = (0..5_000).map(|i| (i % 50) as u8).collect();
        let packed = compress(&data);
        for cut in [0, 1, 4, 5, 8, 12, packed.len() / 2, packed.len() - 1] {
            assert!(
                decompress_bounded(&packed[..cut], data.len()).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn oversized_declared_raw_len_hits_the_bound() {
        let packed = compress(b"bounded");
        let err = decompress_bounded(&packed, 3).unwrap_err();
        assert_eq!(err, DeflateError::TooLarge { limit: 3 });
    }

    #[test]
    fn corrupt_frequency_tables_are_rejected() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 7) as u8).collect();
        let packed = compress(&data);
        // Frequencies start after table_log(1) + raw_len(4) + states(4) +
        // npairs(2) = byte 11; bump one u16 freq so the sum check fires.
        let mut bad = packed.clone();
        bad[12] = bad[12].wrapping_add(1);
        assert!(matches!(
            decompress_bounded(&bad, data.len()),
            Err(DeflateError::Corrupt(_))
        ));
        // Out-of-range state.
        let mut bad = packed.clone();
        bad[5] = 0xFF;
        bad[6] = 0xFF;
        assert!(matches!(
            decompress_bounded(&bad, data.len()),
            Err(DeflateError::Corrupt(_))
        ));
        // Table log outside [MIN, MAX].
        let mut bad = packed;
        bad[0] = 31;
        assert!(matches!(
            decompress_bounded(&bad, data.len()),
            Err(DeflateError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_stream_sentinel() {
        let packed = compress(&[]);
        assert_eq!(packed, vec![0, 0, 0, 0, 0]);
        assert_eq!(decompress_bounded(&packed, 0).unwrap(), Vec::<u8>::new());
        // Nonzero table_log with raw_len 0 is malformed, not empty.
        let bad = vec![8, 0, 0, 0, 0];
        assert!(decompress_bounded(&bad, 0).is_err());
    }

    #[test]
    fn single_symbol_stream_needs_almost_no_bits() {
        let data = vec![0xAB; 100_000];
        let packed = compress(&data);
        assert!(packed.len() < 32, "constant input: got {}", packed.len());
        assert_eq!(decompress_bounded(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn normalization_is_exact_for_adversarial_histograms() {
        // One dominant symbol plus 255 singletons stresses the
        // largest-remainder fixup in both directions.
        let mut data = vec![0u8; 100_000];
        for (i, b) in data.iter_mut().enumerate().take(255) {
            *b = (i + 1) as u8;
        }
        let packed = compress(&data);
        assert_eq!(decompress_bounded(&packed, data.len()).unwrap(), data);
    }
}
