//! DEFLATE decoder (RFC 1951).

use crate::bitio::BitReader;
use crate::deflate::{
    fixed_dist_lengths, fixed_lit_lengths, CLC_ORDER, DIST_BASE, DIST_EXTRA, LENGTH_BASE,
    LENGTH_EXTRA,
};
use crate::huffman::{Decoder, LutDecoder};
use crate::{DeflateError, Result};
use std::sync::OnceLock;

/// Initial output reservation ceiling. The decoder must never size a buffer
/// from untrusted input alone, so the up-front guess is clamped here and the
/// vector grows incrementally (amortized) from then on.
const INITIAL_RESERVE_CAP: usize = 64 * 1024;

/// Decompress a raw DEFLATE stream into bytes.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>> {
    inflate_consumed(data).map(|(out, _)| out)
}

/// Decompress a raw DEFLATE stream, failing with [`DeflateError::TooLarge`]
/// as soon as the output would exceed `max_out` bytes.
///
/// This is the decompression-bomb guard: a few hundred input bytes can
/// legally inflate to megabytes (stored-block-free RLE approaches ~1030:1),
/// so any decoder fed untrusted data must bound the output by what the
/// surrounding container *declared* — the bound trips after at most
/// `max_out` bytes have been materialized, never after.
pub fn inflate_bounded(data: &[u8], max_out: usize) -> Result<Vec<u8>> {
    inflate_consumed_bounded(data, max_out).map(|(out, _)| out)
}

/// Decompress a raw DEFLATE stream and also report how many input bytes the
/// stream occupied (rounded up to the byte after the final block).
///
/// The consumed count lets callers parse *concatenated* streams — e.g. the
/// multi-member zlib container — by restarting after each member.
pub fn inflate_consumed(data: &[u8]) -> Result<(Vec<u8>, usize)> {
    inflate_consumed_bounded(data, usize::MAX)
}

/// [`inflate_consumed`] with the [`inflate_bounded`] output cap.
pub fn inflate_consumed_bounded(data: &[u8], max_out: usize) -> Result<(Vec<u8>, usize)> {
    let mut r = BitReader::new(data);
    // Reserve from the *smaller* of a heuristic on the input size and the
    // caller's bound, clamped to a fixed ceiling: untrusted lengths must not
    // drive a large up-front allocation (the old `data.len() * 3` guess did).
    let mut out = Vec::with_capacity(
        data.len()
            .saturating_mul(2)
            .min(max_out)
            .min(INITIAL_RESERVE_CAP),
    );
    loop {
        let bfinal = r.read_bit()?;
        let btype = r.read_bits(2)?;
        match btype {
            0b00 => read_stored_block(&mut r, &mut out, max_out)?,
            0b01 => {
                let (lit, dist) = fixed_tables();
                read_huffman_block(&mut r, &mut out, lit, dist, max_out)?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                read_huffman_block(&mut r, &mut out, &lit, &dist, max_out)?;
            }
            _ => return Err(DeflateError::Corrupt("reserved block type 11")),
        }
        if bfinal == 1 {
            break;
        }
    }
    // Discard the final block's bit padding so byte_position() is exact.
    r.align_to_byte();
    Ok((out, r.byte_position()))
}

fn read_stored_block(r: &mut BitReader<'_>, out: &mut Vec<u8>, max_out: usize) -> Result<()> {
    r.align_to_byte();
    let header = r.read_bytes(4)?;
    let len = u16::from_le_bytes([header[0], header[1]]);
    let nlen = u16::from_le_bytes([header[2], header[3]]);
    if len != !nlen {
        return Err(DeflateError::Corrupt("stored block LEN/NLEN mismatch"));
    }
    if max_out.saturating_sub(out.len()) < usize::from(len) {
        return Err(DeflateError::TooLarge { limit: max_out });
    }
    out.extend_from_slice(&r.read_bytes(len as usize)?);
    Ok(())
}

/// The fixed-block decode tables (RFC 1951 §3.2.6) never change; build the
/// lookup tables once per process.
fn fixed_tables() -> (&'static LutDecoder, &'static LutDecoder) {
    static TABLES: OnceLock<(LutDecoder, LutDecoder)> = OnceLock::new();
    let (lit, dist) = TABLES.get_or_init(|| {
        (
            LutDecoder::from_lengths(&fixed_lit_lengths(), true).expect("fixed litlen code"),
            LutDecoder::from_lengths(&fixed_dist_lengths(), false).expect("fixed dist code"),
        )
    });
    (lit, dist)
}

/// Parse the dynamic block header into literal/length and distance decoders.
fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(LutDecoder, LutDecoder)> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(DeflateError::Corrupt("dynamic header counts out of range"));
    }
    let mut clc_lengths = [0u8; 19];
    for &sym in CLC_ORDER.iter().take(hclen) {
        clc_lengths[sym] = r.read_bits(3)? as u8;
    }
    let clc = Decoder::from_lengths(&clc_lengths)?;

    // Decode hlit + hdist code lengths with the RLE alphabet.
    let total = hlit + hdist;
    let mut lengths = Vec::with_capacity(total);
    while lengths.len() < total {
        let sym = clc.read(r)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let &prev = lengths
                    .last()
                    .ok_or(DeflateError::Corrupt("repeat code with no previous length"))?;
                let count = 3 + r.read_bits(2)? as usize;
                for _ in 0..count {
                    lengths.push(prev);
                }
            }
            17 => {
                let count = 3 + r.read_bits(3)? as usize;
                lengths.extend(std::iter::repeat_n(0u8, count));
            }
            18 => {
                let count = 11 + r.read_bits(7)? as usize;
                lengths.extend(std::iter::repeat_n(0u8, count));
            }
            _ => return Err(DeflateError::Corrupt("invalid code length symbol")),
        }
    }
    if lengths.len() != total {
        return Err(DeflateError::Corrupt(
            "code length run overflows header counts",
        ));
    }
    if lengths[256] == 0 {
        return Err(DeflateError::Corrupt("end-of-block symbol has no code"));
    }
    let lit = LutDecoder::from_lengths(&lengths[..hlit], true)?;
    let dist = LutDecoder::from_lengths(&lengths[hlit..], false)?;
    Ok((lit, dist))
}

/// Append `len` bytes starting `d` back from the end of `out`. Overlapping
/// copies (`d < len`) are the RLE case: the repeating period is materialized
/// once, then doubled, so long runs move in large memcpy steps while writing
/// exactly the bytes the byte-at-a-time definition would.
fn copy_match(out: &mut Vec<u8>, d: usize, len: usize) {
    if d >= len {
        let start = out.len() - d;
        out.extend_from_within(start..start + len);
        return;
    }
    // The tail of `out` is d-periodic once the first period lands, and stays
    // d-periodic as it grows — so each pass can source the whole tail,
    // doubling the copy size.
    let mut done = 0usize;
    let mut avail = d;
    while done < len {
        let step = avail.min(len - done);
        let from = out.len() - avail;
        out.extend_from_within(from..from + step);
        done += step;
        avail += step;
    }
}

fn read_huffman_block(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &LutDecoder,
    dist: &LutDecoder,
    max_out: usize,
) -> Result<()> {
    loop {
        let e = lit.read_entry(r)?;
        let sym = e.symbol() as usize;
        match sym {
            0..=255 => {
                if let Some(second) = e.second_literal() {
                    if max_out.saturating_sub(out.len()) < 2 {
                        return Err(DeflateError::TooLarge { limit: max_out });
                    }
                    out.push(sym as u8);
                    out.push(second);
                    continue;
                }
                if out.len() >= max_out {
                    return Err(DeflateError::TooLarge { limit: max_out });
                }
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let idx = sym - 257;
                let extra = LENGTH_EXTRA[idx];
                let len = LENGTH_BASE[idx] as usize + r.read_bits(u32::from(extra))? as usize;
                let dsym = dist.read(r)? as usize;
                if dsym >= 30 {
                    return Err(DeflateError::Corrupt("invalid distance code"));
                }
                let dextra = DIST_EXTRA[dsym];
                let d = DIST_BASE[dsym] as usize + r.read_bits(u32::from(dextra))? as usize;
                if d > out.len() {
                    return Err(DeflateError::Corrupt("distance beyond output start"));
                }
                if max_out.saturating_sub(out.len()) < len {
                    return Err(DeflateError::TooLarge { limit: max_out });
                }
                copy_match(out, d, len);
            }
            _ => return Err(DeflateError::Corrupt("invalid literal/length symbol")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate_compress, CompressionLevel};

    #[test]
    fn inflate_known_fixed_block() {
        // A hand-checkable stream: compress then immediately decode.
        let data = b"aaaaaaaaaaaaaaaaaaaaaaaabbbb";
        let packed = deflate_compress(data, CompressionLevel::Default);
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn rejects_reserved_block_type() {
        // BFINAL=1, BTYPE=11.
        let stream = [0b0000_0111u8];
        assert_eq!(
            inflate(&stream),
            Err(DeflateError::Corrupt("reserved block type 11"))
        );
    }

    #[test]
    fn rejects_bad_stored_nlen() {
        // BFINAL=1, BTYPE=00, aligned; LEN=1, NLEN=wrong, one byte payload.
        let stream = [0b0000_0001u8, 0x01, 0x00, 0x00, 0x00, 0xAA];
        assert!(matches!(inflate(&stream), Err(DeflateError::Corrupt(_))));
    }

    #[test]
    fn rejects_distance_past_start() {
        // Build a valid stream then tamper is fiddly; instead decode a fixed
        // block that immediately references distance 1 with no history.
        // Fixed code for length 257+0 (sym 257, 7 bits: 0000001) and distance
        // code 0 (5 bits). Construct via encoder for reliability, then check
        // decoding a *crafted* stream errors. Simplest: stream of a single
        // match at the very beginning produced by hand.
        use crate::bitio::BitWriter;
        use crate::huffman::Encoder;
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b01, 2); // fixed
        let lit = Encoder::from_lengths(&crate::deflate::fixed_lit_lengths());
        let dist = Encoder::from_lengths(&crate::deflate::fixed_dist_lengths());
        lit.write(&mut w, 257); // length 3, no extra
        dist.write(&mut w, 0); // distance 1 — but output is empty
        lit.write(&mut w, 256);
        let stream = w.finish();
        assert_eq!(
            inflate(&stream),
            Err(DeflateError::Corrupt("distance beyond output start"))
        );
    }

    #[test]
    fn truncated_dynamic_header() {
        let data = b"dynamic header please ".repeat(50);
        let packed = deflate_compress(&data, CompressionLevel::Default);
        // Cut inside the header.
        assert!(inflate(&packed[..3]).is_err());
    }

    #[test]
    fn empty_stored_block() {
        let packed = deflate_compress(&[], CompressionLevel::Store);
        assert_eq!(inflate(&packed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn multi_block_concatenation() {
        let data: Vec<u8> = (0..200_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let packed = deflate_compress(&data, CompressionLevel::Fast);
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn consumed_reports_exact_stream_length() {
        let data = b"consumed length probe ".repeat(40);
        let packed = deflate_compress(&data, CompressionLevel::Default);
        // Append trailing garbage; the decoder must stop at the real end.
        let mut padded = packed.clone();
        padded.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
        let (out, used) = inflate_consumed(&padded).unwrap();
        assert_eq!(out, data);
        assert_eq!(used, packed.len());
    }

    #[test]
    fn overlapping_copy_rle() {
        let data = vec![9u8; 1000];
        let packed = deflate_compress(&data, CompressionLevel::Best);
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn bounded_inflate_accepts_exact_fit() {
        let data = b"bounded but legal".repeat(100);
        let packed = deflate_compress(&data, CompressionLevel::Default);
        assert_eq!(inflate_bounded(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn bounded_inflate_trips_on_rle_bomb() {
        // ~1000:1 bomb: a megabyte of zeros packs into ~1 KiB. The bound
        // must trip without materializing more than `cap` bytes.
        let data = vec![0u8; 1 << 20];
        let packed = deflate_compress(&data, CompressionLevel::Best);
        assert!(packed.len() < 8192, "bomb input is {} bytes", packed.len());
        for cap in [0usize, 1, 100, data.len() - 1] {
            assert_eq!(
                inflate_bounded(&packed, cap),
                Err(DeflateError::TooLarge { limit: cap }),
                "cap {cap}"
            );
        }
    }

    #[test]
    fn bounded_inflate_trips_on_stored_blocks() {
        // Stored blocks take the other write path; cap must apply there too.
        let mut s = 1u64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 33) as u8
            })
            .collect();
        let packed = deflate_compress(&data, CompressionLevel::Store);
        assert!(matches!(
            inflate_bounded(&packed, 10),
            Err(DeflateError::TooLarge { limit: 10 })
        ));
        assert_eq!(inflate_bounded(&packed, data.len()).unwrap(), data);
    }
}
