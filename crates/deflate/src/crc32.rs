//! CRC-32 (IEEE 802.3, the gzip/zip/PNG polynomial 0xEDB88320).
//!
//! The DPZ containers use per-section CRC-32 trailers over the *packed*
//! section bytes, so corruption is detected before any inflate work happens.
//! Adler-32 (in [`crate::zlib`]) stays the per-member zlib trailer; CRC-32
//! gives the outer containers an independent, stronger short-burst detector.
//!
//! The byte loop lives in `dpz-kernels`: slice-by-8 tables for the general
//! case, with a PCLMULQDQ fold for long runs on CPUs that have it.

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Fold more bytes into a running (pre-inverted) CRC state. Start from
/// `0xFFFF_FFFF`, finish by xoring with `0xFFFF_FFFF` — [`crc32`] does both
/// for the one-shot case.
pub fn update(state: u32, data: &[u8]) -> u32 {
    dpz_kernels::checksum::crc32_update(state, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the PNG specification / zlib's crc32().
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"incremental crc folding must match the one-shot form";
        let (a, b) = data.split_at(17);
        let state = update(update(0xFFFF_FFFF, a), b) ^ 0xFFFF_FFFF;
        assert_eq!(state, crc32(data));
    }

    #[test]
    fn long_inputs_cross_the_simd_fold_threshold() {
        // > 128 bytes engages the PCLMUL fold (where available); the result
        // must match a byte-at-a-time reference regardless of backend.
        for n in [127usize, 128, 129, 500, 4096] {
            let data: Vec<u8> = (0..n).map(|i| (i * 37 + 11) as u8).collect();
            let mut crc = 0xFFFF_FFFFu32;
            for &b in &data {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ 0xEDB8_8320
                    } else {
                        crc >> 1
                    };
                }
            }
            assert_eq!(crc32(&data), crc ^ 0xFFFF_FFFF, "n={n}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"sensitivity probe".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x40;
            assert_ne!(crc32(&data), base, "flip at {i} undetected");
            data[i] ^= 0x40;
        }
    }
}
