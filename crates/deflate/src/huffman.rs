//! Canonical Huffman codes: length-limited construction from symbol
//! frequencies (encoder side) and canonical decoding tables (decoder side).
//!
//! DEFLATE transmits only the *code lengths*; both sides then derive the same
//! canonical codes (RFC 1951 §3.2.2). Codes are written MSB-first into the
//! LSB-first bit stream, so the encoder stores each code pre-reversed.

use crate::bitio::{BitReader, BitWriter};
use crate::{DeflateError, Result};

/// Maximum code length DEFLATE permits for literal/length/distance codes.
pub const MAX_BITS: usize = 15;

/// Compute length-limited Huffman code lengths for the given frequencies.
///
/// Builds an optimal Huffman tree, then (rarely) flattens any code deeper
/// than `max_bits` while keeping the Kraft inequality tight. Symbols with
/// zero frequency get length 0 (absent). If only one symbol is present it
/// gets length 1, as DEFLATE requires at least one bit per coded symbol.
pub fn build_code_lengths(freqs: &[u64], max_bits: usize) -> Vec<u8> {
    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Heap-based Huffman tree; node = (freq, tie-break id, index).
    // Leaves are 0..n, internal nodes n..; `parent` chains let us read off
    // depths at the end.
    #[derive(PartialEq, Eq)]
    struct Node {
        freq: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap on freq, then id for determinism.
            other.freq.cmp(&self.freq).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = std::collections::BinaryHeap::new();
    let mut parent = vec![usize::MAX; 2 * used.len()];
    // Map heap ids to tree slots: first used.len() slots are leaves.
    for (slot, &sym) in used.iter().enumerate() {
        heap.push(Node {
            freq: freqs[sym],
            id: slot,
        });
    }
    let mut next_id = used.len();
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.id] = next_id;
        parent[b.id] = next_id;
        heap.push(Node {
            freq: a.freq.saturating_add(b.freq),
            id: next_id,
        });
        next_id += 1;
    }

    // Depth of each leaf = number of parent hops to the root.
    let root = heap.pop().unwrap().id;
    for (slot, &sym) in used.iter().enumerate() {
        let mut depth = 0u32;
        let mut node = slot;
        while node != root {
            node = parent[node];
            depth += 1;
        }
        lengths[sym] = depth.min(255) as u8;
    }

    limit_lengths(&mut lengths, max_bits);
    lengths
}

/// Enforce `max_bits` on a set of Huffman code lengths while keeping the
/// Kraft sum exactly 1 (a complete code). Standard clamp-and-repair.
///
/// If `max_bits` cannot represent the number of used symbols at all
/// (`used > 2^max_bits`), the limit is raised to the smallest feasible
/// depth — callers with hard format limits (DEFLATE: 15 bits for ≤288
/// symbols) can never trigger this, but large open alphabets (e.g. SZ
/// quantization codes) can.
fn limit_lengths(lengths: &mut [u8], max_bits: usize) {
    let used = lengths.iter().filter(|&&l| l > 0).count();
    let feasible = usize::BITS - used.next_power_of_two().leading_zeros() - 1;
    let max_bits = max_bits.max(feasible as usize) as u8;
    if lengths.iter().all(|&l| l <= max_bits) {
        return;
    }
    for l in lengths.iter_mut() {
        if *l > max_bits {
            *l = max_bits;
        }
    }
    // Kraft sum in units of 2^-max_bits.
    let unit = |l: u8| 1u64 << (max_bits - l);
    let budget = 1u64 << max_bits;
    let mut kraft: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| unit(l)).sum();
    // Overfull: deepen the shallowest over-contributing symbols.
    while kraft > budget {
        // Pick the deepest symbol shallower than max_bits and push it down;
        // this reduces the sum by unit(l) / 2.
        #[allow(clippy::unwrap_or_default)]
        let idx = (0..lengths.len())
            .filter(|&i| lengths[i] > 0 && lengths[i] < max_bits)
            .max_by_key(|&i| lengths[i])
            .expect("kraft overfull but all codes already at max length");
        kraft -= unit(lengths[idx]) / 2;
        lengths[idx] += 1;
    }
    // Underfull (possible after the clamp): raise the deepest codes back up.
    while let Some(idx) = (0..lengths.len())
        .filter(|&i| lengths[i] > 1)
        .max_by_key(|&i| lengths[i])
    {
        let gain = unit(lengths[idx]); // moving up one level adds `gain`
        if kraft + gain > budget {
            break;
        }
        kraft += gain;
        lengths[idx] -= 1;
    }
}

/// Reverse the low `len` bits of `code`.
#[inline]
fn reverse_bits(code: u32, len: u8) -> u32 {
    let mut v = code;
    let mut out = 0u32;
    for _ in 0..len {
        out = (out << 1) | (v & 1);
        v >>= 1;
    }
    out
}

/// Encoder-side canonical Huffman code table.
#[derive(Debug, Clone)]
pub struct Encoder {
    /// Pre-reversed code bits per symbol (ready for the LSB-first writer).
    codes: Vec<u32>,
    lengths: Vec<u8>,
}

impl Encoder {
    /// Derive canonical codes from code lengths (RFC 1951 §3.2.2).
    pub fn from_lengths(lengths: &[u8]) -> Encoder {
        let max_len = lengths.iter().cloned().max().unwrap_or(0) as usize;
        let mut bl_count = vec![0u32; max_len + 1];
        for &l in lengths {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        let mut next_code = vec![0u32; max_len + 2];
        let mut code = 0u32;
        for bits in 1..=max_len {
            code = (code + bl_count[bits - 1]) << 1;
            next_code[bits] = code;
        }
        let mut codes = vec![0u32; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                codes[sym] = reverse_bits(next_code[l as usize], l);
                next_code[l as usize] += 1;
            }
        }
        Encoder {
            codes,
            lengths: lengths.to_vec(),
        }
    }

    /// Emit symbol `sym` into the bit stream.
    #[inline]
    pub fn write(&self, w: &mut BitWriter, sym: usize) {
        let len = self.lengths[sym];
        debug_assert!(len > 0, "writing symbol {sym} with no code");
        w.write_bits(self.codes[sym], len as u32);
    }

    /// Code length of `sym` in bits (0 = absent).
    #[inline]
    pub fn length(&self, sym: usize) -> u8 {
        self.lengths[sym]
    }

    /// The code lengths backing this table.
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }
}

/// Decoder-side canonical Huffman table. Decodes one symbol at a time by
/// walking the canonical first-code/offset arrays per bit — simple and
/// allocation-free after construction.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `first_code[l]`: smallest canonical code of length `l` (MSB-first).
    first_code: Vec<u32>,
    /// `first_index[l]`: index into `symbols` of that code.
    first_index: Vec<u32>,
    /// Count of codes at each length.
    counts: Vec<u32>,
    /// Symbols sorted by (length, symbol) — canonical order.
    symbols: Vec<u16>,
    max_len: usize,
}

impl Decoder {
    /// Build a decoding table from code lengths. Rejects over-subscribed
    /// codes (Kraft sum > 1); incomplete codes are accepted (some encoders
    /// emit them for degenerate alphabets).
    pub fn from_lengths(lengths: &[u8]) -> Result<Decoder> {
        let max_len = lengths.iter().cloned().max().unwrap_or(0) as usize;
        if max_len == 0 {
            return Ok(Decoder {
                first_code: vec![],
                first_index: vec![],
                counts: vec![],
                symbols: vec![],
                max_len: 0,
            });
        }
        let mut counts = vec![0u32; max_len + 1];
        for &l in lengths {
            if l > 0 {
                counts[l as usize] += 1;
            }
        }
        // Kraft check.
        let mut left = 1i64;
        for &count in counts.iter().take(max_len + 1).skip(1) {
            left <<= 1;
            left -= count as i64;
            if left < 0 {
                return Err(DeflateError::Corrupt("oversubscribed huffman code"));
            }
        }
        let mut first_code = vec![0u32; max_len + 1];
        let mut first_index = vec![0u32; max_len + 1];
        let mut code = 0u32;
        let mut index = 0u32;
        for bits in 1..=max_len {
            first_code[bits] = code;
            first_index[bits] = index;
            code = (code + counts[bits]) << 1;
            index += counts[bits];
        }
        // Canonical symbol order.
        let mut symbols = vec![0u16; index as usize];
        let mut next = first_index.clone();
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[next[l as usize] as usize] = sym as u16;
                next[l as usize] += 1;
            }
        }
        Ok(Decoder {
            first_code,
            first_index,
            counts,
            symbols,
            max_len,
        })
    }

    /// Decode the next symbol from the bit stream.
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<u16> {
        if self.max_len == 0 {
            return Err(DeflateError::Corrupt("decode with empty huffman table"));
        }
        let mut code = 0u32;
        for bits in 1..=self.max_len {
            code = (code << 1) | r.read_bit()?;
            let count = self.counts[bits];
            let first = self.first_code[bits];
            if count != 0 && code < first + count {
                let idx = self.first_index[bits] + (code - first);
                return Ok(self.symbols[idx as usize]);
            }
        }
        Err(DeflateError::Corrupt("invalid huffman code"))
    }
}

/// Number of stream bits indexing the primary lookup table. Codes no longer
/// than this decode with a single probe; longer codes chase one subtable
/// pointer. 10 bits covers every code of the DEFLATE dynamic tables on
/// typical data (lengths beyond 10 are rare tails).
pub const LUT_BITS: u32 = 10;

const ENTRY_CONSUMED_SHIFT: u32 = 16;
const ENTRY_CONSUMED_MASK: u32 = 0x3F;
const ENTRY_DOUBLE: u32 = 1 << 22;
const ENTRY_SUBTABLE: u32 = 1 << 23;

/// Table-driven canonical Huffman decoder: the next [`LUT_BITS`] stream bits
/// index a flat table whose entries carry the decoded symbol *and* the code
/// length, replacing the [`Decoder`]'s bit-at-a-time walk with one probe.
///
/// Two extra entry kinds accelerate and complete the scheme:
///
/// * **double-literal** entries (built when `pack_pairs` is set) hold two
///   literal symbols whose codes together fit in the primary index, so runs
///   of short literal codes decode two symbols per probe;
/// * **subtable** entries cover codes longer than [`LUT_BITS`] — the primary
///   entry points at a dense subtable indexed by the code's remaining bits.
///
/// Entry layout (`u32`): payload in bits 0..16 (symbol, or `lit1 | lit2<<8`
/// for doubles, or subtable start for pointers), total consumed bits in
/// 16..22 (0 marks an undefined code), flags in 22..24.
#[derive(Debug, Clone)]
pub struct LutDecoder {
    table: Vec<u32>,
    sub: Vec<u32>,
}

impl LutDecoder {
    /// Build the lookup tables from code lengths. Same validation as
    /// [`Decoder::from_lengths`]: over-subscribed codes are rejected,
    /// incomplete codes leave undefined entries that fail at decode time.
    pub fn from_lengths(lengths: &[u8], pack_pairs: bool) -> Result<LutDecoder> {
        let max_len = lengths.iter().cloned().max().unwrap_or(0) as usize;
        let mut table = vec![0u32; 1 << LUT_BITS];
        let mut sub = Vec::new();
        if max_len == 0 {
            return Ok(LutDecoder { table, sub });
        }
        let mut counts = vec![0u32; max_len + 1];
        for &l in lengths {
            if l > 0 {
                counts[l as usize] += 1;
            }
        }
        let mut left = 1i64;
        for &count in counts.iter().take(max_len + 1).skip(1) {
            left <<= 1;
            left -= count as i64;
            if left < 0 {
                return Err(DeflateError::Corrupt("oversubscribed huffman code"));
            }
        }
        // Canonical MSB-first codes, then bit-reverse to the LSB-first
        // pattern the stream actually presents.
        let mut next_code = vec![0u32; max_len + 1];
        let mut code = 0u32;
        for bits in 1..=max_len {
            next_code[bits] = code;
            code = (code + counts[bits]) << 1;
        }
        let lut_bits = LUT_BITS as usize;
        let prefix_mask = (1u32 << LUT_BITS) - 1;
        // Subtable sizing: widest extra-bit count per long-code prefix.
        let mut sub_extra = vec![0u8; 1 << LUT_BITS];
        let mut patterns = vec![0u32; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let l = l as usize;
            let pat = reverse_bits(next_code[l], l as u8);
            next_code[l] += 1;
            patterns[sym] = pat;
            if l > lut_bits {
                let p = (pat & prefix_mask) as usize;
                sub_extra[p] = sub_extra[p].max((l - lut_bits) as u8);
            }
        }
        // Allocate subtables and plant the pointer entries.
        let mut sub_start = vec![0u32; 1 << LUT_BITS];
        for (p, &extra) in sub_extra.iter().enumerate() {
            if extra > 0 {
                sub_start[p] = sub.len() as u32;
                sub.resize(sub.len() + (1usize << extra), 0);
                table[p] =
                    sub_start[p] | (u32::from(extra) << ENTRY_CONSUMED_SHIFT) | ENTRY_SUBTABLE;
            }
        }
        // Fill: every index whose low `l` bits match the pattern decodes sym.
        for (sym, &l) in lengths.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let l = l as usize;
            let pat = patterns[sym] as usize;
            let entry = sym as u32 | ((l as u32) << ENTRY_CONSUMED_SHIFT);
            if l <= lut_bits {
                let mut i = pat;
                while i < table.len() {
                    table[i] = entry;
                    i += 1 << l;
                }
            } else {
                let p = pat & prefix_mask as usize;
                let start = sub_start[p] as usize;
                let extra = sub_extra[p] as usize;
                let mut i = pat >> lut_bits;
                while i < 1 << extra {
                    sub[start + i] = entry;
                    i += 1 << (l - lut_bits);
                }
            }
        }
        if pack_pairs {
            // Second probe-free literal: where a literal's code leaves room
            // in the primary index and the following bits complete another
            // literal, merge both into one entry. Work from a snapshot so
            // pairs never chain into triples.
            let singles = table.clone();
            for (i, slot) in table.iter_mut().enumerate() {
                let e1 = singles[i];
                if e1 & (ENTRY_SUBTABLE | ENTRY_DOUBLE) != 0 {
                    continue;
                }
                let l1 = (e1 >> ENTRY_CONSUMED_SHIFT) & ENTRY_CONSUMED_MASK;
                let s1 = e1 & 0xFFFF;
                if l1 == 0 || l1 >= LUT_BITS || s1 > 255 {
                    continue;
                }
                let e2 = singles[i >> l1];
                if e2 & (ENTRY_SUBTABLE | ENTRY_DOUBLE) != 0 {
                    continue;
                }
                let l2 = (e2 >> ENTRY_CONSUMED_SHIFT) & ENTRY_CONSUMED_MASK;
                let s2 = e2 & 0xFFFF;
                if l2 == 0 || l1 + l2 > LUT_BITS || s2 > 255 {
                    continue;
                }
                *slot = s1 | (s2 << 8) | ((l1 + l2) << ENTRY_CONSUMED_SHIFT) | ENTRY_DOUBLE;
            }
        }
        Ok(LutDecoder { table, sub })
    }

    /// Decode the next entry, consuming its bits. Returns the raw entry so
    /// the caller can branch on [`LutEntry::second_literal`] for packed
    /// pairs. Fails on undefined codes and on codes that would need bits
    /// past the end of the stream.
    #[inline]
    pub fn read_entry(&self, r: &mut BitReader<'_>) -> Result<LutEntry> {
        let idx = r.peek_bits(LUT_BITS) as usize;
        let mut e = self.table[idx];
        if e & ENTRY_SUBTABLE != 0 {
            let extra = (e >> ENTRY_CONSUMED_SHIFT) & ENTRY_CONSUMED_MASK;
            let start = e & 0xFFFF;
            let sub_idx = r.peek_bits(LUT_BITS + extra) >> LUT_BITS;
            e = self.sub[(start + sub_idx) as usize];
        }
        let consumed = (e >> ENTRY_CONSUMED_SHIFT) & ENTRY_CONSUMED_MASK;
        if consumed == 0 {
            return Err(DeflateError::Corrupt("invalid huffman code"));
        }
        if consumed > r.bits_available() {
            return Err(DeflateError::UnexpectedEof);
        }
        r.consume(consumed);
        Ok(LutEntry(e))
    }

    /// Decode one symbol (double-literal entries are never built for plain
    /// symbol streams; this panics in debug if one shows up).
    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let e = self.read_entry(r)?;
        debug_assert!(e.second_literal().is_none());
        Ok(e.symbol())
    }
}

/// One decoded [`LutDecoder`] entry: a symbol, or a pair of literals.
#[derive(Debug, Clone, Copy)]
pub struct LutEntry(u32);

impl LutEntry {
    /// The decoded symbol (for pairs, the first literal).
    #[inline]
    pub fn symbol(self) -> u16 {
        if self.0 & ENTRY_DOUBLE != 0 {
            (self.0 & 0xFF) as u16
        } else {
            (self.0 & 0xFFFF) as u16
        }
    }

    /// The second packed literal, when this entry carries a pair.
    #[inline]
    pub fn second_literal(self) -> Option<u8> {
        if self.0 & ENTRY_DOUBLE != 0 {
            Some(((self.0 >> 8) & 0xFF) as u8)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kraft_ok(lengths: &[u8]) -> bool {
        let max = *lengths.iter().max().unwrap_or(&0) as u32;
        if max == 0 {
            return true;
        }
        let sum: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max - l as u32))
            .sum();
        sum <= 1u64 << max
    }

    #[test]
    fn lengths_for_skewed_freqs() {
        // Very skewed distribution: frequent symbol gets a short code.
        let freqs = [1000u64, 10, 10, 1];
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        assert_eq!(lengths[0], 1);
        assert!(lengths[3] >= lengths[1]);
        assert!(kraft_ok(&lengths));
    }

    #[test]
    fn zero_freq_symbols_are_absent() {
        let freqs = [5u64, 0, 7, 0, 3];
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        assert_eq!(lengths[1], 0);
        assert_eq!(lengths[3], 0);
        assert!(lengths[0] > 0 && lengths[2] > 0 && lengths[4] > 0);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let freqs = [0u64, 42, 0];
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        assert_eq!(lengths, vec![0, 1, 0]);
    }

    #[test]
    fn empty_frequencies() {
        assert_eq!(build_code_lengths(&[0, 0, 0], MAX_BITS), vec![0, 0, 0]);
    }

    #[test]
    fn length_limiting_kicks_in() {
        // Fibonacci-ish frequencies force a degenerate deep tree.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        assert!(lengths.iter().all(|&l| l as usize <= MAX_BITS));
        assert!(kraft_ok(&lengths));
    }

    #[test]
    fn complete_code_after_limiting() {
        // The repaired code should be complete (Kraft sum == 1) so the
        // decoder accepts every bit pattern prefix.
        let mut freqs = vec![0u64; 30];
        let (mut a, mut b) = (1u64, 2u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        let max = *lengths.iter().max().unwrap() as u32;
        let sum: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max - l as u32))
            .sum();
        assert_eq!(sum, 1u64 << max, "limited code should stay complete");
    }

    #[test]
    fn encode_decode_round_trip() {
        let freqs: Vec<u64> = (1..=20).map(|i| i * i).collect();
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        let enc = Encoder::from_lengths(&lengths);
        let dec = Decoder::from_lengths(&lengths).unwrap();

        let msg: Vec<usize> = (0..2000).map(|i| (i * 7 + i / 3) % 20).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &msg {
            assert_eq!(dec.read(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn canonical_codes_match_rfc_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) yield codes
        // 010,011,100,101,110,00,1110,1111.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let enc = Encoder::from_lengths(&lengths);
        let expected = [0b010u32, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111];
        for (sym, &code) in expected.iter().enumerate() {
            let len = lengths[sym];
            assert_eq!(enc.codes[sym], reverse_bits(code, len), "symbol {sym}");
        }
    }

    #[test]
    fn decoder_rejects_oversubscribed() {
        // Three codes of length 1 cannot exist.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn decoder_rejects_garbage_bits_for_incomplete_code() {
        // Single 1-bit code: pattern `1` is undefined.
        let dec = Decoder::from_lengths(&[1, 0]).unwrap();
        let data = [0xFFu8];
        let mut r = BitReader::new(&data);
        assert!(dec.read(&mut r).is_err());
    }

    #[test]
    fn lut_decoder_matches_bitwalk_decoder() {
        // Skewed frequencies force a mix of short and long (> LUT_BITS)
        // codes; both decoders must read identical symbol streams.
        let mut freqs = vec![0u64; 80];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a.saturating_add(b);
            a = b;
            b = c;
        }
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        assert!(
            *lengths.iter().max().unwrap() as u32 > LUT_BITS,
            "test needs codes longer than the primary table"
        );
        let enc = Encoder::from_lengths(&lengths);
        let walk = Decoder::from_lengths(&lengths).unwrap();
        let lut = LutDecoder::from_lengths(&lengths, false).unwrap();

        let msg: Vec<usize> = (0..5000).map(|i| (i * 31 + i / 7) % 80).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r1 = BitReader::new(&bytes);
        let mut r2 = BitReader::new(&bytes);
        for &s in &msg {
            assert_eq!(walk.read(&mut r1).unwrap() as usize, s);
            assert_eq!(lut.read(&mut r2).unwrap() as usize, s);
        }
    }

    #[test]
    fn lut_pair_packing_decodes_two_literals() {
        // A flat literal alphabet gets short codes; pairs must pack and the
        // packed stream must decode to the same sequence.
        let freqs = vec![10u64; 16];
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        let enc = Encoder::from_lengths(&lengths);
        let lut = LutDecoder::from_lengths(&lengths, true).unwrap();
        let msg: Vec<usize> = (0..1000).map(|i| (i * 5) % 16).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut got = Vec::new();
        let mut saw_pair = false;
        while got.len() < msg.len() {
            let e = lut.read_entry(&mut r).unwrap();
            got.push(e.symbol() as usize);
            if let Some(second) = e.second_literal() {
                saw_pair = true;
                got.push(second as usize);
            }
        }
        assert_eq!(got, msg);
        assert!(saw_pair, "short codes should produce packed pairs");
    }

    #[test]
    fn lut_rejects_oversubscribed_and_undefined() {
        assert!(LutDecoder::from_lengths(&[1, 1, 1], false).is_err());
        let lut = LutDecoder::from_lengths(&[1, 0], false).unwrap();
        let data = [0xFFu8];
        let mut r = BitReader::new(&data);
        assert!(lut.read(&mut r).is_err());
    }

    #[test]
    fn entropy_optimality_sanity() {
        // Average code length must be within one bit of the entropy.
        let freqs: Vec<u64> = vec![900, 50, 25, 15, 7, 2, 1];
        let total: u64 = freqs.iter().sum();
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        let avg: f64 = freqs
            .iter()
            .zip(&lengths)
            .map(|(&f, &l)| f as f64 * l as f64)
            .sum::<f64>()
            / total as f64;
        let entropy: f64 = freqs
            .iter()
            .filter(|&&f| f > 0)
            .map(|&f| {
                let p = f as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        assert!(avg < entropy + 1.0, "avg {avg} vs entropy {entropy}");
    }
}
