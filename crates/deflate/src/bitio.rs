//! LSB-first bit streams, as mandated by RFC 1951 §3.1.1: data elements are
//! packed starting from the least significant bit of each byte.

use crate::{DeflateError, Result};

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits not yet flushed to `out`, in the low end of the accumulator.
    acc: u64,
    /// Number of valid bits in `acc` (< 8 after `flush_bytes`).
    nbits: u32,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `count` bits of `value` (LSB-first). The accumulator
    /// drains four bytes at a time: a 32-bit write fits on top of up to 31
    /// pending bits without overflowing the 64-bit accumulator.
    #[inline]
    pub fn write_bits(&mut self, value: u32, count: u32) {
        debug_assert!(count <= 32);
        debug_assert!(count == 32 || u64::from(value) < (1u64 << count));
        self.acc |= u64::from(value) << self.nbits;
        self.nbits += count;
        if self.nbits >= 32 {
            self.out.extend_from_slice(&(self.acc as u32).to_le_bytes());
            self.acc >>= 32;
            self.nbits -= 32;
        }
    }

    /// Pad with zero bits to the next byte boundary (used before stored
    /// blocks and at stream end).
    pub fn align_to_byte(&mut self) {
        while self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits = self.nbits.saturating_sub(8);
        }
    }

    /// Append raw bytes; the writer must be byte-aligned.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(self.nbits, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Number of complete bytes emitted so far (excluding pending bits).
    pub fn byte_len(&self) -> usize {
        self.out.len() + (self.nbits / 8) as usize
    }

    /// Total length in bits including pending bits.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Finish the stream, flushing any pending partial byte.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.out
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next unread byte index.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= u64::from(self.data[self.pos]) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `count` bits (0..=32), LSB-first.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u32> {
        debug_assert!(count <= 32);
        if self.nbits < count {
            self.refill();
            if self.nbits < count {
                return Err(DeflateError::UnexpectedEof);
            }
        }
        let mask = if count == 32 {
            u64::MAX >> 32
        } else {
            (1u64 << count) - 1
        };
        let v = (self.acc & mask) as u32;
        self.acc >>= count;
        self.nbits -= count;
        Ok(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32> {
        self.read_bits(1)
    }

    /// Look at the next `count` bits (0..=32) without consuming them,
    /// zero-padded past end of input. The accumulator keeps unread high bits
    /// at zero, so the padding needs no masking; pair with
    /// [`BitReader::bits_available`] to detect reads past the end.
    #[inline]
    pub fn peek_bits(&mut self, count: u32) -> u32 {
        debug_assert!(count <= 32);
        if self.nbits < count {
            self.refill();
        }
        let mask = if count == 32 {
            u64::MAX >> 32
        } else {
            (1u64 << count) - 1
        };
        (self.acc & mask) as u32
    }

    /// Discard `count` bits previously seen via [`BitReader::peek_bits`].
    /// `count` must not exceed [`BitReader::bits_available`].
    #[inline]
    pub fn consume(&mut self, count: u32) {
        debug_assert!(count <= self.nbits);
        self.acc >>= count;
        self.nbits -= count;
    }

    /// Bits currently buffered in the accumulator (valid after a peek; the
    /// stream may hold more bytes not yet pulled in).
    #[inline]
    pub fn bits_available(&self) -> u32 {
        self.nbits
    }

    /// Discard bits up to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Read `n` raw bytes; the reader must be byte-aligned.
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>> {
        assert_eq!(self.nbits % 8, 0, "read_bytes requires byte alignment");
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if self.nbits >= 8 {
                out.push((self.acc & 0xFF) as u8);
                self.acc >>= 8;
                self.nbits -= 8;
            } else if self.pos < self.data.len() {
                out.push(self.data[self.pos]);
                self.pos += 1;
            } else {
                return Err(DeflateError::UnexpectedEof);
            }
        }
        Ok(out)
    }

    /// Byte offset of the first byte not yet pulled into the accumulator,
    /// adjusted for buffered whole bytes. Valid only at byte alignment.
    pub fn byte_position(&self) -> usize {
        self.pos - (self.nbits / 8) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11110000, 8);
        w.write_bits(0x3FFF, 14);
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0b11110000);
        assert_eq!(r.read_bits(14).unwrap(), 0x3FFF);
        assert_eq!(r.read_bit().unwrap(), 1);
    }

    #[test]
    fn lsb_first_layout() {
        let mut w = BitWriter::new();
        // Writing 1,0,1,1 LSB-first means the first bit lands in bit 0.
        w.write_bits(1, 1);
        w.write_bits(0, 1);
        w.write_bits(1, 1);
        w.write_bits(1, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_1101]);
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_to_byte();
        w.write_bytes(&[0xAB]);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x01, 0xAB]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit().unwrap(), 1);
        r.align_to_byte();
        assert_eq!(r.read_bytes(1).unwrap(), vec![0xAB]);
    }

    #[test]
    fn eof_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bit(), Err(DeflateError::UnexpectedEof));
    }

    #[test]
    fn zero_bit_reads_are_free() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn long_stream_round_trip() {
        let mut w = BitWriter::new();
        let mut expect = Vec::new();
        let mut s = 99u64;
        for _ in 0..10_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let count = 1 + (s % 24) as u32;
            let val = (s >> 32) as u32 & ((1u32 << count) - 1);
            expect.push((val, count));
            w.write_bits(val, count);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (val, count) in expect {
            assert_eq!(r.read_bits(count).unwrap(), val);
        }
    }

    #[test]
    fn bit_len_tracks_pending() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0, 8);
        assert_eq!(w.bit_len(), 11);
        assert_eq!(w.byte_len(), 1);
    }
}
