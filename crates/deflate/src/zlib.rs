//! zlib container (RFC 1950): 2-byte header, DEFLATE body, Adler-32 trailer.
//!
//! On top of the classic single-stream functions this module offers a
//! **multi-member** variant ([`compress_parallel`]): the payload is split
//! into worker strips and each strip is deflated independently into a
//! complete zlib stream; the members are then concatenated. Every member is
//! a fully valid RFC 1950 stream, and [`decompress`] simply loops — so old
//! single-member streams decode unchanged, and multi-member streams decode
//! on any version that loops (forward + backward compatible).

use crate::deflate::{deflate_compress, CompressionLevel};
use crate::inflate::inflate_consumed_bounded;
use crate::{DeflateError, Result};
use rayon::prelude::*;

/// Compute the Adler-32 checksum of `data` (RFC 1950 §8).
///
/// The summation loop lives in `dpz-kernels` (vectorized on AVX2 via the
/// SAD/MADD reduction, scalar NMAX-blocked otherwise).
pub fn adler32(data: &[u8]) -> u32 {
    dpz_kernels::checksum::adler32_update(1, data)
}

/// Compress with the default effort level.
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with_level(data, CompressionLevel::Default)
}

/// Compress into a zlib stream at the given level.
pub fn compress_with_level(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let body = deflate_compress(data, level);
    let mut out = Vec::with_capacity(body.len() + 6);
    // CMF: method 8 (deflate), 32 KiB window (CINFO=7) -> 0x78.
    let cmf: u8 = 0x78;
    // FLG: set FCHECK so (cmf*256 + flg) % 31 == 0, FLEVEL by effort.
    let flevel: u8 = match level {
        CompressionLevel::Store | CompressionLevel::Fast => 0,
        CompressionLevel::Default => 2,
        CompressionLevel::Best => 3,
    };
    let mut flg = flevel << 6;
    let rem = (u16::from(cmf) * 256 + u16::from(flg)) % 31;
    if rem != 0 {
        flg += (31 - rem) as u8;
    }
    out.push(cmf);
    out.push(flg);
    out.extend_from_slice(&body);
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Minimum bytes of raw input per member when splitting for parallel
/// compression. Below this the per-member header/trailer overhead and the
/// lost cross-strip match window outweigh the parallelism, so small payloads
/// stay byte-identical to the single-stream [`compress_with_level`] output.
const MIN_MEMBER_BYTES: usize = 64 * 1024;

/// Compress into one *or more* concatenated zlib members, deflating the
/// members in parallel on the global thread pool.
///
/// The input is split into `current_num_threads()` contiguous strips (each
/// at least `MIN_MEMBER_BYTES` = 64 KiB long); each strip becomes an independent,
/// complete RFC 1950 stream. [`decompress`] concatenates them back
/// transparently. With one worker — or input shorter than two strips — the
/// output is byte-identical to [`compress_with_level`].
pub fn compress_parallel(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let workers = rayon::current_num_threads();
    let members = (data.len() / MIN_MEMBER_BYTES).clamp(1, workers);
    if members <= 1 {
        return compress_with_level(data, level);
    }
    let strip = data.len().div_ceil(members);
    let parts: Vec<Vec<u8>> = data
        .par_chunks(strip)
        .map(|chunk| compress_with_level(chunk, level))
        .collect();
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in &parts {
        out.extend_from_slice(p);
    }
    out
}

/// Decompress one zlib member starting at the beginning of `data`,
/// producing at most `max_out` bytes. Returns the decoded bytes and the
/// member's total encoded length (header + deflate body + trailer).
fn decompress_member(data: &[u8], max_out: usize) -> Result<(Vec<u8>, usize)> {
    if data.len() < 6 {
        return Err(DeflateError::UnexpectedEof);
    }
    let cmf = data[0];
    let flg = data[1];
    if cmf & 0x0F != 8 {
        return Err(DeflateError::BadHeader); // not deflate
    }
    if (u16::from(cmf) * 256 + u16::from(flg)) % 31 != 0 {
        return Err(DeflateError::BadHeader); // FCHECK failed
    }
    if flg & 0x20 != 0 {
        return Err(DeflateError::BadHeader); // FDICT unsupported
    }
    let (out, body_len) = inflate_consumed_bounded(&data[2..data.len() - 4], max_out)?;
    let trailer = 2 + body_len;
    if data.len() < trailer + 4 {
        return Err(DeflateError::UnexpectedEof);
    }
    let stored = u32::from_be_bytes([
        data[trailer],
        data[trailer + 1],
        data[trailer + 2],
        data[trailer + 3],
    ]);
    let actual = adler32(&out);
    if stored != actual {
        return Err(DeflateError::ChecksumMismatch {
            expected: stored,
            actual,
        });
    }
    Ok((out, trailer + 4))
}

/// Decompress a zlib stream — single-member or a concatenation of members
/// (see [`compress_parallel`]) — verifying every header and Adler-32
/// trailer. Single-member streams written by older versions decode exactly
/// as before.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    decompress_bounded(data, usize::MAX)
}

/// [`decompress`] with a hard cap on the total decoded size across all
/// members: the call fails with [`DeflateError::TooLarge`] the moment the
/// output would exceed `max_out` bytes, long before a decompression bomb
/// can exhaust memory. Callers should derive `max_out` from the size the
/// surrounding container *declared* for this payload.
pub fn decompress_bounded(data: &[u8], max_out: usize) -> Result<Vec<u8>> {
    let (mut out, mut pos) = decompress_member(data, max_out)?;
    while pos < data.len() {
        let (mut member, used) = decompress_member(&data[pos..], max_out - out.len())?;
        out.append(&mut member);
        pos += used;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler32_known_vectors() {
        // Reference values from the zlib specification/tools.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"abc"), 0x024d_0127);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler32_long_input_no_overflow() {
        let data = vec![0xFFu8; 1_000_000];
        // Must not panic and must be stable.
        let a = adler32(&data);
        let b = adler32(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn header_fcheck_valid() {
        let z = compress(b"header check");
        assert_eq!((u16::from(z[0]) * 256 + u16::from(z[1])) % 31, 0);
        assert_eq!(z[0] & 0x0F, 8);
    }

    #[test]
    fn round_trip() {
        let data = b"zlib container round trip".repeat(100);
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_wrong_method() {
        let mut z = compress(b"x");
        z[0] = (z[0] & 0xF0) | 0x07; // method 7
        assert!(matches!(decompress(&z), Err(DeflateError::BadHeader)));
    }

    #[test]
    fn rejects_fdict() {
        let mut z = compress(b"x");
        z[1] |= 0x20;
        // Repair FCHECK so only FDICT triggers.
        let rem = (u16::from(z[0]) * 256 + u16::from(z[1] & !0x1F)) % 31;
        z[1] = (z[1] & !0x1F) | ((31 - rem) % 31) as u8;
        assert!(matches!(decompress(&z), Err(DeflateError::BadHeader)));
    }

    #[test]
    fn rejects_short_input() {
        assert_eq!(decompress(&[0x78]), Err(DeflateError::UnexpectedEof));
    }

    fn mixed_payload(n: usize) -> Vec<u8> {
        let mut s = 0x9E3779B9u64;
        (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if i % 3 == 0 {
                    (s >> 32) as u8
                } else {
                    (i % 251) as u8
                }
            })
            .collect()
    }

    #[test]
    fn parallel_small_input_is_byte_identical_to_single_stream() {
        // Below the member threshold the parallel path must not change the
        // bytes at all (the container format stays stable for small blobs).
        let data = mixed_payload(MIN_MEMBER_BYTES - 1);
        assert_eq!(
            compress_parallel(&data, CompressionLevel::Default),
            compress_with_level(&data, CompressionLevel::Default)
        );
    }

    #[test]
    fn parallel_round_trips_large_inputs() {
        for &n in &[
            MIN_MEMBER_BYTES,
            2 * MIN_MEMBER_BYTES + 17,
            5 * MIN_MEMBER_BYTES,
        ] {
            let data = mixed_payload(n);
            let packed = compress_parallel(&data, CompressionLevel::Fast);
            assert_eq!(decompress(&packed).unwrap(), data, "n={n}");
        }
    }

    #[test]
    fn decompress_handles_hand_concatenated_members() {
        // Members written by the plain single-stream encoder, glued
        // together: decompress must see one logical payload regardless of
        // worker count.
        let a = b"first member ".repeat(300);
        let b = b"second member, different content ".repeat(200);
        let c: Vec<u8> = vec![0u8; 10_000];
        let mut glued = compress(&a);
        glued.extend_from_slice(&compress(&b));
        glued.extend_from_slice(&compress(&c));
        let mut expect = a.clone();
        expect.extend_from_slice(&b);
        expect.extend_from_slice(&c);
        assert_eq!(decompress(&glued).unwrap(), expect);
    }

    #[test]
    fn single_member_streams_from_old_writer_still_decode() {
        // `compress_with_level` is the PR-1-era writer; its output must
        // decode byte-identically through the looping decoder.
        let data = mixed_payload(3 * MIN_MEMBER_BYTES);
        let old = compress_with_level(&data, CompressionLevel::Default);
        assert_eq!(decompress(&old).unwrap(), data);
    }

    #[test]
    fn bounded_decompress_caps_across_members() {
        // The cap applies to the *sum* of members, not to each one.
        let a = b"member one ".repeat(50);
        let b = b"member two ".repeat(50);
        let mut glued = compress(&a);
        glued.extend_from_slice(&compress(&b));
        let total = a.len() + b.len();
        let mut expect = a.clone();
        expect.extend_from_slice(&b);
        assert_eq!(decompress_bounded(&glued, total).unwrap(), expect);
        assert!(matches!(
            decompress_bounded(&glued, total - 1),
            Err(DeflateError::TooLarge { .. })
        ));
        assert!(matches!(
            decompress_bounded(&glued, a.len()),
            Err(DeflateError::TooLarge { .. })
        ));
    }

    #[test]
    fn corrupted_second_member_is_detected() {
        let a = b"alpha ".repeat(100);
        let b = b"beta ".repeat(100);
        let first = compress(&a);
        let mut glued = first.clone();
        glued.extend_from_slice(&compress(&b));
        let n = glued.len();
        glued[n - 1] ^= 0xFF; // break member 2's adler trailer
        match decompress(&glued) {
            Err(DeflateError::ChecksumMismatch { .. }) | Err(DeflateError::Corrupt(_)) => {}
            other => panic!("expected checksum/corrupt error, got {other:?}"),
        }
        // Truncated second member: a dangling partial header is an error,
        // not silently ignored trailing bytes.
        let mut trunc = first;
        trunc.extend_from_slice(&[0x78]);
        assert!(decompress(&trunc).is_err());
    }
}
