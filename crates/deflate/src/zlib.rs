//! zlib container (RFC 1950): 2-byte header, DEFLATE body, Adler-32 trailer.

use crate::deflate::{deflate_compress, CompressionLevel};
use crate::inflate::inflate;
use crate::{DeflateError, Result};

/// Adler-32 modulus.
const MOD_ADLER: u32 = 65_521;
/// Largest number of bytes we can accumulate before the s2 sum can overflow.
const NMAX: usize = 5552;

/// Compute the Adler-32 checksum of `data` (RFC 1950 §8).
pub fn adler32(data: &[u8]) -> u32 {
    let mut s1: u32 = 1;
    let mut s2: u32 = 0;
    for chunk in data.chunks(NMAX) {
        for &b in chunk {
            s1 += u32::from(b);
            s2 += s1;
        }
        s1 %= MOD_ADLER;
        s2 %= MOD_ADLER;
    }
    (s2 << 16) | s1
}

/// Compress with the default effort level.
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with_level(data, CompressionLevel::Default)
}

/// Compress into a zlib stream at the given level.
pub fn compress_with_level(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let body = deflate_compress(data, level);
    let mut out = Vec::with_capacity(body.len() + 6);
    // CMF: method 8 (deflate), 32 KiB window (CINFO=7) -> 0x78.
    let cmf: u8 = 0x78;
    // FLG: set FCHECK so (cmf*256 + flg) % 31 == 0, FLEVEL by effort.
    let flevel: u8 = match level {
        CompressionLevel::Store | CompressionLevel::Fast => 0,
        CompressionLevel::Default => 2,
        CompressionLevel::Best => 3,
    };
    let mut flg = flevel << 6;
    let rem = (u16::from(cmf) * 256 + u16::from(flg)) % 31;
    if rem != 0 {
        flg += (31 - rem) as u8;
    }
    out.push(cmf);
    out.push(flg);
    out.extend_from_slice(&body);
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Decompress a zlib stream, verifying the header and Adler-32 trailer.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    if data.len() < 6 {
        return Err(DeflateError::UnexpectedEof);
    }
    let cmf = data[0];
    let flg = data[1];
    if cmf & 0x0F != 8 {
        return Err(DeflateError::BadHeader); // not deflate
    }
    if (u16::from(cmf) * 256 + u16::from(flg)) % 31 != 0 {
        return Err(DeflateError::BadHeader); // FCHECK failed
    }
    if flg & 0x20 != 0 {
        return Err(DeflateError::BadHeader); // FDICT unsupported
    }
    let body = &data[2..data.len() - 4];
    let out = inflate(body)?;
    let stored = u32::from_be_bytes([
        data[data.len() - 4],
        data[data.len() - 3],
        data[data.len() - 2],
        data[data.len() - 1],
    ]);
    let actual = adler32(&out);
    if stored != actual {
        return Err(DeflateError::ChecksumMismatch {
            expected: stored,
            actual,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler32_known_vectors() {
        // Reference values from the zlib specification/tools.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"abc"), 0x024d_0127);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler32_long_input_no_overflow() {
        let data = vec![0xFFu8; 1_000_000];
        // Must not panic and must be stable.
        let a = adler32(&data);
        let b = adler32(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn header_fcheck_valid() {
        let z = compress(b"header check");
        assert_eq!((u16::from(z[0]) * 256 + u16::from(z[1])) % 31, 0);
        assert_eq!(z[0] & 0x0F, 8);
    }

    #[test]
    fn round_trip() {
        let data = b"zlib container round trip".repeat(100);
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_wrong_method() {
        let mut z = compress(b"x");
        z[0] = (z[0] & 0xF0) | 0x07; // method 7
        assert!(matches!(decompress(&z), Err(DeflateError::BadHeader)));
    }

    #[test]
    fn rejects_fdict() {
        let mut z = compress(b"x");
        z[1] |= 0x20;
        // Repair FCHECK so only FDICT triggers.
        let rem = (u16::from(z[0]) * 256 + u16::from(z[1] & !0x1F)) % 31;
        z[1] = (z[1] & !0x1F) | ((31 - rem) % 31) as u8;
        assert!(matches!(decompress(&z), Err(DeflateError::BadHeader)));
    }

    #[test]
    fn rejects_short_input() {
        assert_eq!(decompress(&[0x78]), Err(DeflateError::UnexpectedEof));
    }
}
