//! DEFLATE block encoder (RFC 1951).
//!
//! The input is tokenized once with [`crate::lz77`]; tokens are then grouped
//! into blocks (each covering at most 64 KiB of raw bytes so a *stored*
//! fallback is always representable) and each block is emitted in whichever
//! of the three representations is smallest: stored, fixed Huffman, or
//! dynamic Huffman with the RLE-compressed code-length header.

use crate::bitio::BitWriter;
use crate::huffman::{build_code_lengths, Encoder, MAX_BITS};
use crate::lz77::{tokenize, MatchParams, Token};

/// Compression effort presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionLevel {
    /// No compression: stored blocks only.
    Store,
    /// Short hash chains, greedy matching.
    Fast,
    /// zlib-like default effort.
    Default,
    /// Maximum effort (long chains, lazy matching).
    Best,
}

/// Length code table: lengths 3..=258 map to codes 257..=285 with extra bits.
pub(crate) const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
pub(crate) const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// Distance code table: distances 1..=32768 map to codes 0..=29.
pub(crate) const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
pub(crate) const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Transmission order of the code-length-code lengths (RFC 1951 §3.2.7).
pub(crate) const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Maximum bytes a single block may cover (stored LEN is 16-bit).
const MAX_BLOCK_BYTES: usize = 65_535;

/// Map a match length (3..=258) to `(code offset 0..28, extra value, extra bits)`.
#[inline]
pub(crate) fn length_symbol(len: usize) -> (usize, u32, u8) {
    debug_assert!((3..=258).contains(&len));
    let idx = match LENGTH_BASE.binary_search(&(len as u16)) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    let extra = (len as u16 - LENGTH_BASE[idx]) as u32;
    (idx, extra, LENGTH_EXTRA[idx])
}

/// Map a distance (1..=32768) to `(dist code, extra value, extra bits)`.
#[inline]
pub(crate) fn dist_symbol(dist: usize) -> (usize, u32, u8) {
    debug_assert!((1..=32768).contains(&dist));
    let idx = match DIST_BASE.binary_search(&(dist as u16)) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    let extra = (dist as u16 - DIST_BASE[idx]) as u32;
    (idx, extra, DIST_EXTRA[idx])
}

/// Fixed literal/length code lengths (RFC 1951 §3.2.6).
pub(crate) fn fixed_lit_lengths() -> Vec<u8> {
    let mut l = vec![8u8; 288];
    for v in l.iter_mut().take(256).skip(144) {
        *v = 9;
    }
    for v in l.iter_mut().take(280).skip(256) {
        *v = 7;
    }
    l
}

/// Fixed distance code lengths: all 5 bits.
pub(crate) fn fixed_dist_lengths() -> Vec<u8> {
    vec![5u8; 30]
}

/// Compress `data` into a raw DEFLATE stream.
pub fn deflate_compress(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let mut w = BitWriter::new();
    match level {
        CompressionLevel::Store => {
            write_stored_blocks(&mut w, data);
        }
        _ => {
            let params = match level {
                CompressionLevel::Fast => MatchParams::fast(),
                CompressionLevel::Best => MatchParams::best(),
                _ => MatchParams::default_level(),
            };
            let tokens = tokenize(data, &params);
            write_token_blocks(&mut w, data, &tokens);
        }
    }
    w.finish()
}

/// Emit the whole input as stored blocks (always at least one, so empty
/// input still produces a valid final block).
fn write_stored_blocks(w: &mut BitWriter, data: &[u8]) {
    let mut chunks: Vec<&[u8]> = data.chunks(MAX_BLOCK_BYTES).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    let last = chunks.len() - 1;
    for (i, chunk) in chunks.into_iter().enumerate() {
        write_stored_block(w, chunk, i == last);
    }
}

fn write_stored_block(w: &mut BitWriter, bytes: &[u8], bfinal: bool) {
    w.write_bits(bfinal as u32, 1);
    w.write_bits(0b00, 2); // BTYPE = stored
    w.align_to_byte();
    let len = bytes.len() as u16;
    w.write_bytes(&len.to_le_bytes());
    w.write_bytes(&(!len).to_le_bytes());
    w.write_bytes(bytes);
}

/// A contiguous run of tokens plus the byte span of input it covers.
struct BlockSlice<'t> {
    tokens: &'t [Token],
    byte_start: usize,
    byte_end: usize,
}

/// Group tokens into blocks covering at most `MAX_BLOCK_BYTES` each.
fn split_blocks<'t>(tokens: &'t [Token]) -> Vec<BlockSlice<'t>> {
    let mut blocks = Vec::new();
    let mut start_tok = 0usize;
    let mut start_byte = 0usize;
    let mut byte = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        let tlen = match t {
            Token::Literal(_) => 1,
            Token::Match { len, .. } => *len as usize,
        };
        if byte + tlen - start_byte > MAX_BLOCK_BYTES {
            blocks.push(BlockSlice {
                tokens: &tokens[start_tok..i],
                byte_start: start_byte,
                byte_end: byte,
            });
            start_tok = i;
            start_byte = byte;
        }
        byte += tlen;
    }
    blocks.push(BlockSlice {
        tokens: &tokens[start_tok..],
        byte_start: start_byte,
        byte_end: byte,
    });
    blocks
}

fn write_token_blocks(w: &mut BitWriter, data: &[u8], tokens: &[Token]) {
    let blocks = split_blocks(tokens);
    let last = blocks.len() - 1;
    for (i, block) in blocks.iter().enumerate() {
        write_best_block(w, data, block, i == last);
    }
}

/// Histogram of literal/length and distance symbols for a token run.
struct Histogram {
    lit: [u64; 288],
    dist: [u64; 30],
    /// Total extra bits required by the matches themselves.
    extra_bits: u64,
}

fn histogram(tokens: &[Token]) -> Histogram {
    let mut h = Histogram {
        lit: [0; 288],
        dist: [0; 30],
        extra_bits: 0,
    };
    // Literals dominate DPZ token streams (quantized indices rarely repeat
    // at match length), so batch them through the unrolled multi-table
    // byte-histogram kernel instead of bumping one counter per token.
    let mut batch = [0u8; 1024];
    let mut n = 0usize;
    let flush = |h: &mut Histogram, bytes: &[u8]| {
        let lit: &mut [u64; 256] = (&mut h.lit[..256]).try_into().expect("256-entry prefix");
        dpz_kernels::checksum::byte_histogram(bytes, lit);
    };
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                batch[n] = b;
                n += 1;
                if n == batch.len() {
                    flush(&mut h, &batch);
                    n = 0;
                }
            }
            Token::Match { len, dist } => {
                let (lc, _, le) = length_symbol(len as usize);
                let (dc, _, de) = dist_symbol(dist as usize);
                h.lit[257 + lc] += 1;
                h.dist[dc] += 1;
                h.extra_bits += u64::from(le) + u64::from(de);
            }
        }
    }
    if n > 0 {
        flush(&mut h, &batch[..n]);
    }
    h.lit[EOB] += 1;
    h
}

/// Cost in bits of coding the histogram with the given tables.
fn body_cost(h: &Histogram, lit_len: &[u8], dist_len: &[u8]) -> u64 {
    let mut bits = h.extra_bits;
    // The tables may be trimmed to the last used symbol, so only index them
    // for symbols that actually occur.
    for (sym, &f) in h.lit.iter().enumerate() {
        if f > 0 {
            bits += f * u64::from(lit_len[sym]);
        }
    }
    for (sym, &f) in h.dist.iter().enumerate() {
        if f > 0 {
            bits += f * u64::from(dist_len[sym]);
        }
    }
    bits
}

/// RLE-compress the concatenated code-length sequence using symbols 16/17/18
/// (RFC 1951 §3.2.7). Returns `(symbol, extra value, extra bits)` triples.
fn rle_code_lengths(lengths: &[u8]) -> Vec<(u8, u32, u8)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < lengths.len() {
        let v = lengths[i];
        let mut run = 1usize;
        while i + run < lengths.len() && lengths[i + run] == v {
            run += 1;
        }
        if v == 0 {
            let mut left = run;
            while left >= 11 {
                let take = left.min(138);
                out.push((18, (take - 11) as u32, 7));
                left -= take;
            }
            if left >= 3 {
                out.push((17, (left - 3) as u32, 3));
                left = 0;
            }
            for _ in 0..left {
                out.push((0, 0, 0));
            }
        } else {
            out.push((v, 0, 0));
            let mut left = run - 1;
            while left >= 3 {
                let take = left.min(6);
                out.push((16, (take - 3) as u32, 2));
                left -= take;
            }
            for _ in 0..left {
                out.push((v, 0, 0));
            }
        }
        i += run;
    }
    out
}

/// Everything needed to emit a dynamic-Huffman block, plus its exact bit cost.
struct DynamicPlan {
    lit_lengths: Vec<u8>,
    dist_lengths: Vec<u8>,
    rle: Vec<(u8, u32, u8)>,
    clc_lengths: Vec<u8>,
    hclen: usize,
    header_bits: u64,
}

fn plan_dynamic(h: &Histogram) -> DynamicPlan {
    let lit_lengths_full = build_code_lengths(&h.lit, MAX_BITS);
    let dist_lengths_full = build_code_lengths(&h.dist, MAX_BITS);

    // Trim trailing zeros, respecting the minimum counts (257 lit, 1 dist).
    let hlit = lit_lengths_full
        .iter()
        .rposition(|&l| l > 0)
        .map(|p| p + 1)
        .unwrap_or(0)
        .max(257);
    let hdist = dist_lengths_full
        .iter()
        .rposition(|&l| l > 0)
        .map(|p| p + 1)
        .unwrap_or(0)
        .max(1);
    let lit_lengths = lit_lengths_full[..hlit].to_vec();
    let dist_lengths = dist_lengths_full[..hdist].to_vec();

    // RLE over the concatenated sequence.
    let mut all = lit_lengths.clone();
    all.extend_from_slice(&dist_lengths);
    let rle = rle_code_lengths(&all);

    // Code-length-code table over the 19 RLE symbols (max 7 bits).
    let mut clc_freq = [0u64; 19];
    for &(sym, _, _) in &rle {
        clc_freq[sym as usize] += 1;
    }
    let clc_lengths = build_code_lengths(&clc_freq, 7);
    let hclen = CLC_ORDER
        .iter()
        .rposition(|&s| clc_lengths[s] > 0)
        .map(|p| p + 1)
        .unwrap_or(0)
        .max(4);

    let mut header_bits = 5 + 5 + 4 + 3 * hclen as u64;
    for &(sym, _, eb) in &rle {
        header_bits += u64::from(clc_lengths[sym as usize]) + u64::from(eb);
    }
    DynamicPlan {
        lit_lengths,
        dist_lengths,
        rle,
        clc_lengths,
        hclen,
        header_bits,
    }
}

fn write_best_block(w: &mut BitWriter, data: &[u8], block: &BlockSlice<'_>, bfinal: bool) {
    let h = histogram(block.tokens);
    let plan = plan_dynamic(&h);

    let fixed_lit = fixed_lit_lengths();
    let fixed_dist = fixed_dist_lengths();
    let cost_fixed = 3 + body_cost(&h, &fixed_lit, &fixed_dist);
    let cost_dynamic = 3 + plan.header_bits + body_cost(&h, &plan.lit_lengths, &plan.dist_lengths);
    let raw = &data[block.byte_start..block.byte_end];
    // Stored: header + alignment (worst case 7 bits) + 32-bit LEN/NLEN + body.
    let cost_stored = 3 + 7 + 32 + 8 * raw.len() as u64;

    if cost_stored < cost_fixed && cost_stored < cost_dynamic {
        write_stored_block(w, raw, bfinal);
        return;
    }
    w.write_bits(bfinal as u32, 1);
    if cost_fixed <= cost_dynamic {
        w.write_bits(0b01, 2); // BTYPE = fixed
        let lit_enc = Encoder::from_lengths(&fixed_lit);
        let dist_enc = Encoder::from_lengths(&fixed_dist);
        write_block_body(w, block.tokens, &lit_enc, &dist_enc);
    } else {
        w.write_bits(0b10, 2); // BTYPE = dynamic
        w.write_bits((plan.lit_lengths.len() - 257) as u32, 5);
        w.write_bits((plan.dist_lengths.len() - 1) as u32, 5);
        w.write_bits((plan.hclen - 4) as u32, 4);
        for &s in CLC_ORDER.iter().take(plan.hclen) {
            w.write_bits(u32::from(plan.clc_lengths[s]), 3);
        }
        let clc_enc = Encoder::from_lengths(&plan.clc_lengths);
        for &(sym, extra, eb) in &plan.rle {
            clc_enc.write(w, sym as usize);
            if eb > 0 {
                w.write_bits(extra, u32::from(eb));
            }
        }
        let lit_enc = Encoder::from_lengths(&plan.lit_lengths);
        let dist_enc = Encoder::from_lengths(&plan.dist_lengths);
        write_block_body(w, block.tokens, &lit_enc, &dist_enc);
    }
}

fn write_block_body(w: &mut BitWriter, tokens: &[Token], lit: &Encoder, dist: &Encoder) {
    for t in tokens {
        match *t {
            Token::Literal(b) => lit.write(w, b as usize),
            Token::Match { len, dist: d } => {
                let (lc, lx, le) = length_symbol(len as usize);
                lit.write(w, 257 + lc);
                if le > 0 {
                    w.write_bits(lx, u32::from(le));
                }
                let (dc, dx, de) = dist_symbol(d as usize);
                dist.write(w, dc);
                if de > 0 {
                    w.write_bits(dx, u32::from(de));
                }
            }
        }
    }
    lit.write(w, EOB);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    fn roundtrip(data: &[u8], level: CompressionLevel) -> Vec<u8> {
        let packed = deflate_compress(data, level);
        let out = inflate(&packed).expect("inflate failed");
        assert_eq!(out, data);
        packed
    }

    #[test]
    fn length_symbol_boundaries() {
        assert_eq!(length_symbol(3), (0, 0, 0));
        assert_eq!(length_symbol(10), (7, 0, 0));
        assert_eq!(length_symbol(11), (8, 0, 1));
        assert_eq!(length_symbol(12), (8, 1, 1));
        assert_eq!(length_symbol(257), (27, 30, 5));
        assert_eq!(length_symbol(258), (28, 0, 0));
    }

    #[test]
    fn dist_symbol_boundaries() {
        assert_eq!(dist_symbol(1), (0, 0, 0));
        assert_eq!(dist_symbol(4), (3, 0, 0));
        assert_eq!(dist_symbol(5), (4, 0, 1));
        assert_eq!(dist_symbol(6), (4, 1, 1));
        assert_eq!(dist_symbol(32768), (29, 8191, 13));
    }

    #[test]
    fn rle_handles_long_zero_runs() {
        let mut lens = vec![0u8; 150];
        lens.push(5);
        let rle = rle_code_lengths(&lens);
        // 150 zeros = one 138-run + one 12-run (or equivalent), then the 5.
        let zeros: usize = rle
            .iter()
            .map(|&(s, x, _)| match s {
                18 => 11 + x as usize,
                17 => 3 + x as usize,
                0 => 1,
                _ => 0,
            })
            .sum();
        assert_eq!(zeros, 150);
        assert_eq!(rle.last().unwrap().0, 5);
    }

    #[test]
    fn rle_handles_value_repeats() {
        let lens = vec![7u8; 10];
        let rle = rle_code_lengths(&lens);
        assert_eq!(rle[0].0, 7);
        let repeated: usize = rle
            .iter()
            .map(|&(s, x, _)| match s {
                16 => 3 + x as usize,
                7 => 1,
                _ => 0,
            })
            .sum();
        assert_eq!(repeated, 10);
    }

    #[test]
    fn stored_only_level() {
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        let packed = roundtrip(&data, CompressionLevel::Store);
        // Stored framing adds ~5 bytes per 64 KiB block.
        assert!(packed.len() >= data.len());
        assert!(packed.len() < data.len() + 64);
    }

    #[test]
    fn empty_input_valid_stream() {
        roundtrip(&[], CompressionLevel::Default);
        roundtrip(&[], CompressionLevel::Store);
    }

    #[test]
    fn single_byte() {
        roundtrip(&[0x42], CompressionLevel::Default);
    }

    #[test]
    fn text_compresses_well() {
        let data = "incompressible is a strange word for compressors. "
            .repeat(200)
            .into_bytes();
        let packed = roundtrip(&data, CompressionLevel::Default);
        assert!(
            packed.len() * 5 < data.len(),
            "{} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn random_data_falls_back_near_stored() {
        let mut s = 424242u64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 17) as u8
            })
            .collect();
        let packed = roundtrip(&data, CompressionLevel::Default);
        // Must not blow up on incompressible input.
        assert!(packed.len() < data.len() + 1024);
    }

    #[test]
    fn multi_block_input() {
        // > 64 KiB of compressible data forces multiple blocks.
        let data = b"0123456789abcdef".repeat(20_000);
        roundtrip(&data, CompressionLevel::Fast);
        roundtrip(&data, CompressionLevel::Best);
    }

    #[test]
    fn fixed_tables_match_rfc_shape() {
        let lit = fixed_lit_lengths();
        assert_eq!(lit[0], 8);
        assert_eq!(lit[143], 8);
        assert_eq!(lit[144], 9);
        assert_eq!(lit[255], 9);
        assert_eq!(lit[256], 7);
        assert_eq!(lit[279], 7);
        assert_eq!(lit[280], 8);
        assert_eq!(lit[287], 8);
        assert!(fixed_dist_lengths().iter().all(|&l| l == 5));
    }
}
