//! LZ77 string matching with hash chains (the zlib approach): a rolling
//! 3-byte hash indexes chains of previous positions inside a 32 KiB window;
//! greedy matching with one-step *lazy evaluation* defers a match when the
//! next position starts a longer one.

/// DEFLATE window size: matches may reach at most this far back.
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Minimum match length worth encoding.
pub const MIN_MATCH: usize = 3;
/// Maximum match length DEFLATE can represent.
pub const MAX_MATCH: usize = 258;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes starting `dist` bytes back.
    Match {
        /// Match length, `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Distance, `1..=WINDOW_SIZE`.
        dist: u16,
    },
}

/// Matcher effort knobs (correspond to zlib's level presets).
#[derive(Debug, Clone, Copy)]
pub struct MatchParams {
    /// Maximum chain positions examined per match attempt.
    pub max_chain: usize,
    /// Stop early once a match at least this long is found.
    pub good_enough: usize,
    /// Enable one-step lazy matching.
    pub lazy: bool,
    /// Give up on a chain after this many candidates in a row fail to
    /// improve the best match (libdeflate-style stall cutoff). On highly
    /// repetitive data chains run deep but the best match is almost always
    /// found near the head; walking the remainder costs most of the encode
    /// time for a fraction of a percent of ratio.
    pub max_stale: usize,
}

impl MatchParams {
    /// Fast: short chains, no lazy matching.
    pub fn fast() -> Self {
        MatchParams {
            max_chain: 16,
            good_enough: 16,
            lazy: false,
            max_stale: 16,
        }
    }

    /// Balanced default.
    pub fn default_level() -> Self {
        MatchParams {
            max_chain: 128,
            good_enough: 64,
            lazy: true,
            max_stale: 12,
        }
    }

    /// Thorough: long chains, lazy matching.
    pub fn best() -> Self {
        MatchParams {
            max_chain: 1024,
            good_enough: 258,
            lazy: true,
            max_stale: 48,
        }
    }
}

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    let v =
        u32::from(data[pos]) | (u32::from(data[pos + 1]) << 8) | (u32::from(data[pos + 2]) << 16);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain matcher state.
struct Chains {
    /// head[h] = most recent position with hash h (+1; 0 = empty).
    head: Vec<u32>,
    /// prev[pos % WINDOW] = previous position with the same hash (+1).
    prev: Vec<u32>,
}

impl Chains {
    fn new() -> Self {
        Chains {
            head: vec![0; HASH_SIZE],
            prev: vec![0; WINDOW_SIZE],
        }
    }

    #[inline]
    fn insert(&mut self, data: &[u8], pos: usize) {
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            self.prev[pos % WINDOW_SIZE] = self.head[h];
            self.head[h] = pos as u32 + 1;
        }
    }

    /// Longest match for `pos`, returning `(len, dist)`.
    fn find(&self, data: &[u8], pos: usize, params: &MatchParams) -> Option<(usize, usize)> {
        if pos + MIN_MATCH > data.len() {
            return None;
        }
        let max_len = MAX_MATCH.min(data.len() - pos);
        let h = hash3(data, pos);
        let mut cand = self.head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = params.max_chain;
        let mut stale = params.max_stale;
        while cand != 0 && chain > 0 && stale > 0 {
            let cpos = (cand - 1) as usize;
            if cpos >= pos || pos - cpos > WINDOW_SIZE {
                break;
            }
            // Check the byte that would extend the current best first — a
            // cheap rejection for most chain entries.
            if data[cpos + best_len] == data[pos + best_len] {
                let len = dpz_kernels::matchlen::match_len(&data[cpos..], &data[pos..], max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cpos;
                    if len >= params.good_enough || len == max_len {
                        break;
                    }
                    stale = params.max_stale;
                }
            }
            cand = self.prev[cpos % WINDOW_SIZE];
            chain -= 1;
            stale -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// Tokenize `data` into literals and matches.
pub fn tokenize(data: &[u8], params: &MatchParams) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 3 + 16);
    if data.is_empty() {
        return tokens;
    }
    let mut chains = Chains::new();
    let mut pos = 0usize;
    // Every position below `ins` has been added to the hash chains exactly
    // once; the loop advances `ins` to `pos` after each token decision.
    let mut ins = 0usize;
    // Consecutive positions that produced no match. Long runs mean the
    // input is locally incompressible; probing every position there burns
    // most of the encode time for nothing, so stride over such stretches
    // (hash insertion still happens for every position, only the match
    // *search* is skipped; a stride is capped so re-synchronisation after
    // the stretch ends loses at most a few match starts).
    let mut miss_run = 0usize;
    while pos < data.len() {
        if miss_run >= 32 {
            let stride = (miss_run >> 5).min(16).min(data.len() - pos);
            for _ in 0..stride {
                tokens.push(Token::Literal(data[pos]));
                pos += 1;
            }
            while ins < pos {
                chains.insert(data, ins);
                ins += 1;
            }
            if pos == data.len() {
                break;
            }
        }
        match chains.find(data, pos, params) {
            Some((mut len, mut dist)) => {
                miss_run = 0;
                // Lazy evaluation: if the match starting at pos+1 is longer,
                // emit a literal and take the later match instead.
                if params.lazy && len < params.good_enough && pos + 1 < data.len() {
                    chains.insert(data, pos);
                    ins = pos + 1;
                    if let Some((len2, dist2)) = chains.find(data, pos + 1, params) {
                        if len2 > len {
                            tokens.push(Token::Literal(data[pos]));
                            pos += 1;
                            len = len2;
                            dist = dist2;
                        }
                    }
                }
                tokens.push(Token::Match {
                    len: len as u16,
                    dist: dist as u16,
                });
                pos += len;
            }
            None => {
                tokens.push(Token::Literal(data[pos]));
                pos += 1;
                miss_run += 1;
            }
        }
        while ins < pos {
            chains.insert(data, ins);
            ins += 1;
        }
    }
    tokens
}

/// Expand tokens back into bytes (the LZ77 inverse; used by tests and by the
/// inflate integration tests as an oracle).
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], params: &MatchParams) {
        let tokens = tokenize(data, params);
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize(&[], &MatchParams::default_level()).is_empty());
    }

    #[test]
    fn all_literals_for_short_input() {
        let tokens = tokenize(b"ab", &MatchParams::default_level());
        assert_eq!(tokens, vec![Token::Literal(b'a'), Token::Literal(b'b')]);
    }

    #[test]
    fn repeated_pattern_produces_matches() {
        let data = b"abcabcabcabcabcabc";
        let tokens = tokenize(data, &MatchParams::default_level());
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one match token: {tokens:?}"
        );
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn overlapping_match_rle() {
        // "aaaa..." compresses to one literal + one overlapping match with
        // dist 1 — the classic LZ77 RLE trick.
        let data = vec![b'a'; 100];
        let tokens = tokenize(&data, &MatchParams::default_level());
        assert!(
            tokens.len() <= 3,
            "RLE should need few tokens: {}",
            tokens.len()
        );
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn round_trip_various_inputs() {
        let mut s = 7u64;
        let noisy: Vec<u8> = (0..20_000)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 40) as u8 % 7 // small alphabet: lots of matches
            })
            .collect();
        for params in [
            MatchParams::fast(),
            MatchParams::default_level(),
            MatchParams::best(),
        ] {
            roundtrip(&noisy, &params);
            roundtrip(b"the quick brown fox", &params);
            roundtrip(&vec![0u8; 70_000], &params);
        }
    }

    #[test]
    fn matches_respect_window() {
        // A repeat separated by more than WINDOW_SIZE must not be matched.
        let mut data = b"UNIQUEPREFIX0123456789".to_vec();
        data.extend(std::iter::repeat_n(0xEEu8, WINDOW_SIZE + 100));
        data.extend_from_slice(b"UNIQUEPREFIX0123456789");
        let tokens = tokenize(&data, &MatchParams::best());
        assert_eq!(expand(&tokens), data);
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!((*dist as usize) <= WINDOW_SIZE);
            }
        }
    }

    #[test]
    fn match_lengths_in_bounds() {
        let data: Vec<u8> = (0..5000).map(|i| ((i / 13) % 11) as u8).collect();
        for t in tokenize(&data, &MatchParams::best()) {
            if let Token::Match { len, dist } = t {
                assert!((len as usize) >= MIN_MATCH && (len as usize) <= MAX_MATCH);
                assert!(dist >= 1);
            }
        }
    }

    #[test]
    fn lazy_matching_round_trip() {
        // Construct input where lazy matching matters: a short match at pos
        // followed by a longer one at pos+1.
        let data = b"xabcdeyabcdefzzzabcdefqq".to_vec();
        roundtrip(&data, &MatchParams::default_level());
        roundtrip(
            &data,
            &MatchParams {
                lazy: false,
                ..MatchParams::default_level()
            },
        );
    }

    #[test]
    fn long_repeats_capped_at_max_match() {
        let data = vec![5u8; 3 * MAX_MATCH + 17];
        let tokens = tokenize(&data, &MatchParams::default_level());
        assert_eq!(expand(&tokens), data);
    }
}
