//! Property tests: compress ∘ decompress must be the identity for arbitrary
//! byte strings at every level, and the decoder must never panic on garbage.
//! The tANS backend is held to the same contract.

use dpz_deflate::{compress_with_level, decompress, tans, CompressionLevel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        for level in [
            CompressionLevel::Store,
            CompressionLevel::Fast,
            CompressionLevel::Default,
            CompressionLevel::Best,
        ] {
            let packed = compress_with_level(&data, level);
            let out = decompress(&packed).expect("decompress of own output");
            prop_assert_eq!(&out, &data);
        }
    }

    #[test]
    fn roundtrip_structured_bytes(
        seed in any::<u64>(),
        run_len in 1usize..500,
        alphabet in 1u16..40,
    ) {
        // Runs of a small alphabet: the regime DPZ's quantized indices live in.
        let mut s = seed | 1;
        let mut data = Vec::new();
        while data.len() < 30_000 {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let b = (s % u64::from(alphabet)) as u8;
            let run = 1 + (s >> 32) as usize % run_len;
            data.extend(std::iter::repeat_n(b, run));
        }
        let packed = compress_with_level(&data, CompressionLevel::Default);
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..4_096)) {
        // Any result is fine; panicking or looping forever is not.
        let _ = decompress(&data);
    }

    #[test]
    fn bit_flip_never_panics(data in proptest::collection::vec(any::<u8>(), 1..4_096), flip in any::<usize>()) {
        let mut packed = compress_with_level(&data, CompressionLevel::Default);
        let n = packed.len();
        packed[flip % n] ^= 1 << (flip % 8);
        // Either decodes to *something* or errors — must not panic.
        let _ = decompress(&packed);
    }

    #[test]
    fn tans_roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let packed = tans::compress(&data);
        let out = tans::decompress_bounded(&packed, data.len()).expect("decode of own output");
        prop_assert_eq!(&out, &data);
    }

    #[test]
    fn tans_roundtrip_skewed_bytes(
        seed in any::<u64>(),
        run_len in 1usize..500,
        alphabet in 1u16..40,
    ) {
        // Small-alphabet runs: the concentrated histograms the container's
        // index sections feed the coder, where normalization has to squeeze
        // many rare symbols into the table.
        let mut s = seed | 1;
        let mut data = Vec::new();
        while data.len() < 30_000 {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let b = (s % u64::from(alphabet)) as u8;
            let run = 1 + (s >> 32) as usize % run_len;
            data.extend(std::iter::repeat_n(b, run));
        }
        let packed = tans::compress(&data);
        prop_assert_eq!(tans::decompress_bounded(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn tans_decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..4_096)) {
        let _ = tans::decompress_bounded(&data, 1 << 20);
    }

    #[test]
    fn tans_bit_flip_never_panics(data in proptest::collection::vec(any::<u8>(), 1..4_096), flip in any::<usize>()) {
        let mut packed = tans::compress(&data);
        let n = packed.len();
        packed[flip % n] ^= 1 << (flip % 8);
        let _ = tans::decompress_bounded(&packed, 1 << 20);
    }
}
