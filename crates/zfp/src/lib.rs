//! # dpz-zfp
//!
//! A ZFP-style transform-based lossy compressor — the second baseline in the
//! DPZ paper's evaluation (ZFP v0.5.5). Re-implemented from the published
//! algorithm (Lindstrom, "Fixed-Rate Compressed Floating-Point Arrays"):
//!
//! 1. **Block partitioning** ([`block`]): the d-dimensional array is cut
//!    into `4^d` blocks; partial edge blocks are padded by replication.
//! 2. **Block-floating-point + decorrelating transform** ([`transform`]):
//!    each block is aligned to its largest exponent, converted to fixed
//!    point, and run through ZFP's reversible integer lifting transform
//!    along each dimension, then reordered by total sequency so energy
//!    concentrates toward the front.
//! 3. **Embedded coding** ([`codec`]): coefficients map to negabinary and
//!    are emitted bit-plane by bit-plane with ZFP's adaptive group testing,
//!    so truncating low planes (the `FixedPrecision` / `FixedAccuracy`
//!    modes) degrades quality gracefully.
//!
//! Differences from the reference implementation are intentional and
//! documented in DESIGN.md: fixed-point uses 28 fraction bits with `i64`
//! intermediates (no wrapping arithmetic), the per-block header stores a
//! plain 16-bit exponent, and the fixed-rate mode is not exposed (the
//! paper's figures sweep accuracy/precision).

#![warn(missing_docs)]

pub mod block;
pub mod codec;
pub mod transform;

/// Compression mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZfpMode {
    /// Keep the top `precision` bit planes of every block (1..=32).
    FixedPrecision(u32),
    /// Choose per-block precision so the reconstruction error is on the
    /// order of `tolerance` (absolute).
    FixedAccuracy(f64),
    /// Spend exactly `rate` bits per value: every block is coded (and
    /// zero-padded) to the same bit budget — zfp's hallmark mode, enabling
    /// random access and exactly predictable storage.
    FixedRate(f64),
}

/// Errors from ZFP decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZfpError {
    /// Malformed container or bitstream.
    Corrupt(&'static str),
}

impl std::fmt::Display for ZfpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZfpError::Corrupt(w) => write!(f, "corrupt ZFP stream: {w}"),
        }
    }
}

impl std::error::Error for ZfpError {}

pub use codec::{compress, decompress};

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_3d(n: usize) -> Vec<f32> {
        (0..n * n * n)
            .map(|i| {
                let x = (i / (n * n)) as f32 / n as f32;
                let y = ((i / n) % n) as f32 / n as f32;
                let z = (i % n) as f32 / n as f32;
                (6.3 * x).sin() * (3.2 * y).cos() + z * z
            })
            .collect()
    }

    #[test]
    fn high_precision_is_nearly_lossless() {
        let data = smooth_3d(12);
        let packed = compress(&data, &[12, 12, 12], ZfpMode::FixedPrecision(30));
        let (out, dims) = decompress(&packed).unwrap();
        assert_eq!(dims, vec![12, 12, 12]);
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn precision_controls_rate_and_quality() {
        let data = smooth_3d(16);
        let mut last_size = usize::MAX;
        let mut last_err = 0.0f64;
        for prec in [24u32, 16, 8] {
            let packed = compress(&data, &[16, 16, 16], ZfpMode::FixedPrecision(prec));
            let (out, _) = decompress(&packed).unwrap();
            let err = data
                .iter()
                .zip(&out)
                .map(|(a, b)| (f64::from(*a) - f64::from(*b)).abs())
                .fold(0.0, f64::max);
            assert!(packed.len() < last_size, "size must fall with precision");
            assert!(err >= last_err, "error must rise as precision falls");
            last_size = packed.len();
            last_err = err;
        }
    }

    #[test]
    fn fixed_accuracy_tracks_tolerance() {
        let data = smooth_3d(16);
        for tol in [1e-1, 1e-3] {
            let packed = compress(&data, &[16, 16, 16], ZfpMode::FixedAccuracy(tol));
            let (out, _) = decompress(&packed).unwrap();
            let max_err = data
                .iter()
                .zip(&out)
                .map(|(a, b)| (f64::from(*a) - f64::from(*b)).abs())
                .fold(0.0, f64::max);
            // Accuracy mode is tolerance-*guided*; allow a small factor.
            assert!(max_err <= tol * 4.0, "tol {tol}: max_err {max_err}");
        }
    }

    #[test]
    fn smooth_data_compresses() {
        let data = smooth_3d(16);
        let packed = compress(&data, &[16, 16, 16], ZfpMode::FixedAccuracy(1e-3));
        let cr = (data.len() * 4) as f64 / packed.len() as f64;
        assert!(cr > 3.0, "expected >3x on smooth data, got {cr:.2}");
    }

    #[test]
    fn fixed_rate_hits_the_budget_exactly() {
        let data = smooth_3d(16); // 64 blocks of 64 values
        for rate in [2.0f64, 4.0, 8.0] {
            let packed = compress(&data, &[16, 16, 16], ZfpMode::FixedRate(rate));
            // Container overhead: magic(4)+ndims(1)+dims(24)+mode(9)+len(8).
            let payload = packed.len() - 46;
            let expect_bits = (rate * 64.0).round() as usize * 64;
            let expect_bytes = expect_bits.div_ceil(8);
            assert!(
                (payload as i64 - expect_bytes as i64).abs() <= 8,
                "rate {rate}: payload {payload} vs expected {expect_bytes}"
            );
            let (out, _) = decompress(&packed).unwrap();
            assert_eq!(out.len(), data.len());
        }
    }

    #[test]
    fn fixed_rate_quality_scales_with_rate() {
        let data = smooth_3d(16);
        let mut last_err = f64::INFINITY;
        for rate in [2.0f64, 6.0, 12.0] {
            let packed = compress(&data, &[16, 16, 16], ZfpMode::FixedRate(rate));
            let (out, _) = decompress(&packed).unwrap();
            let err: f64 = data
                .iter()
                .zip(&out)
                .map(|(a, b)| {
                    let d = f64::from(*a) - f64::from(*b);
                    d * d
                })
                .sum::<f64>()
                / data.len() as f64;
            assert!(err < last_err, "rate {rate}: mse {err} !< {last_err}");
            last_err = err;
        }
    }

    #[test]
    fn fixed_rate_zero_blocks_padded() {
        let data = vec![0.0f32; 1024];
        let rate = 4.0;
        let packed = compress(&data, &[1024], ZfpMode::FixedRate(rate));
        let (out, _) = decompress(&packed).unwrap();
        assert!(out.iter().all(|&v| v == 0.0));
        // Fixed rate means zero data still costs the budget (256 blocks at
        // the clamped minimum block size).
        assert!(packed.len() > 256 * 2);
    }

    #[test]
    fn non_multiple_of_four_dims() {
        let data: Vec<f32> = (0..7 * 9).map(|i| (i as f32 * 0.1).sin()).collect();
        let packed = compress(&data, &[7, 9], ZfpMode::FixedPrecision(26));
        let (out, dims) = decompress(&packed).unwrap();
        assert_eq!(dims, vec![7, 9]);
        assert_eq!(out.len(), data.len());
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}
