//! Embedded bit-plane codec and the ZFP container.
//!
//! Transformed coefficients are mapped to **negabinary** (so sign
//! information lives in high-order bits and truncation rounds toward zero),
//! then emitted plane by plane from the most significant bit down, using
//! ZFP's adaptive group testing: the codec tracks how many leading
//! (sequency-ordered) coefficients have become significant and spends one
//! test bit per plane on the insignificant tail, so smooth blocks cost very
//! few bits per plane.

use crate::block::BlockLayout;
use crate::transform::{
    from_fixed, fwd_transform, inv_transform, max_exponent, sequency_order, to_fixed,
};
use crate::{ZfpError, ZfpMode};
use dpz_deflate::bitio::{BitReader, BitWriter};

const MAGIC: &[u8; 4] = b"ZFR1";
/// Bits in the integer coefficient representation.
const INTPREC: u32 = 32;
/// Negabinary mask.
const NBMASK: u32 = 0xAAAA_AAAA;
/// Bias added to block exponents in the header.
const EXP_BIAS: i32 = 16384;

/// Map a two's-complement coefficient to negabinary.
#[inline]
fn int2uint(x: i64) -> u32 {
    let x = x as i32;
    (x.wrapping_add(NBMASK as i32) as u32) ^ NBMASK
}

/// Map negabinary back to two's complement.
#[inline]
fn uint2int(u: u32) -> i64 {
    i64::from(((u ^ NBMASK) as i32).wrapping_sub(NBMASK as i32))
}

/// Write the low `count` bits of `x` (count <= 64); higher bits are ignored.
fn write_bits64(w: &mut BitWriter, x: u64, count: usize) {
    let x = if count >= 64 {
        x
    } else {
        x & ((1u64 << count) - 1)
    };
    if count <= 32 {
        w.write_bits(x as u32, count as u32);
    } else {
        w.write_bits((x & 0xFFFF_FFFF) as u32, 32);
        w.write_bits((x >> 32) as u32, (count - 32) as u32);
    }
}

/// Read `count` bits into a u64 (count <= 64).
fn read_bits64(r: &mut BitReader<'_>, count: usize) -> Result<u64, ZfpError> {
    let map = |_e| ZfpError::Corrupt("bitstream truncated");
    if count <= 32 {
        Ok(u64::from(r.read_bits(count as u32).map_err(map)?))
    } else {
        let lo = u64::from(r.read_bits(32).map_err(map)?);
        let hi = u64::from(r.read_bits((count - 32) as u32).map_err(map)?);
        Ok(lo | (hi << 32))
    }
}

/// Encode one block of negabinary coefficients (already in sequency order)
/// keeping the top `maxprec` bit planes, spending at most `budget` bits
/// (pass `u64::MAX` for unbounded). Returns bits written.
fn encode_ints(w: &mut BitWriter, ublock: &[u32], maxprec: u32, budget: u64) -> u64 {
    let size = ublock.len();
    debug_assert!(size <= 64);
    let kmin = INTPREC.saturating_sub(maxprec);
    let mut left = budget;
    let mut n = 0usize;
    for k in (kmin..INTPREC).rev() {
        if left == 0 {
            break;
        }
        // Gather bit plane k across the block.
        let mut x: u64 = 0;
        for (i, &v) in ublock.iter().enumerate() {
            x |= u64::from((v >> k) & 1) << i;
        }
        // Verbatim bits for coefficients already significant (truncated to
        // the remaining budget, exactly like zfp's stream_write_bits).
        let m = n.min(left as usize);
        write_bits64(w, x, m);
        left -= m as u64;
        x = if n >= 64 { 0 } else { x >> n };
        // Adaptive group testing over the insignificant tail (mirrors zfp's
        // encode_ints loop structure exactly — the decoder depends on it).
        let mut i = n;
        while i < size && left > 0 {
            // Group test: any set bit at position >= i?
            let any = x != 0;
            left -= 1;
            w.write_bits(u32::from(any), 1);
            if !any {
                break;
            }
            // Emit zero bits up to the next set bit; the set bit itself is
            // written when not at the final position, implied otherwise.
            while i < size - 1 && left > 0 {
                let bit = (x & 1) as u32;
                left -= 1;
                w.write_bits(bit, 1);
                if bit != 0 {
                    break;
                }
                x >>= 1;
                i += 1;
            }
            // Consume the significant position (explicit or implied).
            x >>= 1;
            i += 1;
        }
        n = n.max(i.min(size));
    }
    budget - left
}

/// Decode one block of negabinary coefficients (sequency order), consuming
/// at most `budget` bits. Returns the block and the bits consumed.
fn decode_ints(
    r: &mut BitReader<'_>,
    size: usize,
    maxprec: u32,
    budget: u64,
) -> Result<(Vec<u32>, u64), ZfpError> {
    debug_assert!(size <= 64);
    let kmin = INTPREC.saturating_sub(maxprec);
    let mut ublock = vec![0u32; size];
    let mut left = budget;
    let mut n = 0usize;
    for k in (kmin..INTPREC).rev() {
        if left == 0 {
            break;
        }
        let m = n.min(left as usize);
        let mut x = read_bits64(r, m)?;
        left -= m as u64;
        let mut i = n;
        while i < size && left > 0 {
            left -= 1;
            let any = read_bits64(r, 1)? != 0;
            if !any {
                break;
            }
            while i < size - 1 && left > 0 {
                left -= 1;
                let bit = read_bits64(r, 1)?;
                if bit != 0 {
                    break;
                }
                i += 1;
            }
            // Significant bit at position i (explicit or implied at the end).
            x |= 1u64 << i;
            i += 1;
        }
        n = n.max(i.min(size));
        // Deposit the plane.
        let mut bits = x;
        let mut idx = 0usize;
        while bits != 0 {
            if bits & 1 != 0 {
                ublock[idx] |= 1 << k;
            }
            bits >>= 1;
            idx += 1;
        }
    }
    Ok((ublock, budget - left))
}

/// Per-block precision for a mode given the block exponent.
fn block_precision(mode: ZfpMode, e: i32, ndims: usize) -> u32 {
    match mode {
        ZfpMode::FixedPrecision(p) => p.clamp(1, INTPREC),
        ZfpMode::FixedAccuracy(tol) => {
            let emin = tol.max(f64::MIN_POSITIVE).log2().floor() as i32;
            let guard = 2 * (ndims as i32 + 1);
            (e - emin + guard).clamp(0, INTPREC as i32) as u32
        }
        // Fixed rate: the bit budget does the truncation, not the plane cap.
        ZfpMode::FixedRate(_) => INTPREC,
    }
}

/// Per-block header cost in bits: zero flag + biased exponent.
const BLOCK_HEADER_BITS: u64 = 17;

/// Total per-block bit budget for a fixed-rate mode, if any.
fn block_bit_budget(mode: ZfpMode, block_len: usize) -> Option<u64> {
    match mode {
        ZfpMode::FixedRate(rate) => {
            let bits = (rate * block_len as f64).round() as u64;
            // Room for at least the header plus a few payload bits.
            Some(bits.max(BLOCK_HEADER_BITS + 7))
        }
        _ => None,
    }
}

/// Compress `data` with shape `dims` under `mode`.
pub fn compress(data: &[f32], dims: &[usize], mode: ZfpMode) -> Vec<u8> {
    let _span = dpz_telemetry::span!("zfp.compress");
    let layout = BlockLayout::new(dims);
    assert_eq!(
        layout.n_values(),
        data.len(),
        "dims do not match data length"
    );
    match mode {
        ZfpMode::FixedAccuracy(tol) => {
            assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive")
        }
        ZfpMode::FixedRate(rate) => {
            assert!(rate > 0.0 && rate.is_finite(), "rate must be positive")
        }
        ZfpMode::FixedPrecision(_) => {}
    }
    let ndims = layout.ndims();
    let order = sequency_order(ndims);
    let bl = layout.block_len();

    let mut w = BitWriter::new();
    let mut fblock = vec![0.0f64; bl];
    let mut iblock = vec![0i64; bl];
    let rate_budget = block_bit_budget(mode, bl);
    for b in 0..layout.n_blocks() {
        layout.gather(data, b, &mut fblock);
        let mut pad = 0u64;
        match max_exponent(&fblock) {
            None => {
                w.write_bits(0, 1); // all-zero block
                if let Some(total) = rate_budget {
                    pad = total - 1;
                }
            }
            Some(e) => {
                let maxprec = block_precision(mode, e, ndims);
                if maxprec == 0 {
                    // Below tolerance: code as zero.
                    w.write_bits(0, 1);
                    if let Some(total) = rate_budget {
                        pad = total - 1;
                    }
                } else {
                    w.write_bits(1, 1);
                    w.write_bits((e + EXP_BIAS) as u32, 16);
                    to_fixed(&fblock, e, &mut iblock);
                    fwd_transform(&mut iblock, ndims);
                    let ublock: Vec<u32> = order.iter().map(|&i| int2uint(iblock[i])).collect();
                    let payload_budget = rate_budget.map_or(u64::MAX, |t| t - BLOCK_HEADER_BITS);
                    let used = encode_ints(&mut w, &ublock, maxprec, payload_budget);
                    if let Some(total) = rate_budget {
                        pad = total - BLOCK_HEADER_BITS - used;
                    }
                }
            }
        }
        // Fixed-rate blocks are zero-padded to exactly the budget so random
        // access by block index would be possible, as in the reference zfp.
        let mut left = pad;
        while left > 0 {
            let chunk = left.min(32) as u32;
            w.write_bits(0, chunk);
            left -= u64::from(chunk);
        }
    }
    let bitstream = w.finish();

    let mut out = Vec::with_capacity(bitstream.len() + 64);
    out.extend_from_slice(MAGIC);
    out.push(ndims as u8);
    for &d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    match mode {
        ZfpMode::FixedPrecision(p) => {
            out.push(0);
            out.extend_from_slice(&u64::from(p).to_le_bytes());
        }
        ZfpMode::FixedAccuracy(tol) => {
            out.push(1);
            out.extend_from_slice(&tol.to_le_bytes());
        }
        ZfpMode::FixedRate(rate) => {
            out.push(2);
            out.extend_from_slice(&rate.to_le_bytes());
        }
    }
    out.extend_from_slice(&(bitstream.len() as u64).to_le_bytes());
    out.extend_from_slice(&bitstream);

    let reg = dpz_telemetry::global();
    let labels = [("codec", "zfp"), ("op", "compress")];
    reg.counter_with("dpz_bytes_in_total", &labels)
        .add(data.len() as u64 * 4);
    reg.counter_with("dpz_bytes_out_total", &labels)
        .add(out.len() as u64);
    reg.counter_with("dpz_blocks_total", &[("codec", "zfp")])
        .add(layout.n_blocks() as u64);
    out
}

/// Decompress a ZFP stream, returning values and dimensions.
pub fn decompress(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>), ZfpError> {
    let _span = dpz_telemetry::span!("zfp.decompress");
    let result = decompress_inner(bytes);
    if result.is_err() {
        dpz_telemetry::global()
            .counter_with("dpz_decode_rejects_total", &[("codec", "zfp")])
            .inc();
    }
    result
}

fn decompress_inner(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>), ZfpError> {
    let need = |ok: bool| {
        if ok {
            Ok(())
        } else {
            Err(ZfpError::Corrupt("truncated header"))
        }
    };
    need(bytes.len() >= 5)?;
    if &bytes[..4] != MAGIC {
        return Err(ZfpError::Corrupt("bad magic"));
    }
    let ndims = bytes[4] as usize;
    if !(1..=3).contains(&ndims) {
        return Err(ZfpError::Corrupt("unsupported dimensionality"));
    }
    let mut pos = 5;
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        need(bytes.len() >= pos + 8)?;
        dims.push(u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize);
        pos += 8;
    }
    if dims.contains(&0) {
        return Err(ZfpError::Corrupt("zero dimension"));
    }
    need(bytes.len() >= pos + 9)?;
    let mode_byte = bytes[pos];
    pos += 1;
    let param = &bytes[pos..pos + 8];
    pos += 8;
    let mode = match mode_byte {
        0 => {
            let p = u64::from_le_bytes(param.try_into().unwrap());
            if !(1..=u64::from(INTPREC)).contains(&p) {
                return Err(ZfpError::Corrupt("invalid precision"));
            }
            ZfpMode::FixedPrecision(p as u32)
        }
        1 => {
            let tol = f64::from_le_bytes(param.try_into().unwrap());
            // `!(tol > 0.0)` also rejects NaN tolerances.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(tol > 0.0) || !tol.is_finite() {
                return Err(ZfpError::Corrupt("invalid tolerance"));
            }
            ZfpMode::FixedAccuracy(tol)
        }
        2 => {
            let rate = f64::from_le_bytes(param.try_into().unwrap());
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // also rejects NaN
            if !(rate > 0.0) || !rate.is_finite() {
                return Err(ZfpError::Corrupt("invalid rate"));
            }
            ZfpMode::FixedRate(rate)
        }
        _ => return Err(ZfpError::Corrupt("unknown mode")),
    };
    need(bytes.len() >= pos + 8)?;
    let bits_len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
    let bits_len =
        usize::try_from(bits_len).map_err(|_| ZfpError::Corrupt("bitstream length overflow"))?;
    pos += 8;
    // Checked: a near-usize::MAX declared length must not wrap `pos + len`.
    let bits_end = pos
        .checked_add(bits_len)
        .ok_or(ZfpError::Corrupt("bitstream length overflow"))?;
    need(bytes.len() >= bits_end)?;
    let bitstream = &bytes[pos..bits_end];

    // Sanity-check the claimed dimensions against the payload before
    // allocating: every block consumes at least one bit (its nonzero flag),
    // so a header whose block count exceeds the bitstream's bit count is
    // corrupt. Checked arithmetic also rejects dims whose product overflows.
    let n_values = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(ZfpError::Corrupt("implausible dimensions"))?;
    let n_blocks = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d.div_ceil(4)))
        .ok_or(ZfpError::Corrupt("implausible dimensions"))?;
    if n_blocks > bitstream.len().saturating_mul(8) {
        return Err(ZfpError::Corrupt("dimensions exceed bitstream capacity"));
    }

    let layout = BlockLayout::new(&dims);
    let order = sequency_order(ndims);
    let bl = layout.block_len();
    let mut r = BitReader::new(bitstream);
    let mut out = vec![0.0f32; n_values];
    let mut fblock = vec![0.0f64; bl];
    let mut iblock = vec![0i64; bl];
    let rate_budget = block_bit_budget(mode, bl);
    for b in 0..layout.n_blocks() {
        let nonzero = read_bits64(&mut r, 1)? != 0;
        let mut pad = 0u64;
        if !nonzero {
            fblock.iter_mut().for_each(|v| *v = 0.0);
            if let Some(total) = rate_budget {
                pad = total - 1;
            }
        } else {
            let e = read_bits64(&mut r, 16)? as i32 - EXP_BIAS;
            if !(-1200..=1024).contains(&e) {
                return Err(ZfpError::Corrupt("implausible block exponent"));
            }
            let maxprec = block_precision(mode, e, ndims);
            let payload_budget = rate_budget.map_or(u64::MAX, |t| t - BLOCK_HEADER_BITS);
            let (ublock, used) = decode_ints(&mut r, bl, maxprec, payload_budget)?;
            if let Some(total) = rate_budget {
                pad = total - BLOCK_HEADER_BITS - used;
            }
            for (slot, &src) in order.iter().zip(&ublock) {
                iblock[*slot] = uint2int(src);
            }
            inv_transform(&mut iblock, ndims);
            from_fixed(&iblock, e, &mut fblock);
        }
        // Skip fixed-rate padding.
        let mut left = pad;
        while left > 0 {
            let chunk = left.min(32) as usize;
            read_bits64(&mut r, chunk)?;
            left -= chunk as u64;
        }
        layout.scatter(&fblock, b, &mut out);
    }
    let reg = dpz_telemetry::global();
    let labels = [("codec", "zfp"), ("op", "decompress")];
    reg.counter_with("dpz_bytes_in_total", &labels)
        .add(bytes.len() as u64);
    reg.counter_with("dpz_bytes_out_total", &labels)
        .add(out.len() as u64 * 4);
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negabinary_round_trip() {
        for x in [-5i64, -1, 0, 1, 7, 1 << 20, -(1 << 20), i32::MAX as i64 / 2] {
            assert_eq!(uint2int(int2uint(x)), x, "{x}");
        }
    }

    #[test]
    fn negabinary_small_values_have_small_codes() {
        // Negabinary keeps small magnitudes in low bits so high planes are
        // all zero — the property embedded coding exploits.
        for x in [-4i64, -1, 0, 1, 4] {
            assert!(int2uint(x) < 64, "code for {x} is {}", int2uint(x));
        }
    }

    #[test]
    fn encode_decode_ints_full_precision() {
        let mut s = 5u64;
        let block: Vec<u32> = (0..64)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 33) as u32
            })
            .collect();
        let mut w = BitWriter::new();
        encode_ints(&mut w, &block, 32, u64::MAX);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let (got, _) = decode_ints(&mut r, 64, 32, u64::MAX).unwrap();
        assert_eq!(got, block);
    }

    #[test]
    fn encode_decode_partial_precision_truncates_low_bits() {
        let block: Vec<u32> = (0..16).map(|i| 0x0F0F_0F0F ^ (i * 77)).collect();
        let mut w = BitWriter::new();
        encode_ints(&mut w, &block, 16, u64::MAX);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let (got, _) = decode_ints(&mut r, 16, 16, u64::MAX).unwrap();
        for (g, b) in got.iter().zip(&block) {
            assert_eq!(g >> 16, b >> 16, "high planes must survive");
            assert_eq!(g & 0xFFFF, 0, "low planes must be dropped");
        }
    }

    #[test]
    fn sparse_plane_coding_is_compact() {
        // One significant coefficient: bits should be far below 64*32.
        let mut block = vec![0u32; 64];
        block[0] = 0x8000_0000;
        let mut w = BitWriter::new();
        encode_ints(&mut w, &block, 32, u64::MAX);
        let bytes = w.finish();
        assert!(bytes.len() < 40, "sparse block took {} bytes", bytes.len());
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode_ints(&mut r, 64, 32, u64::MAX).unwrap().0, block);
    }

    #[test]
    fn all_zero_data_is_tiny() {
        let data = vec![0.0f32; 4096];
        let packed = compress(&data, &[16, 16, 16], ZfpMode::FixedPrecision(16));
        assert!(packed.len() < 128, "zero field took {} bytes", packed.len());
        let (out, _) = decompress(&packed).unwrap();
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(decompress(b"???").is_err());
        assert!(decompress(b"ZFR1\x07").is_err());
    }

    #[test]
    fn rejects_truncation() {
        let data: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let packed = compress(&data, &[16, 16], ZfpMode::FixedPrecision(20));
        for cut in [4, 12, packed.len() - 3] {
            assert!(decompress(&packed[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn one_dimensional_data() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).cos()).collect();
        let packed = compress(&data, &[1000], ZfpMode::FixedPrecision(28));
        let (out, dims) = decompress(&packed).unwrap();
        assert_eq!(dims, vec![1000]);
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
