//! Block-floating-point conversion, ZFP's reversible integer lifting
//! transform, and the total-sequency coefficient ordering.
//!
//! The lifting pair below is ZFP's non-orthogonal decorrelating transform
//! (an integer approximation of a 4-point DCT). Like the reference
//! implementation, `inv_lift` inverts `fwd_lift` up to a couple of integer
//! ULPs (the right-shifts round): at 28 fraction bits that reconstruction
//! error is ~2⁻²⁷ relative, far below `f32` resolution, which is what makes
//! high-precision mode near-lossless. The bound is property-tested.

use crate::block::SIDE;

/// Fraction bits of the block fixed-point representation. 28 bits exceed an
/// `f32` mantissa (24 bits) while leaving headroom for transform growth in
/// `i64` intermediates.
pub const FRAC_BITS: i32 = 28;

/// ZFP forward lifting on 4 elements at stride `s`.
#[inline]
pub fn fwd_lift(p: &mut [i64], offset: usize, s: usize) {
    let mut x = p[offset];
    let mut y = p[offset + s];
    let mut z = p[offset + 2 * s];
    let mut w = p[offset + 3 * s];

    // Non-orthogonal transform
    //        ( 4  4  4  4) (x)
    // 1/16 * ( 5  1 -1 -5) (y)
    //        (-4  4  4 -4) (z)
    //        (-2  6 -6  2) (w)
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;

    p[offset] = x;
    p[offset + s] = y;
    p[offset + 2 * s] = z;
    p[offset + 3 * s] = w;
}

/// ZFP inverse lifting on 4 elements at stride `s` (exact inverse of
/// [`fwd_lift`]).
#[inline]
pub fn inv_lift(p: &mut [i64], offset: usize, s: usize) {
    let mut x = p[offset];
    let mut y = p[offset + s];
    let mut z = p[offset + 2 * s];
    let mut w = p[offset + 3 * s];

    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;

    p[offset] = x;
    p[offset + s] = y;
    p[offset + 2 * s] = z;
    p[offset + 3 * s] = w;
}

/// Apply the forward transform along every dimension of a `4^d` block.
pub fn fwd_transform(block: &mut [i64], ndims: usize) {
    match ndims {
        1 => fwd_lift(block, 0, 1),
        2 => {
            // Rows (contiguous), then columns.
            for r in 0..SIDE {
                fwd_lift(block, r * SIDE, 1);
            }
            for c in 0..SIDE {
                fwd_lift(block, c, SIDE);
            }
        }
        3 => {
            // z (contiguous), then y, then x.
            for i in 0..SIDE {
                for j in 0..SIDE {
                    fwd_lift(block, (i * SIDE + j) * SIDE, 1);
                }
            }
            for i in 0..SIDE {
                for k in 0..SIDE {
                    fwd_lift(block, i * SIDE * SIDE + k, SIDE);
                }
            }
            for j in 0..SIDE {
                for k in 0..SIDE {
                    fwd_lift(block, j * SIDE + k, SIDE * SIDE);
                }
            }
        }
        _ => unreachable!("ndims checked at layout construction"),
    }
}

/// Apply the inverse transform (dimensions in reverse order).
pub fn inv_transform(block: &mut [i64], ndims: usize) {
    match ndims {
        1 => inv_lift(block, 0, 1),
        2 => {
            for c in 0..SIDE {
                inv_lift(block, c, SIDE);
            }
            for r in 0..SIDE {
                inv_lift(block, r * SIDE, 1);
            }
        }
        3 => {
            for j in 0..SIDE {
                for k in 0..SIDE {
                    inv_lift(block, j * SIDE + k, SIDE * SIDE);
                }
            }
            for i in 0..SIDE {
                for k in 0..SIDE {
                    inv_lift(block, i * SIDE * SIDE + k, SIDE);
                }
            }
            for i in 0..SIDE {
                for j in 0..SIDE {
                    inv_lift(block, (i * SIDE + j) * SIDE, 1);
                }
            }
        }
        _ => unreachable!(),
    }
}

/// Total-sequency permutation: coefficient indices sorted by the sum of
/// their per-dimension frequencies (ties broken lexicographically), so
/// low-frequency (high-energy) coefficients come first.
pub fn sequency_order(ndims: usize) -> Vec<usize> {
    let n = SIDE.pow(ndims as u32);
    let coords = |idx: usize| -> (usize, [usize; 3]) {
        match ndims {
            1 => (idx, [idx, 0, 0]),
            2 => (idx / SIDE + idx % SIDE, [idx / SIDE, idx % SIDE, 0]),
            _ => {
                let i = idx / (SIDE * SIDE);
                let j = (idx / SIDE) % SIDE;
                let k = idx % SIDE;
                (i + j + k, [i, j, k])
            }
        }
    };
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&idx| {
        let (sum, c) = coords(idx);
        (sum, c)
    });
    order
}

/// Largest binary exponent over a block: `e` such that all `|v| < 2^e`.
/// Returns `None` for an all-zero (or non-finite-free zero) block.
pub fn max_exponent(block: &[f64]) -> Option<i32> {
    let mut max = 0.0f64;
    for &v in block {
        let a = v.abs();
        if a.is_finite() && a > max {
            max = a;
        }
    }
    if max == 0.0 {
        None
    } else {
        // frexp-style exponent: max = f * 2^e with f in [0.5, 1).
        Some(max.log2().floor() as i32 + 1)
    }
}

/// Convert a block to fixed point relative to exponent `e`:
/// `i = round(v * 2^(FRAC_BITS - e))`, so `|i| <= 2^FRAC_BITS`.
pub fn to_fixed(block: &[f64], e: i32, out: &mut [i64]) {
    let scale = (FRAC_BITS - e) as f64;
    let factor = scale.exp2();
    for (o, &v) in out.iter_mut().zip(block) {
        *o = if v.is_finite() {
            (v * factor).round() as i64
        } else {
            0
        };
    }
}

/// Convert fixed point back to floats.
pub fn from_fixed(block: &[i64], e: i32, out: &mut [f64]) {
    let factor = ((e - FRAC_BITS) as f64).exp2();
    for (o, &v) in out.iter_mut().zip(block) {
        *o = v as f64 * factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_block(len: usize, seed: u64, magnitude: i64) -> Vec<i64> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s as i64) % magnitude
            })
            .collect()
    }

    fn max_diff(a: &[i64], b: &[i64]) -> i64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn lift_round_trip_near_exact() {
        // The shifts in the lifting steps round; zfp's own transform loses
        // up to a couple of ULPs per pass. Verify the tight bound.
        for seed in 1..200u64 {
            let original = pseudo_block(4, seed, 1 << FRAC_BITS);
            let mut buf = original.clone();
            fwd_lift(&mut buf, 0, 1);
            inv_lift(&mut buf, 0, 1);
            assert!(
                max_diff(&buf, &original) <= 4,
                "seed {seed}: {buf:?} vs {original:?}"
            );
        }
    }

    #[test]
    fn lift_round_trip_strided() {
        let original = pseudo_block(16, 7, 1 << 20);
        let mut buf = original.clone();
        fwd_lift(&mut buf, 2, 4);
        inv_lift(&mut buf, 2, 4);
        assert!(max_diff(&buf, &original) <= 4);
        // Untouched lanes must be exactly preserved.
        for i in 0..16 {
            if i % 4 != 2 {
                assert_eq!(buf[i], original[i], "lane {i} was touched");
            }
        }
    }

    #[test]
    fn transform_round_trip_near_exact_all_dims() {
        for ndims in 1..=3usize {
            let len = SIDE.pow(ndims as u32);
            for seed in [3u64, 99, 12345] {
                let original = pseudo_block(len, seed, 1 << FRAC_BITS);
                let mut buf = original.clone();
                fwd_transform(&mut buf, ndims);
                inv_transform(&mut buf, ndims);
                // Error compounds across dimensions but stays tiny relative
                // to the 2^28 fixed-point scale.
                assert!(
                    max_diff(&buf, &original) <= 32,
                    "ndims {ndims} seed {seed}: diff {}",
                    max_diff(&buf, &original)
                );
            }
        }
    }

    #[test]
    fn transform_concentrates_energy_for_smooth_block() {
        // Linear ramp: after the transform, the leading sequency
        // coefficients should hold almost all the energy.
        let mut block: Vec<i64> = (0..64).map(|i| (i as i64) << 20).collect();
        fwd_transform(&mut block, 3);
        let order = sequency_order(3);
        let total: f64 = block.iter().map(|&v| (v as f64) * (v as f64)).sum();
        let head: f64 = order[..8]
            .iter()
            .map(|&i| (block[i] as f64) * (block[i] as f64))
            .sum();
        assert!(head / total > 0.95, "head energy {}", head / total);
    }

    #[test]
    fn sequency_order_is_permutation() {
        for ndims in 1..=3usize {
            let order = sequency_order(ndims);
            let n = SIDE.pow(ndims as u32);
            assert_eq!(order.len(), n);
            let mut seen = vec![false; n];
            for &i in &order {
                assert!(!seen[i]);
                seen[i] = true;
            }
            // DC coefficient first.
            assert_eq!(order[0], 0);
        }
    }

    #[test]
    fn exponent_and_fixed_point_round_trip() {
        let block = vec![0.5f64, -3.75, 100.0, 1e-8];
        let e = max_exponent(&block).unwrap();
        assert_eq!(e, 7); // 100 = 0.78 * 2^7
        let mut fixed = vec![0i64; 4];
        to_fixed(&block, e, &mut fixed);
        let mut back = vec![0.0f64; 4];
        from_fixed(&fixed, e, &mut back);
        for (a, b) in block.iter().zip(&back) {
            assert!(
                (a - b).abs() <= 100.0 * 2.0f64.powi(-FRAC_BITS),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn zero_block_has_no_exponent() {
        assert_eq!(max_exponent(&[0.0, 0.0, -0.0]), None);
    }

    #[test]
    fn fixed_point_magnitudes_bounded() {
        let block = vec![0.999f64, -1.0, 0.5, 0.25];
        let e = max_exponent(&block).unwrap();
        let mut fixed = vec![0i64; 4];
        to_fixed(&block, e, &mut fixed);
        for &v in &fixed {
            assert!(v.abs() <= 1 << FRAC_BITS, "{v}");
        }
    }

    #[test]
    fn transform_growth_stays_in_i32_range() {
        // Inputs bounded by 2^FRAC_BITS must not escape i32 after the
        // full 3-D transform (the coding path packs into u32 negabinary).
        for seed in 1..20u64 {
            let mut block = pseudo_block(64, seed, 1 << FRAC_BITS);
            fwd_transform(&mut block, 3);
            for &v in &block {
                assert!(
                    v.abs() < (1i64 << 31),
                    "coefficient {v} escaped i32 range (seed {seed})"
                );
            }
        }
    }
}
