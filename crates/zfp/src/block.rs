//! Partitioning of 1-3 dimensional arrays into 4^d blocks with edge
//! replication for partial blocks, plus the inverse scatter.

/// Side length of a ZFP block along each dimension.
pub const SIDE: usize = 4;

/// Shape bookkeeping for block iteration.
#[derive(Debug, Clone)]
pub struct BlockLayout {
    dims: Vec<usize>,
    /// Number of blocks along each dimension (ceil(dim / 4)).
    blocks: Vec<usize>,
}

impl BlockLayout {
    /// Build a layout over `dims` (1-3 dimensions, all non-zero).
    pub fn new(dims: &[usize]) -> BlockLayout {
        assert!(
            (1..=3).contains(&dims.len()),
            "ZFP supports 1-3 dimensions here"
        );
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension");
        let blocks = dims.iter().map(|&d| d.div_ceil(SIDE)).collect();
        BlockLayout {
            dims: dims.to_vec(),
            blocks,
        }
    }

    /// Dimensionality (1, 2 or 3).
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Values per block (`4^d`).
    pub fn block_len(&self) -> usize {
        SIDE.pow(self.ndims() as u32)
    }

    /// Total number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.iter().product()
    }

    /// Total number of array elements.
    pub fn n_values(&self) -> usize {
        self.dims.iter().product()
    }

    /// Original dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Block grid coordinates of block index `b` (slowest first).
    fn block_coords(&self, b: usize) -> [usize; 3] {
        match self.ndims() {
            1 => [b, 0, 0],
            2 => [b / self.blocks[1], b % self.blocks[1], 0],
            _ => {
                let plane = self.blocks[1] * self.blocks[2];
                [b / plane, (b % plane) / self.blocks[2], b % self.blocks[2]]
            }
        }
    }

    /// Gather block `b` from `data` into `out` (length `block_len`), clamping
    /// out-of-range coordinates to the array edge (replication padding).
    // Coordinate loops mirror the 3-D indexing math; iterator forms obscure it.
    #[allow(clippy::needless_range_loop)]
    pub fn gather(&self, data: &[f32], b: usize, out: &mut [f64]) {
        debug_assert_eq!(data.len(), self.n_values());
        debug_assert_eq!(out.len(), self.block_len());
        let bc = self.block_coords(b);
        match self.ndims() {
            1 => {
                let n = self.dims[0];
                for i in 0..SIDE {
                    let x = (bc[0] * SIDE + i).min(n - 1);
                    out[i] = f64::from(data[x]);
                }
            }
            2 => {
                let (r, c) = (self.dims[0], self.dims[1]);
                for i in 0..SIDE {
                    let x = (bc[0] * SIDE + i).min(r - 1);
                    for j in 0..SIDE {
                        let y = (bc[1] * SIDE + j).min(c - 1);
                        out[i * SIDE + j] = f64::from(data[x * c + y]);
                    }
                }
            }
            _ => {
                let (d0, d1, d2) = (self.dims[0], self.dims[1], self.dims[2]);
                for i in 0..SIDE {
                    let x = (bc[0] * SIDE + i).min(d0 - 1);
                    for j in 0..SIDE {
                        let y = (bc[1] * SIDE + j).min(d1 - 1);
                        for k in 0..SIDE {
                            let z = (bc[2] * SIDE + k).min(d2 - 1);
                            out[(i * SIDE + j) * SIDE + k] = f64::from(data[(x * d1 + y) * d2 + z]);
                        }
                    }
                }
            }
        }
    }

    /// Scatter a reconstructed block back, ignoring padded lanes.
    #[allow(clippy::needless_range_loop)]
    pub fn scatter(&self, block: &[f64], b: usize, data: &mut [f32]) {
        debug_assert_eq!(data.len(), self.n_values());
        debug_assert_eq!(block.len(), self.block_len());
        let bc = self.block_coords(b);
        match self.ndims() {
            1 => {
                let n = self.dims[0];
                for i in 0..SIDE {
                    let x = bc[0] * SIDE + i;
                    if x < n {
                        data[x] = block[i] as f32;
                    }
                }
            }
            2 => {
                let (r, c) = (self.dims[0], self.dims[1]);
                for i in 0..SIDE {
                    let x = bc[0] * SIDE + i;
                    if x >= r {
                        continue;
                    }
                    for j in 0..SIDE {
                        let y = bc[1] * SIDE + j;
                        if y < c {
                            data[x * c + y] = block[i * SIDE + j] as f32;
                        }
                    }
                }
            }
            _ => {
                let (d0, d1, d2) = (self.dims[0], self.dims[1], self.dims[2]);
                for i in 0..SIDE {
                    let x = bc[0] * SIDE + i;
                    if x >= d0 {
                        continue;
                    }
                    for j in 0..SIDE {
                        let y = bc[1] * SIDE + j;
                        if y >= d1 {
                            continue;
                        }
                        for k in 0..SIDE {
                            let z = bc[2] * SIDE + k;
                            if z < d2 {
                                data[(x * d1 + y) * d2 + z] =
                                    block[(i * SIDE + j) * SIDE + k] as f32;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counts() {
        assert_eq!(BlockLayout::new(&[8]).n_blocks(), 2);
        assert_eq!(BlockLayout::new(&[9]).n_blocks(), 3);
        assert_eq!(BlockLayout::new(&[8, 8]).n_blocks(), 4);
        assert_eq!(BlockLayout::new(&[5, 9]).n_blocks(), 2 * 3);
        assert_eq!(BlockLayout::new(&[4, 4, 4]).n_blocks(), 1);
        assert_eq!(BlockLayout::new(&[4, 4, 4]).block_len(), 64);
    }

    #[test]
    fn gather_scatter_identity_exact_dims() {
        let dims = [8usize, 12];
        let layout = BlockLayout::new(&dims);
        let data: Vec<f32> = (0..96).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; 96];
        let mut buf = vec![0.0f64; layout.block_len()];
        for b in 0..layout.n_blocks() {
            layout.gather(&data, b, &mut buf);
            layout.scatter(&buf, b, &mut out);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn gather_scatter_identity_padded_dims() {
        for dims in [vec![5usize], vec![7, 9], vec![5, 6, 7]] {
            let layout = BlockLayout::new(&dims);
            let n = layout.n_values();
            let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
            let mut out = vec![0.0f32; n];
            let mut buf = vec![0.0f64; layout.block_len()];
            for b in 0..layout.n_blocks() {
                layout.gather(&data, b, &mut buf);
                layout.scatter(&buf, b, &mut out);
            }
            assert_eq!(out, data, "dims {dims:?}");
        }
    }

    #[test]
    fn padding_replicates_edge() {
        // 1-D array of 5: second block is [4th, 4th, 4th, 4th] clamped.
        let layout = BlockLayout::new(&[5]);
        let data = vec![0.0f32, 1.0, 2.0, 3.0, 4.0];
        let mut buf = vec![0.0f64; 4];
        layout.gather(&data, 1, &mut buf);
        assert_eq!(buf, vec![4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "1-3 dimensions")]
    fn rejects_4d() {
        BlockLayout::new(&[2, 2, 2, 2]);
    }
}
