//! Property tests: ZFP round trips in every mode on arbitrary shapes, the
//! rate/precision/accuracy knobs behave monotonically, and the decoder
//! survives garbage.

use dpz_zfp::{compress, decompress, ZfpMode};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        (8usize..300).prop_map(|n| vec![n]),
        ((3usize..20), (3usize..20)).prop_map(|(a, b)| vec![a, b]),
        ((2usize..9), (2usize..9), (2usize..9)).prop_map(|(a, b, c)| vec![a, b, c]),
    ]
}

fn field(dims: &[usize], seed: u64) -> Vec<f32> {
    let n: usize = dims.iter().product();
    let mut s = seed | 1;
    (0..n)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            ((i as f64 * 0.07).cos() * 3.0 + 0.05 * noise) as f32
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn high_precision_round_trip_any_shape(dims in dims_strategy(), seed in any::<u64>()) {
        let data = field(&dims, seed);
        let packed = compress(&data, &dims, ZfpMode::FixedPrecision(30));
        let (out, got_dims) = decompress(&packed).unwrap();
        prop_assert_eq!(got_dims, dims);
        for (a, b) in data.iter().zip(&out) {
            prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
        }
    }

    #[test]
    fn accuracy_mode_tracks_tolerance(dims in dims_strategy(), seed in any::<u64>(), tol_exp in -4i32..-1) {
        let data = field(&dims, seed);
        let tol = 10f64.powi(tol_exp);
        let packed = compress(&data, &dims, ZfpMode::FixedAccuracy(tol));
        let (out, _) = decompress(&packed).unwrap();
        for (a, b) in data.iter().zip(&out) {
            let err = (f64::from(*a) - f64::from(*b)).abs();
            prop_assert!(err <= tol * 4.0, "err {} tol {}", err, tol);
        }
    }

    #[test]
    fn fixed_rate_round_trips(dims in dims_strategy(), seed in any::<u64>(), rate in 2.0f64..16.0) {
        let data = field(&dims, seed);
        let packed = compress(&data, &dims, ZfpMode::FixedRate(rate));
        let (out, got_dims) = decompress(&packed).unwrap();
        prop_assert_eq!(got_dims, dims);
        prop_assert_eq!(out.len(), data.len());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decompress(&bytes);
    }

    #[test]
    fn bit_flips_never_panic(seed in any::<u64>(), flip in any::<usize>()) {
        let data = field(&[200], seed);
        let mut packed = compress(&data, &[200], ZfpMode::FixedPrecision(16));
        let n = packed.len();
        packed[flip % n] ^= 1 << (flip % 8);
        let _ = decompress(&packed);
    }
}
