//! Compression quality and rate metrics (Section V-B of the paper).
//!
//! * **PSNR** `= 20·log10(range) − 10·log10(MSE)` in dB,
//! * **bit-rate** `= bits-per-value / CR` (average bits per datapoint after
//!   compression),
//! * **compression ratio** `CR = original bytes / compressed bytes`,
//! * **θ (mean relative error)** `= mean(|xᵢ − x̂ᵢ|) / range` — the
//!   "data-range based error" reported in Table II.

/// Full quality/rate report for one compression run.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Mean squared error between original and reconstruction.
    pub mse: f64,
    /// Peak signal-to-noise ratio in dB (infinite for exact reconstruction).
    pub psnr: f64,
    /// Largest absolute pointwise error.
    pub max_abs_error: f64,
    /// Mean absolute error divided by the original data range (paper's θ).
    pub mean_rel_error: f64,
    /// Value range (max − min) of the original data.
    pub range: f64,
    /// Compression ratio (original size / compressed size).
    pub compression_ratio: f64,
    /// Average bits per value after compression.
    pub bit_rate: f64,
}

/// Mean squared error. Panics if lengths differ or inputs are empty.
pub fn mse(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len(), "mse length mismatch");
    assert!(!original.is_empty(), "mse of empty data");
    original
        .iter()
        .zip(reconstructed)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum::<f64>()
        / original.len() as f64
}

/// Value range (max − min) of a slice; 0 for constant data.
pub fn value_range(data: &[f32]) -> f64 {
    let (lo, hi) = data
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(f64::from(v)), hi.max(f64::from(v)))
        });
    (hi - lo).max(0.0)
}

/// PSNR in dB using the original's value range as peak.
/// Exact reconstruction yields `f64::INFINITY`.
pub fn psnr(original: &[f32], reconstructed: &[f32]) -> f64 {
    let err = mse(original, reconstructed);
    if err == 0.0 {
        return f64::INFINITY;
    }
    let range = value_range(original);
    if range == 0.0 {
        return f64::NEG_INFINITY;
    }
    20.0 * range.log10() - 10.0 * err.log10()
}

/// Largest absolute pointwise error.
pub fn max_abs_error(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    original
        .iter()
        .zip(reconstructed)
        .map(|(&a, &b)| (f64::from(a) - f64::from(b)).abs())
        .fold(0.0, f64::max)
}

/// Paper's θ: mean absolute error normalized by the data range.
pub fn mean_relative_error(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    assert!(!original.is_empty());
    let range = value_range(original);
    if range == 0.0 {
        return 0.0;
    }
    let mae = original
        .iter()
        .zip(reconstructed)
        .map(|(&a, &b)| (f64::from(a) - f64::from(b)).abs())
        .sum::<f64>()
        / original.len() as f64;
    mae / range
}

/// Compression ratio from byte counts.
pub fn compression_ratio(original_bytes: usize, compressed_bytes: usize) -> f64 {
    assert!(compressed_bytes > 0, "compressed size must be positive");
    original_bytes as f64 / compressed_bytes as f64
}

/// Bit-rate: average compressed bits per data value.
pub fn bit_rate(n_values: usize, compressed_bytes: usize) -> f64 {
    assert!(n_values > 0);
    compressed_bytes as f64 * 8.0 / n_values as f64
}

impl QualityReport {
    /// Compute all metrics for one run. `compressed_bytes` is the size of the
    /// complete serialized stream; the original is assumed `f32`-typed.
    pub fn evaluate(
        original: &[f32],
        reconstructed: &[f32],
        compressed_bytes: usize,
    ) -> QualityReport {
        QualityReport {
            mse: mse(original, reconstructed),
            psnr: psnr(original, reconstructed),
            max_abs_error: max_abs_error(original, reconstructed),
            mean_rel_error: mean_relative_error(original, reconstructed),
            range: value_range(original),
            compression_ratio: compression_ratio(std::mem::size_of_val(original), compressed_bytes),
            bit_rate: bit_rate(original.len(), compressed_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_identical() {
        let a = vec![1.0f32, 2.0, 3.0];
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
    }

    #[test]
    fn mse_known_value() {
        let a = vec![0.0f32, 0.0];
        let b = vec![3.0f32, 4.0];
        assert!((mse(&a, &b) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn psnr_matches_definition() {
        // range 10, uniform error 0.1 => MSE = 0.01,
        // PSNR = 20*log10(10) - 10*log10(0.01) = 20 + 20 = 40 dB.
        let a: Vec<f32> = (0..101).map(|i| i as f32 * 0.1).collect();
        let b: Vec<f32> = a.iter().map(|&v| v + 0.1).collect();
        let p = psnr(&a, &b);
        assert!((p - 40.0).abs() < 0.2, "psnr {p}");
    }

    #[test]
    fn psnr_decreases_with_more_error() {
        let a: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let small: Vec<f32> = a.iter().map(|&v| v + 0.01).collect();
        let large: Vec<f32> = a.iter().map(|&v| v + 1.0).collect();
        assert!(psnr(&a, &small) > psnr(&a, &large));
    }

    #[test]
    fn theta_normalizes_by_range() {
        let a = vec![0.0f32, 100.0];
        let b = vec![1.0f32, 101.0];
        assert!((mean_relative_error(&a, &b) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn constant_data_edge_cases() {
        let a = vec![5.0f32; 10];
        let b = vec![5.5f32; 10];
        assert_eq!(value_range(&a), 0.0);
        assert_eq!(mean_relative_error(&a, &b), 0.0);
        assert_eq!(psnr(&a, &b), f64::NEG_INFINITY);
    }

    #[test]
    fn ratio_and_bitrate() {
        assert_eq!(compression_ratio(4000, 400), 10.0);
        // 1000 f32 values in 500 bytes = 4 bits/value; CR = 8.
        assert_eq!(bit_rate(1000, 500), 4.0);
    }

    #[test]
    fn bitrate_inverse_to_cr() {
        // bit_rate = 32 / CR for f32 data.
        let n = 777;
        let compressed = 123;
        let cr = compression_ratio(n * 4, compressed);
        let br = bit_rate(n, compressed);
        assert!((br - 32.0 / cr).abs() < 1e-12);
    }

    #[test]
    fn report_is_consistent() {
        let a: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin()).collect();
        let b: Vec<f32> = a.iter().map(|&v| v + 0.001).collect();
        let rep = QualityReport::evaluate(&a, &b, 1000);
        assert!((rep.compression_ratio - 4.0).abs() < 1e-12);
        assert!((rep.bit_rate - 8.0).abs() < 1e-12);
        assert!(rep.max_abs_error >= rep.mean_rel_error * rep.range - 1e-12);
        assert!(rep.psnr.is_finite());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_rejects_mismatched_lengths() {
        mse(&[1.0], &[1.0, 2.0]);
    }
}
