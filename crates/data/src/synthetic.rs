//! Seeded synthetic analogues of the paper's evaluation datasets.
//!
//! Each generator reproduces the *statistical character* that drives the
//! corresponding dataset's compression behaviour in the paper:
//!
//! * **CESM-ATM 2-D climate fields** — a dominant latitudinal gradient plus
//!   random-phase Fourier modes with a steep power-law spectrum (large smooth
//!   structures), with per-field post-processing: cloud fractions saturate
//!   into flat regions, PHIS gets ridged mountain massifs, FLDSC stays the
//!   smoothest. These are the highly compressible, high-VIF cases.
//! * **JHTDB 3-D turbulence** — random Fourier modes with a Kolmogorov-like
//!   `E(k) ∝ k^{-5/3}` spectrum; the Channel variant adds a mean shear
//!   profile and wall damping. Mid compressibility.
//! * **HACC 1-D particle data** — `x`: quasi-sorted positions (HACC's
//!   spatial memory order) with per-cluster jitter, giving strong
//!   block-to-block correlation; `vx`: per-particle thermal velocities
//!   dominating a modest bulk flow, i.e. nearly white. `vx` is the paper's
//!   least compressible field (VIF below the cutoff).
//!
//! All generators are deterministic functions of `(shape, seed)`.

use crate::rng::Xoshiro256;
use std::f64::consts::PI;

/// CESM-ATM field flavors (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClimateField {
    /// High-cloud fraction: smooth patches saturating at 0 and 1.
    Cldhgh,
    /// Low-cloud fraction: like CLDHGH with different structure scales.
    Cldlow,
    /// Surface geopotential: very smooth continents + ridged mountains.
    Phis,
    /// Shallow-convection frequency: patchy, mid-scale structure.
    Freqsh,
    /// Clear-sky downwelling flux: the smoothest, gradient-dominated field.
    Fldsc,
}

/// JHTDB turbulence flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TurbulenceField {
    /// Forced isotropic turbulence ("Isotropic1024-coarse").
    Isotropic,
    /// Channel flow: shear profile + wall damping.
    Channel,
}

/// HACC particle quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HaccField {
    /// Particle x-positions (locally ordered, cluster structure).
    X,
    /// Particle x-velocities (thermal-dominated, nearly white).
    Vx,
}

/// One random-phase plane-wave mode in 2-D.
struct Mode2 {
    kx: f64,
    ky: f64,
    amp: f64,
    phase: f64,
}

/// Sample `count` 2-D modes with amplitude `|k|^(-slope)`.
fn sample_modes_2d(rng: &mut Xoshiro256, count: usize, kmax: f64, slope: f64) -> Vec<Mode2> {
    let mut modes = Vec::with_capacity(count);
    for _ in 0..count {
        // Log-uniform |k| in [1, kmax] covers scales evenly per octave.
        let k = (rng.uniform() * kmax.ln()).exp();
        let theta = rng.uniform() * 2.0 * PI;
        modes.push(Mode2 {
            kx: k * theta.cos(),
            ky: k * theta.sin(),
            amp: k.powf(-slope),
            phase: rng.uniform() * 2.0 * PI,
        });
    }
    modes
}

fn eval_modes_2d(modes: &[Mode2], rows: usize, cols: usize, out: &mut [f64]) {
    for r in 0..rows {
        let y = r as f64 / rows as f64;
        for c in 0..cols {
            let x = c as f64 / cols as f64;
            let mut v = 0.0;
            for m in modes {
                v += m.amp * (2.0 * PI * (m.kx * x + m.ky * y) + m.phase).cos();
            }
            out[r * cols + c] = v;
        }
    }
}

/// Generate a 2-D CESM-like field, row-major `rows x cols` (latitude x
/// longitude, like the paper's 1800 x 3600 grids).
pub fn climate2d(field: ClimateField, rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    assert!(rows >= 2 && cols >= 2, "climate2d needs a real grid");
    // Distinct stream per field so "CLDHGH" and "CLDLOW" differ structurally.
    let salt = match field {
        ClimateField::Cldhgh => 0x11,
        ClimateField::Cldlow => 0x22,
        ClimateField::Phis => 0x33,
        ClimateField::Freqsh => 0x44,
        ClimateField::Fldsc => 0x55,
    };
    let mut rng = Xoshiro256::seed_from_u64(seed ^ (salt as u64) << 32);

    // Mode counts / spectral extents / slopes are tuned so the per-field
    // compressibility ordering matches the paper's Table III: CLDHGH and
    // PHIS most compressible, FREQSH mid, FLDSC smooth. White noise is kept
    // minimal — the real CESM fields are smooth at grid scale.
    let (n_modes, kmax, slope, noise_amp) = match field {
        ClimateField::Cldhgh => (48, 14.0, 1.9, 0.0),
        ClimateField::Cldlow => (48, 20.0, 1.8, 0.0),
        ClimateField::Phis => (40, 12.0, 2.0, 0.0),
        ClimateField::Freqsh => (64, 28.0, 1.6, 0.003),
        ClimateField::Fldsc => (32, 10.0, 2.1, 0.001),
    };
    let modes = sample_modes_2d(&mut rng, n_modes, kmax, slope);
    let mut buf = vec![0.0f64; rows * cols];
    eval_modes_2d(&modes, rows, cols, &mut buf);

    // Normalize mode mixture to unit-ish std for predictable post-processing.
    let mean = buf.iter().sum::<f64>() / buf.len() as f64;
    let var = buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / buf.len() as f64;
    let inv_sd = 1.0 / var.sqrt().max(1e-12);
    for v in &mut buf {
        *v = (*v - mean) * inv_sd;
    }

    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        // Latitude from -90 to 90 degrees.
        let lat = (r as f64 / (rows - 1) as f64) * PI - PI / 2.0;
        for c in 0..cols {
            let idx = r * cols + c;
            let texture = buf[idx];
            let noise = if noise_amp > 0.0 {
                noise_amp * rng.normal()
            } else {
                0.0
            };
            let value = match field {
                ClimateField::Cldhgh => {
                    // Tropical band of high cloud + storm tracks; saturate.
                    let base = 0.45 + 0.25 * (3.0 * lat).cos() - 0.15 * (lat).sin().abs();
                    (base + 0.35 * texture + noise).clamp(0.0, 1.0)
                }
                ClimateField::Cldlow => {
                    let base = 0.35 + 0.3 * (2.0 * lat).sin().abs();
                    (base + 0.3 * texture + noise).clamp(0.0, 1.0)
                }
                ClimateField::Phis => {
                    // Geopotential: oceans flat at 0, mountains ridged.
                    let continental = (texture + 0.3).max(0.0);
                    let ridged = continental * continental * (1.0 + 0.4 * (6.0 * texture).sin());
                    (ridged * 2.2e4).max(0.0)
                }
                ClimateField::Freqsh => {
                    let base = 0.25 + 0.2 * (2.0 * lat).cos();
                    (base + 0.25 * texture + noise).clamp(0.0, 1.0)
                }
                ClimateField::Fldsc => {
                    // Flux in W/m²: strong smooth latitudinal gradient.
                    let base = 300.0 - 180.0 * lat.sin() * lat.sin();
                    base + 25.0 * texture + noise * 100.0
                }
            };
            out[idx] = value as f32;
        }
    }
    out
}

/// One 3-D plane-wave mode.
struct Mode3 {
    k: [f64; 3],
    amp: f64,
    phase: f64,
}

/// Generate a 3-D turbulence-like field, `nx x ny x nz`, row-major with `z`
/// fastest (index = (x*ny + y)*nz + z).
pub fn turbulence3d(
    field: TurbulenceField,
    nx: usize,
    ny: usize,
    nz: usize,
    seed: u64,
) -> Vec<f32> {
    assert!(
        nx >= 2 && ny >= 2 && nz >= 2,
        "turbulence3d needs a 3-D grid"
    );
    let salt = match field {
        TurbulenceField::Isotropic => 0xA1u64,
        TurbulenceField::Channel => 0xB2,
    };
    let mut rng = Xoshiro256::seed_from_u64(seed ^ salt << 32);

    // Kolmogorov: E(k) ~ k^{-5/3}; per-mode amplitude in 3-D sampled
    // log-uniformly needs a ~ k^{-(5/3+1)/2} * k^{1/2} correction; the
    // effective exponent below reproduces the -5/3 inertial range slope in
    // the measured 1-D spectrum.
    let n_modes = 96;
    let kmax = (nx.min(ny).min(nz) as f64 / 3.0).max(4.0);
    let mut modes = Vec::with_capacity(n_modes);
    for _ in 0..n_modes {
        let k = (rng.uniform() * kmax.ln()).exp().max(1.0);
        // Random direction on the sphere.
        let z = rng.uniform_in(-1.0, 1.0);
        let phi = rng.uniform() * 2.0 * PI;
        let s = (1.0 - z * z).sqrt();
        modes.push(Mode3 {
            k: [k * s * phi.cos(), k * s * phi.sin(), k * z],
            amp: k.powf(-11.0 / 6.0),
            phase: rng.uniform() * 2.0 * PI,
        });
    }

    let mut out = vec![0.0f32; nx * ny * nz];
    for ix in 0..nx {
        let x = ix as f64 / nx as f64;
        for iy in 0..ny {
            let y = iy as f64 / ny as f64;
            // Channel-flow envelope in the wall-normal (y) direction.
            let (envelope, shear) = match field {
                TurbulenceField::Isotropic => (1.0, 0.0),
                TurbulenceField::Channel => {
                    let yc = 2.0 * y - 1.0; // -1 at one wall, +1 at the other
                    (1.0 - yc * yc * yc * yc, 1.2 * (1.0 - yc * yc))
                }
            };
            for iz in 0..nz {
                let zc = iz as f64 / nz as f64;
                let mut v = 0.0;
                for m in &modes {
                    v += m.amp
                        * (2.0 * PI * (m.k[0] * x + m.k[1] * y + m.k[2] * zc) + m.phase).cos();
                }
                out[(ix * ny + iy) * nz + iz] = (shear + envelope * v) as f32;
            }
        }
    }
    out
}

/// Generate HACC-like 1-D particle data of length `n`.
pub fn hacc1d(field: HaccField, n: usize, seed: u64) -> Vec<f32> {
    assert!(n >= 2, "hacc1d needs at least two particles");
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xC3u64 << 32);
    let box_size = 256.0; // Mpc/h, HACC convention
    match field {
        HaccField::X => {
            // HACC stores particles in (approximately) spatial memory order,
            // so the x stream sweeps the box quasi-monotonically: consecutive
            // chunks occupy nearby position ranges, which is exactly the
            // block-to-block correlation DPZ's decomposition exploits (and
            // why the paper finds x far more compressible than vx). Model:
            // a slow sweep through the box plus per-cluster jitter around
            // halo centers riding the sweep.
            let mut out = Vec::with_capacity(n);
            let mut cluster_offset = 0.0f64;
            let mut remaining_in_cluster = 0usize;
            for i in 0..n {
                if remaining_in_cluster == 0 {
                    cluster_offset = rng.normal() * 1.5;
                    remaining_in_cluster = 64 + rng.below(512);
                }
                let sweep = box_size * (i as f64 / n as f64);
                let x = sweep + cluster_offset + rng.normal() * 0.05;
                out.push(x.rem_euclid(box_size) as f32);
                remaining_in_cluster -= 1;
            }
            out
        }
        HaccField::Vx => {
            // Velocity = modest bulk flow per cluster + dominant thermal
            // component per particle. Thermal dominance makes the stream
            // nearly white: the paper's least-compressible field (VIF below
            // the cutoff), with just enough cluster structure that the
            // variance spectrum is not perfectly flat.
            let mut out = Vec::with_capacity(n);
            let mut bulk = 0.0f64;
            let mut dispersion = 300.0f64;
            let mut remaining_in_cluster = 0usize;
            for _ in 0..n {
                if remaining_in_cluster == 0 {
                    bulk = rng.normal() * 120.0;
                    dispersion = 180.0 + rng.uniform() * 350.0;
                    remaining_in_cluster = 96 + rng.below(768);
                }
                out.push((bulk + rng.normal() * dispersion) as f32);
                remaining_in_cluster -= 1;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lag1_autocorr(data: &[f32]) -> f64 {
        let n = data.len();
        let mean = data.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n {
            let d = data[i] as f64 - mean;
            den += d * d;
            if i + 1 < n {
                num += d * (data[i + 1] as f64 - mean);
            }
        }
        num / den.max(1e-300)
    }

    #[test]
    fn generators_are_deterministic() {
        let a = climate2d(ClimateField::Fldsc, 36, 72, 9);
        let b = climate2d(ClimateField::Fldsc, 36, 72, 9);
        assert_eq!(a, b);
        let c = turbulence3d(TurbulenceField::Isotropic, 8, 8, 8, 1);
        let d = turbulence3d(TurbulenceField::Isotropic, 8, 8, 8, 1);
        assert_eq!(c, d);
        let e = hacc1d(HaccField::Vx, 1000, 3);
        let f = hacc1d(HaccField::Vx, 1000, 3);
        assert_eq!(e, f);
    }

    #[test]
    fn different_seeds_differ() {
        let a = climate2d(ClimateField::Cldhgh, 20, 40, 1);
        let b = climate2d(ClimateField::Cldhgh, 20, 40, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn cloud_fractions_in_unit_interval() {
        for field in [
            ClimateField::Cldhgh,
            ClimateField::Cldlow,
            ClimateField::Freqsh,
        ] {
            let data = climate2d(field, 30, 60, 5);
            for &v in &data {
                assert!((0.0..=1.0).contains(&v), "{field:?} out of range: {v}");
            }
        }
    }

    #[test]
    fn phis_nonnegative_and_large_scale() {
        let data = climate2d(ClimateField::Phis, 40, 80, 5);
        assert!(data.iter().all(|&v| v >= 0.0));
        let max = data.iter().cloned().fold(f32::MIN, f32::max);
        assert!(
            max > 1000.0,
            "PHIS should reach mountain magnitudes, max={max}"
        );
    }

    #[test]
    fn fldsc_is_smooth() {
        // Clear-sky flux must be strongly correlated along longitude.
        let data = climate2d(ClimateField::Fldsc, 40, 200, 7);
        let row = &data[20 * 200..21 * 200];
        let r: Vec<f32> = row.to_vec();
        assert!(lag1_autocorr(&r) > 0.95, "FLDSC rows should be smooth");
    }

    #[test]
    fn hacc_x_locally_ordered_vx_nearly_white() {
        let x = hacc1d(HaccField::X, 50_000, 11);
        let vx = hacc1d(HaccField::Vx, 50_000, 11);
        let ax = lag1_autocorr(&x);
        let av = lag1_autocorr(&vx);
        assert!(ax > 0.9, "x lag-1 autocorrelation should be high, got {ax}");
        assert!(av < 0.5, "vx should be nearly white, got {av}");
        assert!(ax > av + 0.3, "x must be far more ordered than vx");
    }

    #[test]
    fn hacc_x_within_box() {
        let x = hacc1d(HaccField::X, 10_000, 13);
        for &v in &x {
            assert!((0.0..256.0).contains(&v));
        }
    }

    #[test]
    fn turbulence_has_energy_at_multiple_scales() {
        let data = turbulence3d(TurbulenceField::Isotropic, 16, 16, 16, 21);
        // Nonconstant, zero-ish mean, bounded.
        let mean = data.iter().map(|&v| v as f64).sum::<f64>() / data.len() as f64;
        let var = data
            .iter()
            .map(|&v| (v as f64 - mean) * (v as f64 - mean))
            .sum::<f64>()
            / data.len() as f64;
        assert!(var > 1e-4, "turbulence should have variance, got {var}");
        assert!(mean.abs() < 1.0);
    }

    #[test]
    fn channel_flow_has_shear_profile() {
        let (nx, ny, nz) = (8, 32, 8);
        let data = turbulence3d(TurbulenceField::Channel, nx, ny, nz, 31);
        // Mean over x,z per y-plane: center should be faster than walls.
        let mean_at = |iy: usize| {
            let mut s = 0.0;
            for ix in 0..nx {
                for iz in 0..nz {
                    s += data[(ix * ny + iy) * nz + iz] as f64;
                }
            }
            s / (nx * nz) as f64
        };
        let wall = mean_at(0).abs().max(mean_at(ny - 1).abs());
        let center = mean_at(ny / 2);
        assert!(center > wall + 0.2, "center {center} vs wall {wall}");
    }

    #[test]
    fn spectral_slope_is_steeper_for_fldsc_than_freqsh() {
        // Smoothness ordering drives the paper's compressibility ordering.
        let rows = 32;
        let cols = 128;
        let energy_tail = |field: ClimateField| {
            let data = climate2d(field, rows, cols, 3);
            // Crude high-frequency energy: mean squared lag-1 difference over
            // rows, normalized by variance.
            let mut diff = 0.0;
            let mut var = 0.0;
            let mean = data.iter().map(|&v| v as f64).sum::<f64>() / data.len() as f64;
            for r in 0..rows {
                for c in 0..cols - 1 {
                    let a = data[r * cols + c] as f64;
                    let b = data[r * cols + c + 1] as f64;
                    diff += (a - b) * (a - b);
                    var += (a - mean) * (a - mean);
                }
            }
            diff / var.max(1e-300)
        };
        assert!(energy_tail(ClimateField::Fldsc) < energy_tail(ClimateField::Freqsh));
    }
}
