//! The evaluation dataset registry: nine fields from three applications,
//! mirroring Table I of the paper, at selectable scales.

use crate::synthetic::{climate2d, hacc1d, turbulence3d, ClimateField, HaccField, TurbulenceField};

/// Default RNG seed for the standard suite (the paper's publication year).
pub const DEFAULT_SEED: u64 = 2021;

/// The nine evaluation fields (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// JHTDB "Isotropic1024-coarse" (3-D turbulence).
    Isotropic,
    /// JHTDB "Channel" (3-D wall-bounded turbulence).
    Channel,
    /// CESM-ATM "CLDHGH" (2-D high-cloud fraction).
    Cldhgh,
    /// CESM-ATM "CLDLOW" (2-D low-cloud fraction).
    Cldlow,
    /// CESM-ATM "PHIS" (2-D surface geopotential).
    Phis,
    /// CESM-ATM "FREQSH" (2-D shallow-convection frequency).
    Freqsh,
    /// CESM-ATM "FLDSC" (2-D clear-sky downwelling flux).
    Fldsc,
    /// HACC "x" (1-D particle positions).
    HaccX,
    /// HACC "vx" (1-D particle velocities).
    HaccVx,
}

impl DatasetKind {
    /// All nine kinds in the paper's Table I order.
    pub const ALL: [DatasetKind; 9] = [
        DatasetKind::Isotropic,
        DatasetKind::Channel,
        DatasetKind::Cldhgh,
        DatasetKind::Cldlow,
        DatasetKind::Phis,
        DatasetKind::Freqsh,
        DatasetKind::Fldsc,
        DatasetKind::HaccX,
        DatasetKind::HaccVx,
    ];

    /// Paper-facing dataset name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Isotropic => "Isotropic",
            DatasetKind::Channel => "Channel",
            DatasetKind::Cldhgh => "CLDHGH",
            DatasetKind::Cldlow => "CLDLOW",
            DatasetKind::Phis => "PHIS",
            DatasetKind::Freqsh => "FREQSH",
            DatasetKind::Fldsc => "FLDSC",
            DatasetKind::HaccX => "HACC-x",
            DatasetKind::HaccVx => "HACC-vx",
        }
    }

    /// Originating application/archive.
    pub fn source(self) -> &'static str {
        match self {
            DatasetKind::Isotropic | DatasetKind::Channel => "JHTDB",
            DatasetKind::HaccX | DatasetKind::HaccVx => "HACC",
            _ => "CESM-ATM",
        }
    }

    /// Data dimensionality (1, 2 or 3).
    pub fn ndims(self) -> usize {
        match self {
            DatasetKind::Isotropic | DatasetKind::Channel => 3,
            DatasetKind::HaccX | DatasetKind::HaccVx => 1,
            _ => 2,
        }
    }

    /// Parse a paper-facing name (case-insensitive).
    pub fn from_name(name: &str) -> Option<DatasetKind> {
        let lower = name.to_ascii_lowercase();
        DatasetKind::ALL
            .iter()
            .copied()
            .find(|k| k.name().to_ascii_lowercase() == lower)
    }
}

/// Generation scale. The paper's full sizes (5 GB of turbulence, 1.5 GB of
/// climate data) are impractical for per-commit regression runs; every
/// harness accepts a scale and defaults to [`Scale::Default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sizes for unit tests (runs in milliseconds).
    Tiny,
    /// Quick experiments.
    Small,
    /// Standard experiment scale (seconds per dataset).
    Default,
    /// The paper's full Table I dimensions.
    Paper,
}

impl Scale {
    /// Grid dimensions for a dataset kind at this scale.
    pub fn dims(self, kind: DatasetKind) -> Vec<usize> {
        match kind.ndims() {
            3 => match self {
                Scale::Tiny => vec![16, 16, 16],
                Scale::Small => vec![32, 32, 32],
                Scale::Default => vec![64, 64, 64],
                Scale::Paper => vec![128, 128, 128],
            },
            2 => match self {
                Scale::Tiny => vec![45, 90],
                Scale::Small => vec![180, 360],
                Scale::Default => vec![450, 900],
                Scale::Paper => vec![1800, 3600],
            },
            _ => match self {
                Scale::Tiny => vec![8192],
                Scale::Small => vec![65536],
                Scale::Default => vec![524288],
                Scale::Paper => vec![2097152],
            },
        }
    }

    /// Parse `"tiny" | "small" | "default" | "paper"`.
    pub fn from_name(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// A generated (or loaded) scientific dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Paper-facing name, e.g. `"CLDHGH"`.
    pub name: String,
    /// Grid dimensions, slowest-varying first.
    pub dims: Vec<usize>,
    /// Row-major field values.
    pub data: Vec<f32>,
}

impl Dataset {
    /// Generate the synthetic analogue of `kind` at `scale` with `seed`.
    pub fn generate(kind: DatasetKind, scale: Scale, seed: u64) -> Dataset {
        let dims = scale.dims(kind);
        let data = match kind {
            DatasetKind::Isotropic => {
                turbulence3d(TurbulenceField::Isotropic, dims[0], dims[1], dims[2], seed)
            }
            DatasetKind::Channel => {
                turbulence3d(TurbulenceField::Channel, dims[0], dims[1], dims[2], seed)
            }
            DatasetKind::Cldhgh => climate2d(ClimateField::Cldhgh, dims[0], dims[1], seed),
            DatasetKind::Cldlow => climate2d(ClimateField::Cldlow, dims[0], dims[1], seed),
            DatasetKind::Phis => climate2d(ClimateField::Phis, dims[0], dims[1], seed),
            DatasetKind::Freqsh => climate2d(ClimateField::Freqsh, dims[0], dims[1], seed),
            DatasetKind::Fldsc => climate2d(ClimateField::Fldsc, dims[0], dims[1], seed),
            DatasetKind::HaccX => hacc1d(HaccField::X, dims[0], seed),
            DatasetKind::HaccVx => hacc1d(HaccField::Vx, dims[0], seed),
        };
        Dataset {
            name: kind.name().to_string(),
            dims,
            data,
        }
    }

    /// Wrap existing values with explicit dimensions.
    pub fn from_values(name: impl Into<String>, dims: Vec<usize>, data: Vec<f32>) -> Dataset {
        let expected: usize = dims.iter().product();
        assert_eq!(expected, data.len(), "dims do not match value count");
        Dataset {
            name: name.into(),
            dims,
            data,
        }
    }

    /// Total number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the dataset holds no values.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the uncompressed data in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Generate the full nine-dataset evaluation suite at `scale` with the
/// default seed.
pub fn standard_suite(scale: Scale) -> Vec<Dataset> {
    DatasetKind::ALL
        .iter()
        .map(|&k| Dataset::generate(k, scale, DEFAULT_SEED))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nine_members_with_right_shapes() {
        let suite = standard_suite(Scale::Tiny);
        assert_eq!(suite.len(), 9);
        for ds in &suite {
            let expected: usize = ds.dims.iter().product();
            assert_eq!(ds.len(), expected, "{}", ds.name);
            assert!(!ds.is_empty());
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in DatasetKind::ALL {
            assert_eq!(DatasetKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(DatasetKind::from_name("cldhgh"), Some(DatasetKind::Cldhgh));
        assert_eq!(DatasetKind::from_name("nope"), None);
    }

    #[test]
    fn paper_scale_matches_table1() {
        assert_eq!(
            Scale::Paper.dims(DatasetKind::Isotropic),
            vec![128, 128, 128]
        );
        assert_eq!(Scale::Paper.dims(DatasetKind::Fldsc), vec![1800, 3600]);
        assert_eq!(Scale::Paper.dims(DatasetKind::HaccX), vec![2097152]);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_name("TINY"), Some(Scale::Tiny));
        assert_eq!(Scale::from_name("paper"), Some(Scale::Paper));
        assert_eq!(Scale::from_name("huge"), None);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = Dataset::generate(DatasetKind::Channel, Scale::Tiny, 5);
        let b = Dataset::generate(DatasetKind::Channel, Scale::Tiny, 5);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn sources_and_ndims() {
        assert_eq!(DatasetKind::Isotropic.source(), "JHTDB");
        assert_eq!(DatasetKind::Phis.source(), "CESM-ATM");
        assert_eq!(DatasetKind::HaccVx.source(), "HACC");
        assert_eq!(DatasetKind::Channel.ndims(), 3);
        assert_eq!(DatasetKind::Cldlow.ndims(), 2);
        assert_eq!(DatasetKind::HaccX.ndims(), 1);
    }

    #[test]
    #[should_panic(expected = "dims do not match")]
    fn from_values_checks_shape() {
        Dataset::from_values("bad", vec![2, 3], vec![0.0; 5]);
    }

    #[test]
    fn nbytes_is_four_per_value() {
        let ds = Dataset::generate(DatasetKind::HaccX, Scale::Tiny, 1);
        assert_eq!(ds.nbytes(), ds.len() * 4);
    }
}
