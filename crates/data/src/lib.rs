//! # dpz-data
//!
//! Dataset substrate and quality metrics for the DPZ reproduction.
//!
//! The paper evaluates on nine fields from three HPC applications
//! (Table I): JHTDB turbulence (3-D), CESM-ATM climate (2-D) and HACC
//! cosmology (1-D). Those multi-gigabyte archives are not redistributable
//! here, so [`synthetic`] generates seeded, deterministic analogues that
//! preserve the *statistical character* each experiment depends on —
//! spectral slope and smoothness for turbulence, multi-scale smooth
//! structure for climate fields, locality vs. near-whiteness for HACC x/vx.
//! See DESIGN.md §2 for the substitution rationale.
//!
//! [`metrics`] implements the evaluation measures used throughout the
//! paper's Section V: PSNR, bit-rate, compression ratio, and the data-range
//! relative mean error θ. [`io`] reads/writes the raw little-endian `f32`
//! format used by SDRBench, and [`pgm`] renders 2-D fields for the Figure 7
//! visual comparison.

#![warn(missing_docs)]

pub mod dataset;
pub mod io;
pub mod metrics;
pub mod pgm;
pub mod rng;
pub mod stats;
pub mod synthetic;

pub use dataset::{standard_suite, Dataset, DatasetKind, Scale};
pub use metrics::QualityReport;
