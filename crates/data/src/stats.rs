//! Dataset characterization statistics.
//!
//! These are the measurements used to argue that the synthetic analogues in
//! [`crate::synthetic`] stand in for the paper's real datasets (DESIGN.md
//! §2): sample entropy, lag autocorrelation, and the high-frequency energy
//! fraction (a cheap proxy for spectral slope). The `dataset_stats`
//! experiment binary prints them for the whole suite.

/// Shannon entropy (bits) of an equal-width histogram with `bins` buckets.
///
/// This is the estimator SZ-style compressors use to reason about value
/// diversity; constant data has entropy 0, a uniform spread approaches
/// `log2(bins)`.
pub fn histogram_entropy(data: &[f32], bins: usize) -> f64 {
    assert!(bins >= 2 && !data.is_empty());
    let (lo, hi) = data
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(f64::from(v)), hi.max(f64::from(v)))
        });
    let span = hi - lo;
    if span <= 0.0 {
        return 0.0;
    }
    let mut counts = vec![0usize; bins];
    for &v in data {
        let idx = (((f64::from(v) - lo) / span) * bins as f64) as usize;
        counts[idx.min(bins - 1)] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Autocorrelation at the given lag (`0 < lag < len`). Returns 0 for
/// constant data.
pub fn autocorrelation(data: &[f32], lag: usize) -> f64 {
    assert!(lag > 0 && lag < data.len());
    let n = data.len();
    let mean = data.iter().map(|&v| f64::from(v)).sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &v) in data.iter().enumerate() {
        let d = f64::from(v) - mean;
        den += d * d;
        if i + lag < n {
            num += d * (f64::from(data[i + lag]) - mean);
        }
    }
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Fraction of total (centered) energy carried by first differences:
/// `sum (x[i+1]-x[i])² / (2·sum (x[i]-mean)²)`.
///
/// White noise scores ≈ 1, a smooth field ≈ 0 — a scale-free roughness
/// measure tied to the spectral slope (it equals `1 - autocorr(1)` for a
/// stationary series).
pub fn roughness(data: &[f32]) -> f64 {
    assert!(data.len() >= 2);
    let n = data.len();
    let mean = data.iter().map(|&v| f64::from(v)).sum::<f64>() / n as f64;
    let mut diff = 0.0;
    for w in data.windows(2) {
        let d = f64::from(w[1]) - f64::from(w[0]);
        diff += d * d;
    }
    let var: f64 = data
        .iter()
        .map(|&v| {
            let d = f64::from(v) - mean;
            d * d
        })
        .sum();
    if var <= 0.0 {
        0.0
    } else {
        (diff / (2.0 * var)).min(2.0)
    }
}

/// Log–log slope of the 1-D power spectrum estimated from dyadic band
/// energies of the data's leading segment (power-of-two truncated). More
/// negative = smoother; Kolmogorov turbulence gives roughly -5/3 along a
/// line.
pub fn spectral_slope(data: &[f32]) -> f64 {
    use dpz_linalg::fft::{fft, Complex};
    let n = (data.len().next_power_of_two() / 2).min(1 << 16);
    assert!(n >= 8, "need at least 8 samples for a spectral slope");
    let mut buf: Vec<Complex> = data[..n]
        .iter()
        .map(|&v| Complex::new(f64::from(v), 0.0))
        .collect();
    fft(&mut buf);
    // Dyadic band energies over 1..n/2.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut lo = 1usize;
    while 2 * lo <= n / 2 {
        let hi = 2 * lo;
        let energy: f64 = (lo..hi).map(|k| buf[k].norm_sqr()).sum::<f64>() / (hi - lo) as f64;
        if energy > 0.0 {
            xs.push(((lo + hi) as f64 / 2.0).ln());
            ys.push(energy.ln());
        }
        lo = hi;
    }
    if xs.len() < 2 {
        return 0.0;
    }
    // Least-squares slope.
    let mx = xs.iter().sum::<f64>() / xs.len() as f64;
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    fn white(n: usize) -> Vec<f32> {
        let mut s = 77u64;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) as f32
            })
            .collect()
    }

    fn smooth(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.01).sin()).collect()
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(histogram_entropy(&[5.0; 100], 32), 0.0);
        let e = histogram_entropy(&white(10_000), 32);
        assert!(e > 4.5 && e <= 5.0, "near-uniform entropy {e}");
    }

    #[test]
    fn autocorrelation_separates_smooth_from_white() {
        assert!(autocorrelation(&smooth(4096), 1) > 0.99);
        assert!(autocorrelation(&white(4096), 1).abs() < 0.1);
    }

    #[test]
    fn roughness_separates_too() {
        assert!(roughness(&smooth(4096)) < 0.01);
        let r = roughness(&white(4096));
        assert!((0.7..=1.5).contains(&r), "white roughness {r}");
        assert_eq!(roughness(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn roughness_equals_one_minus_autocorr() {
        let data = white(8192);
        let r = roughness(&data);
        let a = autocorrelation(&data, 1);
        assert!((r - (1.0 - a)).abs() < 0.05, "r {r} vs 1-a {}", 1.0 - a);
    }

    #[test]
    fn spectral_slope_orders_smoothness() {
        let s_smooth = spectral_slope(&smooth(4096));
        let s_white = spectral_slope(&white(4096));
        assert!(
            s_smooth < s_white - 1.0,
            "smooth slope {s_smooth} should be far below white {s_white}"
        );
        assert!(
            s_white.abs() < 1.0,
            "white spectrum should be ~flat: {s_white}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn spectral_slope_needs_samples() {
        spectral_slope(&[1.0; 4]);
    }
}
