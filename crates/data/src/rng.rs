//! Small, fast, seedable PRNG for dataset synthesis.
//!
//! Xoshiro256++ (Blackman & Vigna) with a SplitMix64 seeder. The dataset
//! generators must be bit-reproducible across runs and platforms so every
//! experiment in EXPERIMENTS.md regenerates identical inputs; a local PRNG
//! with a frozen algorithm guarantees that independent of external crate
//! version bumps.

/// Xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 so that nearby seeds give unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        Xoshiro256 { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53-bit resolution).
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal via Box–Muller (one value per call; the twin is
    /// discarded to keep the state stream simple and reproducible).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.uniform();
            if u1 > 1e-300 {
                let u2 = self.uniform();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.uniform();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Xoshiro256::seed_from_u64(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Xoshiro256::seed_from_u64(17);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
