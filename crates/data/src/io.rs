//! Raw binary I/O in the SDRBench convention: little-endian `f32` values,
//! no header — dimensions travel out of band.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write a slice of `f32` as raw little-endian bytes.
pub fn write_f32_file<P: AsRef<Path>>(path: P, data: &[f32]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for &v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read a whole file of raw little-endian `f32`.
///
/// Errors if the file size is not a multiple of 4 bytes.
pub fn read_f32_file<P: AsRef<Path>>(path: P) -> io::Result<Vec<f32>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    bytes_to_f32(&bytes)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "file size not multiple of 4"))
}

/// Reinterpret little-endian bytes as `f32` values.
pub fn bytes_to_f32(bytes: &[u8]) -> Option<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
    )
}

/// Serialize `f32` values to little-endian bytes.
pub fn f32_to_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let data = vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE, 1e30];
        let bytes = f32_to_bytes(&data);
        assert_eq!(bytes.len(), 20);
        assert_eq!(bytes_to_f32(&bytes).unwrap(), data);
    }

    #[test]
    fn rejects_misaligned() {
        assert!(bytes_to_f32(&[0, 1, 2]).is_none());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dpz_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.f32");
        let data: Vec<f32> = (0..1000).map(|i| (i as f32).sqrt()).collect();
        write_f32_file(&path, &data).unwrap();
        assert_eq!(read_f32_file(&path).unwrap(), data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(read_f32_file("/nonexistent/definitely/not/here.f32").is_err());
    }
}
