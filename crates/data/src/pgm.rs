//! Minimal PGM (portable graymap) writer for the Figure 7 visual comparison:
//! renders a 2-D field to an 8-bit grayscale image, normalizing the value
//! range to 0..=255.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Quantize a 2-D field (`rows x cols`, row-major) into 8-bit gray levels.
/// A constant field renders mid-gray.
pub fn to_gray(data: &[f32], rows: usize, cols: usize) -> Vec<u8> {
    assert_eq!(data.len(), rows * cols, "to_gray shape mismatch");
    let (lo, hi) = data
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(f64::from(v)), hi.max(f64::from(v)))
        });
    let span = hi - lo;
    data.iter()
        .map(|&v| {
            if span <= 0.0 {
                128
            } else {
                (((f64::from(v) - lo) / span) * 255.0)
                    .round()
                    .clamp(0.0, 255.0) as u8
            }
        })
        .collect()
}

/// Write a binary PGM (P5) image.
pub fn write_pgm<P: AsRef<Path>>(
    path: P,
    data: &[f32],
    rows: usize,
    cols: usize,
) -> io::Result<()> {
    let gray = to_gray(data, rows, cols);
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P5\n{cols} {rows}\n255\n")?;
    w.write_all(&gray)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_normalization() {
        let data = vec![0.0f32, 5.0, 10.0];
        let g = to_gray(&data, 1, 3);
        assert_eq!(g, vec![0, 128, 255]);
    }

    #[test]
    fn constant_field_is_midgray() {
        let g = to_gray(&[3.3f32; 4], 2, 2);
        assert_eq!(g, vec![128; 4]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_checked() {
        to_gray(&[1.0], 2, 2);
    }

    #[test]
    fn pgm_file_has_header_and_payload() {
        let dir = std::env::temp_dir().join("dpz_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        write_pgm(&path, &[0.0, 1.0, 2.0, 3.0], 2, 2).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(bytes.len(), b"P5\n2 2\n255\n".len() + 4);
        std::fs::remove_file(&path).ok();
    }
}
