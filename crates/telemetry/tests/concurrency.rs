//! Instruments must not lose updates under parallel load. These tests bump
//! shared counters/histograms from rayon worker threads and check exact
//! totals afterwards.

use dpz_telemetry::Registry;
use rayon::prelude::*;

#[test]
fn concurrent_counter_increments_are_lossless() {
    let r = Registry::new();
    let c = r.counter("hits_total");
    let items: Vec<u32> = (0..10_000).collect();
    items.par_iter().for_each(|_| c.inc());
    assert_eq!(c.get(), 10_000);
}

#[test]
fn concurrent_registry_lookups_hit_one_series() {
    // Resolve the handle inside the worker, so the registry's read/write
    // locking is exercised along with the increment itself.
    let r = Registry::new();
    let items: Vec<u32> = (0..4_096).collect();
    items
        .par_iter()
        .for_each(|_| r.counter_with("lookups_total", &[("codec", "dpz")]).add(2));
    assert_eq!(
        r.counter_with("lookups_total", &[("codec", "dpz")]).get(),
        8_192
    );
}

#[test]
fn concurrent_histogram_observations_keep_exact_sum() {
    let r = Registry::new();
    let h = r.histogram("lat_seconds", &[0.5]);
    let items: Vec<usize> = (0..8_192).collect();
    // 0.25 and 1.0 are exactly representable, so the CAS-looped f64 sum must
    // come out exact regardless of addition order.
    items
        .par_iter()
        .for_each(|&i| h.observe(if i % 2 == 0 { 0.25 } else { 1.0 }));
    assert_eq!(h.count(), 8_192);
    assert_eq!(h.sum(), 4_096.0 * 0.25 + 4_096.0);
    let snap = r.snapshot();
    let hs = snap.histogram("lat_seconds", &[]).unwrap();
    assert_eq!(hs.buckets, vec![4_096, 4_096]);
}
