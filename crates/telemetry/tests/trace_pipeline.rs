//! End-to-end tests for the event journal: wraparound overwrite semantics,
//! cross-thread ordering of the drained stream, and the Chrome export of a
//! live (not hand-built) trace.
//!
//! The journal is process-global, so every test that enables/drains it
//! holds `JOURNAL_LOCK` — otherwise a concurrent test's drain could steal
//! this test's events.

use dpz_telemetry::trace::{self, EventKind, RING_CAPACITY};
use std::sync::Mutex;

static JOURNAL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn ring_overwrites_oldest_events_on_wraparound() {
    let _serial = JOURNAL_LOCK.lock().unwrap();
    trace::start();
    let extra = 257usize;
    // A dedicated thread gets a dedicated lane, so this test owns a whole
    // ring regardless of what the rest of the process is emitting.
    let handle = std::thread::Builder::new()
        .name("wrap-lane".to_string())
        .spawn(move || {
            for i in 0..RING_CAPACITY + extra {
                trace::instant(&format!("wrap_{i}"));
            }
        })
        .unwrap();
    handle.join().unwrap();
    trace::stop();
    let trace = trace::drain();

    let mut indices: Vec<usize> = trace
        .events
        .iter()
        .filter_map(|e| e.name.strip_prefix("wrap_").and_then(|n| n.parse().ok()))
        .collect();
    indices.sort_unstable();
    // The ring keeps exactly the newest RING_CAPACITY events; the first
    // `extra` were overwritten.
    assert_eq!(indices.len(), RING_CAPACITY);
    assert_eq!(indices[0], extra);
    assert_eq!(*indices.last().unwrap(), RING_CAPACITY + extra - 1);
    assert!(trace.dropped >= extra as u64);
    assert!(trace.threads.iter().any(|t| t.name == "wrap-lane"));
}

#[test]
fn drained_events_are_ordered_by_ts_across_threads() {
    let _serial = JOURNAL_LOCK.lock().unwrap();
    trace::start();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::Builder::new()
                .name(format!("order-lane-{t}"))
                .spawn(move || {
                    for i in 0..100 {
                        trace::instant_with(&format!("order_t{t}"), &[("i", i as f64)]);
                    }
                })
                .unwrap()
        })
        .collect();
    for handle in threads {
        handle.join().unwrap();
    }
    trace::stop();
    let trace = trace::drain();

    let ours: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.name.starts_with("order_t"))
        .collect();
    assert_eq!(ours.len(), 400);
    // The merged stream is sorted by ts_ns even though four lanes fed it.
    assert!(trace.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    // Each emitting thread got its own lane.
    let mut tids: Vec<u64> = ours.iter().map(|e| e.thread).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 4);
    for t in 0..4 {
        let name = format!("order-lane-{t}");
        assert!(
            trace.threads.iter().any(|ti| ti.name == name),
            "missing lane {name}"
        );
    }
}

#[test]
fn spans_counters_and_drain_watermark_round_trip() {
    let _serial = JOURNAL_LOCK.lock().unwrap();
    trace::start();
    {
        let mut s = dpz_telemetry::span!("journal_root");
        s.annotate("bytes", 4096.0);
        let _child = dpz_telemetry::span!("journal_child");
        trace::counter("journal_gauge", 7.5);
    }
    trace::stop();
    let first = trace::drain();

    let root = first
        .events
        .iter()
        .find(|e| e.name == "journal_root")
        .expect("root span recorded");
    assert_eq!(root.kind, EventKind::Span);
    assert!(root.dur_ns > 0);
    assert_eq!(root.args, vec![("bytes".to_string(), 4096.0)]);
    let child = first
        .events
        .iter()
        .find(|e| e.name == "journal_root.journal_child")
        .expect("child span nests under root path");
    // The child completes within the root's window.
    assert!(child.ts_ns >= root.ts_ns);
    assert!(child.ts_ns + child.dur_ns <= root.ts_ns + root.dur_ns);
    let gauge = first
        .events
        .iter()
        .find(|e| e.name == "journal_gauge")
        .expect("counter recorded");
    assert_eq!(gauge.kind, EventKind::Counter);
    assert_eq!(gauge.value, 7.5);

    // A second drain must not replay already-drained events.
    let second = trace::drain();
    assert!(
        !second.events.iter().any(|e| e.name.starts_with("journal_")),
        "drain watermark failed to advance"
    );

    // And the Chrome export of the live trace is valid JSON with a summary.
    let doc = dpz_telemetry::json::parse(&trace::to_chrome_json(&first)).expect("valid JSON");
    assert!(doc.get("traceEvents").unwrap().as_array().unwrap().len() >= 3);
    let summary = doc.get("dpzSummary").expect("embedded summary");
    let spans = summary.get("spans").unwrap().as_array().unwrap();
    assert!(spans
        .iter()
        .any(|s| s.get("name").unwrap().as_str() == Some("journal_root")));
}

#[test]
fn disabled_journal_records_nothing() {
    let _serial = JOURNAL_LOCK.lock().unwrap();
    trace::stop();
    trace::drain(); // clear anything left over
    trace::instant("ghost_event");
    trace::counter("ghost_counter", 1.0);
    let t = trace::drain();
    assert!(!t.events.iter().any(|e| e.name.starts_with("ghost_")));
}
