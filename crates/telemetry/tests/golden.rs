//! Golden-file tests for both exporters: a fixed snapshot must render
//! byte-for-byte identically to the checked-in expectations.
//!
//! To regenerate after an intentional format change:
//! `DPZ_REGEN_GOLDEN=1 cargo test -p dpz-telemetry --test golden`
//! (then re-run without the variable to confirm).

use dpz_telemetry::{from_json, to_json, to_prometheus, Registry, Snapshot};

fn sample() -> Snapshot {
    let r = Registry::new();
    r.counter_with(
        "dpz_bytes_in_total",
        &[("codec", "dpz"), ("op", "compress")],
    )
    .add(1_048_576);
    r.counter_with(
        "dpz_bytes_out_total",
        &[("codec", "dpz"), ("op", "compress")],
    )
    .add(65_536);
    r.counter("dpz_compressions_total").inc();
    r.gauge("dpz_k_selected").set(7.0);
    r.gauge("dpz_tve_achieved").set(0.999);
    let h = r.histogram_with(
        "dpz_stage_seconds",
        &[("stage", "pca")],
        &[0.001, 0.01, 0.1, 1.0],
    );
    // Exactly representable values keep the golden sum byte-stable.
    for v in [0.25, 0.5, 4.0] {
        h.observe(v);
    }
    r.snapshot()
}

fn check_golden(rel_path: &str, got: &str, expected: &str) {
    if std::env::var_os("DPZ_REGEN_GOLDEN").is_some() {
        let path = format!("{}/{rel_path}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, got).expect("write golden file");
        return;
    }
    assert_eq!(
        got, expected,
        "{rel_path} is stale; see the regen note in this test file"
    );
}

#[test]
fn prometheus_export_matches_golden() {
    check_golden(
        "tests/golden/sample.prom",
        &to_prometheus(&sample()),
        include_str!("golden/sample.prom"),
    );
}

#[test]
fn json_export_matches_golden() {
    check_golden(
        "tests/golden/sample.json",
        &to_json(&sample()),
        include_str!("golden/sample.json"),
    );
}

#[test]
fn golden_json_parses_back_to_the_sample() {
    let parsed = from_json(include_str!("golden/sample.json")).expect("golden JSON parses");
    assert_eq!(parsed, sample());
}
