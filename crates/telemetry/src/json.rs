//! A minimal, zero-dependency JSON value tree and parser.
//!
//! This started life as the private decoder behind [`crate::from_json`];
//! it is public so downstream tooling (trace shape validation, the perf
//! gate's baseline reader) can parse JSON documents without pulling in a
//! serialization dependency. The parser accepts any standard JSON document.

use std::collections::BTreeMap;

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// Shape error not tied to a byte offset (semantic validation).
    pub fn shape(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

/// JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.to_string(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", expected as char))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            self.pos += 4;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // char boundary math is safe).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            message: "invalid UTF-8".to_string(),
                            offset: self.pos,
                        })?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(v) => Ok(JsonValue::Number(v)),
            Err(_) => self.err("invalid number"),
        }
    }
}

/// Parse one JSON document (rejects trailing data).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after JSON document");
    }
    Ok(v)
}

/// Escape a string for embedding in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "a\"b\\c\nd\tt\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(raw));
    }
}
